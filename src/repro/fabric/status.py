"""``repro fabric status``: render a live fabric sweep, read-only.

Everything here folds the same journal + lease directory the workers
write, so pointing it at a running (or wedged, or finished) fabric
root from a second terminal shows ground truth, not a coordinator's
opinion: per-status node counts, per-worker heartbeat ages, every
in-flight lease, and any speculative re-dispatches — the exact
observables the failure matrix in ``docs/FABRIC.md`` says you need
to tell a crash from a straggler from a zombie.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Union

from .dag import SpecDAG
from .layout import FabricRoot
from .state import (COMMITTED, FAILED, LEASED, PENDING, READY, SKIPPED,
                    FabricState, reduce_state)


def fabric_state(root: Union[str, Path]) -> FabricState:
    """Reduce a fabric root to its current state (read-only)."""
    fabric = FabricRoot(root)
    if not fabric.initialized:
        raise FileNotFoundError(
            f"not a fabric root (no {FabricRoot.DAG_FILE}): {root}")
    dag = fabric.load_dag()
    meta = fabric.load_meta()
    return reduce_state(dag, fabric.journal().events(),
                        fabric.leases().all_leases(), meta.lease_s,
                        max_errors=meta.max_errors)


def render_status(root: Union[str, Path],
                  state: Optional[FabricState] = None) -> str:
    """Human-readable snapshot of one fabric sweep."""
    fabric = FabricRoot(root)
    dag: SpecDAG = fabric.load_dag()
    meta = fabric.load_meta()
    if state is None:
        state = fabric_state(root)
    counts = state.counts()
    done = counts[COMMITTED] + counts[FAILED] + counts[SKIPPED]
    lines: List[str] = []
    lines.append(f"fabric root: {fabric.root}")
    lines.append(
        f"sweep: {len(dag)} nodes ({dag.run_count} run, "
        f"{len(dag) - dag.run_count} prewarm), engine={meta.engine}, "
        f"lease={meta.lease_s:g}s")
    lines.append(
        "nodes: " + ", ".join(
            f"{counts[status]} {status}" for status in
            (READY, LEASED, COMMITTED, FAILED, SKIPPED, PENDING)
            if counts[status] or status in (READY, LEASED, COMMITTED)))
    lines.append(
        f"progress: {done}/{len(dag)} finished"
        + (" — COMPLETE" if state.complete else ""))
    if state.abandoned_total:
        lines.append(f"abandoned leases (crash recoveries): "
                     f"{state.abandoned_total}")
    redispatched = state.redispatched
    if redispatched:
        labels = ", ".join(f"n{node_id}" for node_id in redispatched[:8])
        if len(redispatched) > 8:
            labels += f", ... +{len(redispatched) - 8}"
        lines.append(
            f"speculative re-dispatches: {len(redispatched)} ({labels})")

    ages = state.heartbeat_ages()
    if ages:
        lines.append("workers (heartbeat age):")
        for worker, age in ages.items():
            marker = " [stale]" if age > meta.lease_s else ""
            lines.append(f"  {worker:<16} {age:6.1f}s ago{marker}")
    else:
        lines.append("workers: none seen yet")

    leased = [(node_id, lease) for node_id, lease in
              sorted(state.leases.items())
              if state.nodes[node_id].status == LEASED]
    if leased:
        lines.append("in-flight leases:")
        for node_id, lease in leased[:12]:
            node = dag[node_id]
            flag = ""
            if state.nodes[node_id].redispatch_token is not None:
                flag = " [re-dispatched]"
            lines.append(
                f"  {node.describe():<44} {lease.worker} "
                f"t{lease.token} hb {lease.age(state.now):.1f}s ago{flag}")
        if len(leased) > 12:
            lines.append(f"  ... and {len(leased) - 12} more")
    failed = [node_id for node_id, node in sorted(state.nodes.items())
              if node.status == FAILED]
    if failed:
        lines.append("failed nodes: " +
                     ", ".join(dag[node_id].describe()
                               for node_id in failed[:8]))
    return "\n".join(lines)
