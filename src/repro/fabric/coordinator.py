"""The fabric coordinator: spawn workers, detect trouble, collect.

The coordinator is deliberately *not* a scheduler — workers schedule
themselves off the shared state. It does the three things only a
bird's-eye view can:

* **abandon** — a lease whose heartbeat went stale past ``lease_s``
  belongs to a corpse; log an ``abandon`` event (making the crash
  diagnosable) — the lease itself is already claimable by expiry.
* **re-dispatch** — a leased node running longer than
  ``straggler_factor ×`` its group's median committed runtime gets a
  ``redispatch`` event; any idle worker may then claim *over* the
  straggler's fresh lease (``beyond_token``), first commit wins.
* **respawn** — a worker process that died (SIGKILL, OOM) while the
  sweep is incomplete is replaced, so the fleet size survives chaos.

Because every decision is a fold over the journal + leases, a
coordinator crash loses nothing: restart it on the same root and it
resumes exactly where the log says things stand.

:func:`run_fabric` is the one-call facade the CLI and
``repro.service`` use: init root → spawn N workers → monitor →
collect a :class:`~repro.harness.resilience.SweepOutcome` that is
bit-identical to ``SweepExecutor.run_dag`` on the same DAG.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Set, Tuple, Union

from ..harness.executor import (Calibration, RunSpec, SystemSpec,
                                cache_key, environment_fingerprint)
from ..harness.resilience import (SpecOutcome, SpecStatus, SweepOutcome,
                                  describe_spec)
from .dag import SpecDAG
from .layout import FabricMeta, FabricRoot
from .state import (COMMITTED, FAILED, FabricState, expired_leases,
                    reduce_state, straggler_nodes)
from .worker import FabricWorker, WorkerCrashed


class FabricTimeout(RuntimeError):
    """The sweep did not complete within the coordinator's deadline."""


@dataclass
class CoordinatorStats:
    """What the monitor loop observed during one sweep."""

    workers_spawned: int = 0
    workers_respawned: int = 0
    abandons: int = 0
    redispatches: int = 0
    leases_swept: int = 0
    elapsed_s: float = 0.0

    def summary(self) -> str:
        parts = [f"{self.workers_spawned} workers"]
        if self.workers_respawned:
            parts.append(f"{self.workers_respawned} respawned")
        if self.abandons:
            parts.append(f"{self.abandons} leases abandoned")
        if self.redispatches:
            parts.append(f"{self.redispatches} stragglers re-dispatched")
        parts.append(f"{self.elapsed_s:.2f}s")
        return "[fabric] " + ", ".join(parts)


class _WorkerHandle:
    """One worker the coordinator owns — subprocess or inline thread."""

    def __init__(self, worker_id: str):
        self.worker_id = worker_id
        self.proc: Optional[subprocess.Popen] = None
        self.thread: Optional[threading.Thread] = None

    @property
    def alive(self) -> bool:
        if self.proc is not None:
            return self.proc.poll() is None
        if self.thread is not None:
            return self.thread.is_alive()
        return False

    def stop(self) -> None:
        if self.proc is not None and self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:  # pragma: no cover
                self.proc.kill()
                self.proc.wait()


class Coordinator:
    """Drive one fabric sweep to completion. See module docstring."""

    def __init__(self, fabric: FabricRoot, workers: int = 3,
                 spawn: str = "process", respawn: bool = True,
                 system: Optional[SystemSpec] = None,
                 calib: Optional[Calibration] = None,
                 monitor_s: Optional[float] = None):
        if spawn not in ("process", "thread"):
            raise ValueError(f"unknown spawn mode {spawn!r}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.fabric = fabric
        self.dag: SpecDAG = fabric.load_dag()
        self.meta: FabricMeta = fabric.load_meta()
        self.workers = workers
        self.spawn = spawn
        self.respawn = respawn
        self.system = system
        self.calib = calib
        self.monitor_s = (monitor_s if monitor_s is not None
                          else self.meta.effective_heartbeat_s)
        self.journal = fabric.journal()
        self.leases = fabric.leases()
        self.cache = fabric.cache()
        self.stats = CoordinatorStats()
        self._handles: List[_WorkerHandle] = []
        self._abandoned: Set[Tuple[int, int]] = set()      # (node, token)
        self._redispatched: Set[Tuple[int, int]] = set()   # (node, token)
        self._spawn_seq = 0

    # ------------------------------------------------------------------
    def run(self, timeout_s: Optional[float] = None) -> SweepOutcome:
        """Spawn the fleet, monitor to completion, collect results."""
        started = time.perf_counter()
        try:
            for _ in range(self.workers):
                self._spawn_worker()
            while True:
                state = self.snapshot()
                if state.complete:
                    break
                if timeout_s is not None and \
                        time.perf_counter() - started > timeout_s:
                    raise FabricTimeout(
                        f"fabric sweep incomplete after {timeout_s}s: "
                        f"{state.counts()}")
                self.monitor_once(state)
                self._keep_fleet_alive(state)
                time.sleep(self.monitor_s)
        finally:
            self._shutdown()
            self.stats.elapsed_s = time.perf_counter() - started
        finished = [node_id for node_id, node in
                    self.snapshot().nodes.items() if node.finished]
        self.stats.leases_swept += self.leases.sweep(finished)
        return self.collect()

    def snapshot(self) -> FabricState:
        return reduce_state(self.dag, self.journal.events(),
                            self.leases.all_leases(), self.meta.lease_s,
                            max_errors=self.meta.max_errors)

    # ------------------------------------------------------------------
    # Monitor passes (public so tests can drive them synchronously)
    # ------------------------------------------------------------------
    def monitor_once(self, state: Optional[FabricState] = None) -> None:
        if state is None:
            state = self.snapshot()
        for lease in expired_leases(state, self.meta.lease_s):
            mark = (lease.node_id, lease.token)
            if mark in self._abandoned:
                continue
            self._abandoned.add(mark)
            self.stats.abandons += 1
            self.journal.append_event(
                "abandon", node=lease.node_id, worker=lease.worker,
                token=lease.token,
                age_s=round(lease.age(state.now), 3))
        for node_id, token in straggler_nodes(
                self.dag, state,
                straggler_factor=self.meta.straggler_factor,
                straggler_min_s=self.meta.straggler_min_s,
                min_samples=self.meta.straggler_min_samples):
            mark = (node_id, token)
            if mark in self._redispatched:
                continue
            self._redispatched.add(mark)
            self.stats.redispatches += 1
            lease = state.leases.get(node_id)
            self.journal.append_event(
                "redispatch", node=node_id, token=token,
                worker=lease.worker if lease else None)
        # Finished nodes must not keep lease files around (a worker
        # that crashed between commit and release would otherwise
        # leave one dangling forever).
        finished = [node_id for node_id, node in state.nodes.items()
                    if node.finished and node_id in state.leases]
        if finished:
            self.stats.leases_swept += self.leases.sweep(finished)

    def _keep_fleet_alive(self, state: FabricState) -> None:
        if not self.respawn:
            return
        for handle in self._handles:
            if not handle.alive and not state.complete:
                handle.thread = None
                handle.proc = None
                self.stats.workers_respawned += 1
                self._spawn_worker(replacing=handle.worker_id)

    # ------------------------------------------------------------------
    # Fleet management
    # ------------------------------------------------------------------
    def _spawn_worker(self, replacing: Optional[str] = None) -> None:
        self._spawn_seq += 1
        worker_id = (f"{replacing}-r{self._spawn_seq}" if replacing
                     else f"w{self._spawn_seq}")
        handle = _WorkerHandle(worker_id)
        if self.spawn == "process":
            # The fault plan (if any) rides os.environ, same as the
            # executor's process pool workers.
            handle.proc = subprocess.Popen(
                [sys.executable, "-m", "repro", "fabric", "worker",
                 "--root", str(self.fabric.root), "--id", worker_id],
                env=os.environ.copy(),
                stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        else:
            worker = FabricWorker(self.fabric, worker_id,
                                  system=self.system, calib=self.calib,
                                  crash_hook=_raise_crash)

            def body(target: FabricWorker = worker) -> None:
                try:
                    target.run()
                except WorkerCrashed:
                    pass  # inline stand-in for SIGKILL: just stop

            handle.thread = threading.Thread(
                target=body, name=f"fabric-{worker_id}", daemon=True)
            handle.thread.start()
        self._handles.append(handle)
        self.stats.workers_spawned += 1

    def _shutdown(self) -> None:
        for handle in self._handles:
            handle.stop()
        deadline = time.monotonic() + 10.0
        for handle in self._handles:
            if handle.thread is not None:
                handle.thread.join(timeout=max(
                    0.1, deadline - time.monotonic()))
            elif handle.proc is not None:
                try:
                    handle.proc.wait(timeout=max(
                        0.1, deadline - time.monotonic()))
                except subprocess.TimeoutExpired:  # pragma: no cover
                    handle.proc.kill()

    # ------------------------------------------------------------------
    # Result collection
    # ------------------------------------------------------------------
    def collect(self) -> SweepOutcome:
        """Fold the cache + journal back into a serial-shaped outcome.

        Ordered by ``run_index`` — the original spec order — so the
        result list is drop-in comparable (and byte-identical, for
        complete sweeps) with ``SweepExecutor.run_outcomes`` on the
        flat grid.
        """
        state = self.snapshot()
        entries = self.journal.latest_entries()
        env_fp = environment_fingerprint(self.system, self.calib)
        outcomes: List[Optional[SpecOutcome]] = [None] * self.dag.run_count
        for node_obj in self.dag:
            if not node_obj.is_run:
                continue
            node = state.nodes[node_obj.node_id]
            spec = node_obj.spec
            key = cache_key(spec, self.system, self.calib,
                            env_fingerprint=env_fp)
            if node.status == COMMITTED:
                result = self.cache.get(key)
                if result is not None:
                    outcome = SpecOutcome(
                        spec=spec, index=node_obj.run_index,
                        status=SpecStatus.OK, result=result,
                        attempts=max(1, node.attempts), key=key)
                else:  # pragma: no cover - committed entry lost on disk
                    outcome = SpecOutcome(
                        spec=spec, index=node_obj.run_index,
                        status=SpecStatus.FAILED, key=key,
                        error="committed result missing from cache")
            elif node.status == FAILED:
                record = entries.get(key, {})
                outcome = SpecOutcome(
                    spec=spec, index=node_obj.run_index,
                    status=SpecStatus.FAILED, key=key,
                    attempts=max(1, node.attempts),
                    error=record.get("error",
                                     f"{describe_spec(spec)} failed"))
            else:
                outcome = SpecOutcome(
                    spec=spec, index=node_obj.run_index,
                    status=SpecStatus.SKIPPED, key=key,
                    error="skipped: parent node failed"
                          if node.status == "skipped" else
                          "not scheduled")
            outcomes[node_obj.run_index] = outcome
        return SweepOutcome(outcomes=[o for o in outcomes if o is not None])


def _raise_crash() -> None:
    raise WorkerCrashed("injected worker_crash (inline)")


def run_fabric(specs_or_dag: Union[Sequence[RunSpec], SpecDAG],
               root: Union[str, Path],
               workers: int = 3,
               structure: str = "figure",
               meta: Optional[FabricMeta] = None,
               spawn: str = "process",
               system: Optional[SystemSpec] = None,
               calib: Optional[Calibration] = None,
               timeout_s: Optional[float] = None,
               respawn: bool = True) -> SweepOutcome:
    """Compile (if needed), init the root, run the fleet, collect.

    The one-call path behind ``repro fabric run`` and the service's
    batch hand-off. Accepts either a flat spec list (compiled under
    ``structure``, see :data:`repro.fabric.dag.STRUCTURES`) or an
    already-compiled :class:`SpecDAG`.
    """
    if isinstance(specs_or_dag, SpecDAG):
        dag = specs_or_dag
    else:
        from .dag import compile_sweep
        dag = compile_sweep(list(specs_or_dag), structure=structure)
    dag.validate()
    fabric = FabricRoot.init(root, dag, meta=meta)
    coordinator = Coordinator(fabric, workers=workers, spawn=spawn,
                              respawn=respawn, system=system, calib=calib)
    outcome = coordinator.run(timeout_s=timeout_s)
    outcome.fabric_stats = coordinator.stats  # type: ignore[attr-defined]
    return outcome
