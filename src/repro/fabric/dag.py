"""Spec-DAG compiler: sweeps as dependency graphs, not flat lists.

Today a sweep is a flat ``RunSpec`` list; the fabric makes it a
*program*, in the style of numpywren's ``lpcompile`` pipeline: compile
the grid into a :class:`SpecDAG` of :class:`SpecNode` s, introspect it
with :func:`walk_program` / :func:`find_parents` /
:func:`find_children`, and schedule it deterministically — serially
through :meth:`repro.harness.executor.SweepExecutor.run_dag`, or
across worker processes through :mod:`repro.fabric.coordinator`.

Compilers encode the structure each sweep family actually has:

* :func:`compile_grid` — the degenerate case: one run node per spec,
  no edges, one layer. Executing it is node-for-node identical to
  today's flat sweep (property-tested in
  ``tests/fabric/test_dag_properties.py``).
* :func:`compile_figure_grid` — still edge-free, but nodes carry the
  compile-once vector-engine *group* coordinate ``(program coords,
  mode, carveout)``; the fabric scheduler keeps a worker on one group
  while it can, so each worker compiles each tape once.
* :func:`compile_sensitivity_grid` — inserts one *prewarm* node per
  group as a shared prefix: the phase-memo batch-warm and program
  build run once before any of the group's cells.
* :func:`compile_size_search_grid` — each size's *probe* cell (first
  mode, iteration 0) is a parent of every other cell at that size:
  a size whose probe fails never fans out its full mode grid.

Dependencies are pure *scheduling* structure: every run node's result
is still a pure function of its spec, so any topological execution
order — serial, threaded, or distributed with crashes and speculative
re-execution — produces bit-identical results.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..harness.executor import RunSpec, spec_coords

#: Node kinds. ``run`` nodes carry a spec and publish a result;
#: ``prewarm`` nodes are pure scheduling prefixes (program build +
#: phase-memo warm) that commit no cache entry.
KIND_RUN = "run"
KIND_PREWARM = "prewarm"


@dataclass(frozen=True)
class SpecNode:
    """One vertex of a compiled sweep program.

    ``node_id`` doubles as the node's index in :attr:`SpecDAG.nodes`;
    ``run_index`` is the node's position among *run* nodes only (the
    order results are collected in — input spec order for every
    compiler here). ``group`` is the compile-once coordinate the
    vector engine batches by; nodes sharing a group share one tape.
    """

    node_id: int
    kind: str = KIND_RUN
    spec: Optional[RunSpec] = None
    parents: Tuple[int, ...] = ()
    group: Tuple = ()
    #: Axis-fusion coordinate (``family_key``): all nodes sharing it
    #: belong to one fusable sweep family, which the executor can
    #: replay as a single array program.  Workers prefer leasing
    #: within their current family so whole families settle on one
    #: worker (one compile + one fused replay instead of per-cell).
    family: Tuple = ()
    run_index: int = -1
    role: str = ""  # "" | "probe" | "prewarm"

    def __post_init__(self) -> None:
        if self.kind not in (KIND_RUN, KIND_PREWARM):
            raise ValueError(f"unknown node kind {self.kind!r}")
        if self.kind == KIND_RUN and self.spec is None:
            raise ValueError("run nodes need a spec")
        if self.kind == KIND_PREWARM and self.spec is None:
            raise ValueError(
                "prewarm nodes need a representative spec to build from")

    @property
    def is_run(self) -> bool:
        return self.kind == KIND_RUN

    @property
    def prewarm_specs(self) -> Tuple[RunSpec, ...]:
        """Specs a prewarm node hoists setup for (its representative)."""
        return (self.spec,) if self.spec is not None else ()

    def describe(self) -> str:
        spec = self.spec
        label = (f"{spec.workload}@{spec.size} "
                 f"{getattr(spec.mode, 'value', spec.mode)}"
                 f"#{spec.iteration}" if spec is not None else "-")
        role = f" [{self.role}]" if self.role else ""
        return f"n{self.node_id} {self.kind}{role} {label}"


class SpecDAG:
    """An immutable dependency graph over sweep cells.

    Nodes are stored in a deterministic order (``node_id`` == index);
    every structural query — :meth:`walk`, :meth:`layers`,
    :meth:`ready` — resolves ties by ``node_id``, so two processes
    compiling the same grid agree on the schedule bit-for-bit.
    """

    def __init__(self, nodes: Sequence[SpecNode]):
        self.nodes: Tuple[SpecNode, ...] = tuple(nodes)
        for index, node in enumerate(self.nodes):
            if node.node_id != index:
                raise ValueError(
                    f"node_id {node.node_id} at position {index}; "
                    "node_id must equal the node's index")
            for parent in node.parents:
                if not 0 <= parent < len(self.nodes):
                    raise ValueError(
                        f"node {index} references unknown parent {parent}")
        self._children: Dict[int, List[int]] = {
            node.node_id: [] for node in self.nodes}
        for node in self.nodes:
            for parent in node.parents:
                self._children[parent].append(node.node_id)

    # ------------------------------------------------------------------
    # Introspection (the walk_program / find_parents surface)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[SpecNode]:
        return iter(self.nodes)

    def __getitem__(self, node_id: int) -> SpecNode:
        return self.nodes[node_id]

    @property
    def run_nodes(self) -> List[SpecNode]:
        return [node for node in self.nodes if node.is_run]

    @property
    def run_count(self) -> int:
        return sum(1 for node in self.nodes if node.is_run)

    @property
    def specs(self) -> List[RunSpec]:
        """Run-node specs in ``run_index`` order (input spec order)."""
        ordered = sorted(self.run_nodes, key=lambda node: node.run_index)
        return [node.spec for node in ordered]

    def validate(self) -> None:
        """Raise :class:`ValueError` on a cycle (walk covers all nodes)."""
        seen = sum(1 for _ in self.walk())
        if seen != len(self.nodes):
            raise ValueError(
                f"cyclic DAG: topological walk reached {seen} of "
                f"{len(self.nodes)} nodes")

    def walk(self) -> Iterator[Tuple[SpecNode, int]]:
        """Deterministic topological walk: yields ``(node, layer)``.

        Kahn's algorithm with the ready set kept sorted by
        ``node_id`` — the fabric's canonical schedule, mirrored after
        numpywren's ``walk_program``. A node's layer is
        ``1 + max(parent layers)`` (0 for roots).
        """
        remaining = {node.node_id: len(node.parents)
                     for node in self.nodes}
        layer_of: Dict[int, int] = {}
        ready = sorted(node_id for node_id, count in remaining.items()
                       if count == 0)
        while ready:
            node_id = ready.pop(0)
            node = self.nodes[node_id]
            layer = (max((layer_of[parent] for parent in node.parents),
                         default=-1) + 1)
            layer_of[node_id] = layer
            yield node, layer
            released = []
            for child in self._children[node_id]:
                remaining[child] -= 1
                if remaining[child] == 0:
                    released.append(child)
            if released:
                ready = sorted(ready + released)

    def layers(self) -> List[List[SpecNode]]:
        """Nodes grouped by topological layer, each layer id-sorted."""
        grouped: Dict[int, List[SpecNode]] = {}
        for node, layer in self.walk():
            grouped.setdefault(layer, []).append(node)
        return [grouped[layer] for layer in sorted(grouped)]

    def ready(self, committed: set) -> List[int]:
        """Uncommitted node ids whose parents are all committed."""
        return [node.node_id for node in self.nodes
                if node.node_id not in committed
                and all(parent in committed for parent in node.parents)]

    # ------------------------------------------------------------------
    # Manifest round-trip (the coordinator writes dag.json; workers load)
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps({
            "version": 1,
            "nodes": [{
                "node_id": node.node_id, "kind": node.kind,
                "parents": list(node.parents),
                "group": list(node.group),
                "family": list(node.family),
                "run_index": node.run_index,
                "role": node.role,
                "spec": _spec_to_json(node.spec),
            } for node in self.nodes],
        }, sort_keys=True)

    @classmethod
    def from_json(cls, payload: str) -> "SpecDAG":
        data = json.loads(payload)
        # ``family`` is absent from pre-axis-fusion manifests; default
        # to no affinity rather than rejecting the manifest.
        return cls([SpecNode(
            node_id=entry["node_id"], kind=entry["kind"],
            spec=_spec_from_json(entry["spec"]),
            parents=tuple(entry["parents"]),
            group=tuple(_rehydrate_group(entry["group"])),
            family=tuple(_rehydrate_group(entry.get("family", []))),
            run_index=entry["run_index"], role=entry.get("role", ""),
        ) for entry in data["nodes"]])


def _spec_to_json(spec: Optional[RunSpec]) -> Optional[Dict]:
    if spec is None:
        return None
    return {"workload": spec.workload, "size": spec.size,
            "mode": getattr(spec.mode, "value", spec.mode),
            "iteration": spec.iteration, "base_seed": spec.base_seed,
            "blocks": spec.blocks, "threads": spec.threads,
            "smem_carveout_bytes": spec.smem_carveout_bytes,
            "seed_salt": spec.seed_salt}


def _spec_from_json(data: Optional[Dict]) -> Optional[RunSpec]:
    if data is None:
        return None
    return RunSpec(**data)


def _rehydrate_group(group: Sequence) -> List:
    # JSON turns nested tuples into lists; normalize back so group
    # equality survives the manifest round-trip.
    return [tuple(_rehydrate_group(item)) if isinstance(item, list)
            else item for item in group]


# ----------------------------------------------------------------------
# numpywren-style free functions
# ----------------------------------------------------------------------
def walk_program(dag: SpecDAG) -> List[Tuple[int, int]]:
    """``[(node_id, layer), ...]`` in the canonical topological order."""
    return [(node.node_id, layer) for node, layer in dag.walk()]


def find_parents(dag: SpecDAG, node_id: int) -> List[int]:
    """Direct parents of one node (sorted)."""
    return sorted(dag[node_id].parents)


def find_children(dag: SpecDAG, node_id: int) -> List[int]:
    """Direct children of one node (sorted)."""
    return sorted(dag._children[node_id])


# ----------------------------------------------------------------------
# Compilers
# ----------------------------------------------------------------------
def group_key(spec: RunSpec) -> Tuple:
    """The compile-once vector-engine coordinate of one spec.

    Matches the grouping the executor's whole-grid precompute uses
    (``(spec_coords, mode, carveout)``): all specs sharing it replay
    from one compiled tape.
    """
    return (spec_coords(spec), getattr(spec.mode, "value", spec.mode),
            spec.smem_carveout_bytes)


def family_key(spec: RunSpec) -> Tuple:
    """The axis-fusion coordinate of one spec.

    Matches the executor's family grouping (``(workload, mode,
    base_seed, seed_salt)``): all cells sharing it vary along
    sensitivity axes only and are candidates for one fused array
    replay (:func:`repro.sim.vecgrid.compile_family`).  A family is a
    union of :func:`group_key` groups.
    """
    return (spec.workload, getattr(spec.mode, "value", spec.mode),
            spec.base_seed, spec.seed_salt)


def compile_grid(specs: Sequence[RunSpec]) -> SpecDAG:
    """Flat grid -> degenerate single-layer DAG, node-for-node.

    The identity compilation: one run node per spec in input order,
    no parents, ``run_index == node_id``. Executing this DAG is
    exactly today's flat sweep.
    """
    return SpecDAG([SpecNode(node_id=index, spec=spec, run_index=index,
                             group=group_key(spec),
                             family=family_key(spec))
                    for index, spec in enumerate(specs)])


def compile_figure_grid(specs: Sequence[RunSpec]) -> SpecDAG:
    """Figure grid: edge-free, grouped by compile-once coordinates.

    Structurally identical to :func:`compile_grid` (figures have no
    inter-cell dependencies); the value is the ``group`` annotation
    the fabric scheduler uses for tape-affinity — a worker drains one
    group before hopping to the next, so each group's program
    compiles once per worker instead of once per cell.
    """
    return compile_grid(specs)


def compile_sensitivity_grid(specs: Sequence[RunSpec]) -> SpecDAG:
    """Sensitivity sweep: shared phase-memo-prewarm prefix per group.

    Every distinct group (sweep point x mode) gets one prewarm node;
    the group's run cells all depend on it. The prewarm does the
    work the executor's ``prewarm()`` hoists today — program build +
    fingerprint + phase-memo batch-warm — once per group, before any
    cell of the group is dispatched anywhere.
    """
    nodes: List[SpecNode] = []
    prewarm_of: Dict[Tuple, int] = {}
    pending: List[Tuple[int, RunSpec]] = []  # (run_index, spec)
    for run_index, spec in enumerate(specs):
        key = group_key(spec)
        if key not in prewarm_of:
            prewarm_of[key] = len(nodes)
            nodes.append(SpecNode(node_id=len(nodes), kind=KIND_PREWARM,
                                  spec=spec, group=key,
                                  family=family_key(spec),
                                  role="prewarm"))
        pending.append((run_index, spec))
    for run_index, spec in pending:
        key = group_key(spec)
        nodes.append(SpecNode(node_id=len(nodes), spec=spec,
                              parents=(prewarm_of[key],), group=key,
                              family=family_key(spec),
                              run_index=run_index))
    return SpecDAG(nodes)


def compile_size_search_grid(specs: Sequence[RunSpec]) -> SpecDAG:
    """Size search: every cell of a size depends on the size's probe.

    The probe is the size's first cell in input order (first mode,
    iteration 0 — the cheapest question to ask of an untested size).
    Only after the probe commits does the size's full
    mode x iteration grid fan out, so a size that is broken or wildly
    mis-scaled costs one cell, not a grid.
    """
    nodes: List[SpecNode] = []
    probe_of: Dict[Tuple[str, str], int] = {}
    for run_index, spec in enumerate(specs):
        size_key = (spec.workload, spec.size)
        probe = probe_of.get(size_key)
        if probe is None:
            probe_of[size_key] = len(nodes)
            nodes.append(SpecNode(node_id=len(nodes), spec=spec,
                                  run_index=run_index,
                                  group=group_key(spec),
                                  family=family_key(spec),
                                  role="probe"))
        else:
            nodes.append(SpecNode(node_id=len(nodes), spec=spec,
                                  parents=(probe,),
                                  run_index=run_index,
                                  group=group_key(spec),
                                  family=family_key(spec)))
    return SpecDAG(nodes)


#: Named structures ``repro fabric run --structure`` selects between.
STRUCTURES = {
    "flat": compile_grid,
    "figure": compile_figure_grid,
    "sensitivity": compile_sensitivity_grid,
    "sizesearch": compile_size_search_grid,
}


def compile_sweep(specs: Sequence[RunSpec],
                  structure: str = "figure") -> SpecDAG:
    """Compile a spec list under one of the named structures."""
    try:
        compiler = STRUCTURES[structure]
    except KeyError:
        raise ValueError(
            f"unknown structure {structure!r}; expected one of "
            f"{', '.join(STRUCTURES)}") from None
    return compiler(specs)


def renumber(dag: SpecDAG, keep: Sequence[int]) -> SpecDAG:
    """A sub-DAG over ``keep`` (parents outside the cut are dropped)."""
    keep_set = set(keep)
    mapping = {old: new for new, old in enumerate(sorted(keep_set))}
    nodes = []
    for old in sorted(keep_set):
        node = dag[old]
        nodes.append(replace(
            node, node_id=mapping[old],
            parents=tuple(mapping[parent] for parent in node.parents
                          if parent in keep_set)))
    return SpecDAG(nodes)
