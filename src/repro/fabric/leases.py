"""Fenced, heartbeat-renewed node leases over a shared filesystem.

The fabric's only coordination medium is a directory (``leases/``
under the fabric root) visible to every worker. Three mechanisms make
that safe without any server:

**Fencing tokens.** Every claim of a node consumes a fresh
monotonically increasing token, acquired by ``O_CREAT | O_EXCL``
creation of ``node<id>.t<token>`` — the one filesystem primitive that
is atomic test-and-set on every local filesystem. Two workers racing
for the same node compute the same next token; exactly one creation
succeeds, the loser backs off. The token is carried on every
subsequent action (renew, commit, journal event), so any *later*
claimant outranks every earlier one: a zombie worker resuming after a
stall finds the lease file holds a higher token than its own and is
**fenced** — it must not commit.

**Heartbeat leases.** The claim writes ``node<id>.json`` (temp +
atomic rename) recording holder, token and heartbeat timestamp; the
holder re-writes it every ``interval`` seconds. A lease whose
heartbeat is older than ``lease_s`` is *expired*: anyone may claim
over it (with a higher token). A crashed worker therefore blocks its
node for at most one lease term.

**First commit wins.** Fencing closes the barn door *before* the
result store; the store itself (``ResultCache.put``'s ``os.link``
publish) and the journal reducer (first ``commit`` event per node)
are each independently first-commit-wins, so even the unavoidable
check-then-commit window — fence check passes, a steal lands, the
zombie commits anyway — degrades to a duplicate of a bit-identical
record, never corruption. Three independent layers must all fail for
a wrong result to surface, and each is exercised separately in
``tests/fabric/``.
"""

from __future__ import annotations

import json
import os
import re
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, Optional, Union

_TOKEN_RE = re.compile(r"^node(\d+)\.t(\d+)$")


@dataclass(frozen=True)
class Lease:
    """One worker's claim on one DAG node."""

    node_id: int
    worker: str
    token: int
    acquired_ts: float
    heartbeat_ts: float

    def age(self, now: Optional[float] = None) -> float:
        """Seconds since the last heartbeat."""
        return (time.time() if now is None else now) - self.heartbeat_ts

    def expired(self, lease_s: float, now: Optional[float] = None) -> bool:
        return self.age(now) > lease_s


class LeaseDir:
    """The ``leases/`` directory: claim, renew, fence, release.

    Safe for concurrent use from any number of processes on one
    filesystem; every mutation is either ``O_EXCL`` creation (token
    grant) or temp-file + atomic rename (lease record), so no reader
    ever observes a torn lease.
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def lease_path(self, node_id: int) -> Path:
        return self.root / f"node{node_id}.json"

    def read(self, node_id: int) -> Optional[Lease]:
        """The current lease on a node, or ``None``.

        A torn or half-written record (impossible via this class, but
        the fabric assumes hostile crashes) reads as no lease — the
        node is then stealable, which is the safe direction.
        """
        try:
            record = json.loads(self.lease_path(node_id).read_text())
            return Lease(node_id=int(record["node_id"]),
                         worker=str(record["worker"]),
                         token=int(record["token"]),
                         acquired_ts=float(record["acquired_ts"]),
                         heartbeat_ts=float(record["heartbeat_ts"]))
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def all_leases(self) -> Dict[int, Lease]:
        """Every live lease record, by node id (for status rendering)."""
        leases: Dict[int, Lease] = {}
        try:
            names = os.listdir(self.root)
        except OSError:
            return leases
        for name in sorted(names):
            if name.startswith("node") and name.endswith(".json"):
                try:
                    node_id = int(name[4:-5])
                except ValueError:
                    continue
                lease = self.read(node_id)
                if lease is not None:
                    leases[node_id] = lease
        return leases

    def highest_token(self, node_id: int) -> int:
        """The highest token ever granted for a node (0 if none)."""
        highest = 0
        try:
            names = os.listdir(self.root)
        except OSError:
            return highest
        for name in names:
            match = _TOKEN_RE.match(name)
            if match and int(match.group(1)) == node_id:
                highest = max(highest, int(match.group(2)))
        return highest

    # ------------------------------------------------------------------
    def claim(self, node_id: int, worker: str, lease_s: float,
              beyond_token: Optional[int] = None) -> Optional[Lease]:
        """Try to claim a node; ``None`` means someone else holds it.

        A node is claimable when it has no lease, its lease's
        heartbeat has expired, or ``beyond_token`` is given (the
        coordinator's speculative re-dispatch: claim *over* a fresh
        lease whose token is ``<= beyond_token`` — the straggler keeps
        running but is now fenced).

        The grant itself is the ``O_CREAT|O_EXCL`` creation of the
        token file: of any number of racing claimants exactly one
        wins; losers return ``None`` and pick another node.
        """
        current = self.read(node_id)
        granted = self.highest_token(node_id)
        effective = max(granted, current.token if current else 0)
        if current is not None and not current.expired(lease_s):
            if beyond_token is None or effective > beyond_token:
                return None
        token = effective + 1
        try:
            fd = os.open(self.root / f"node{node_id}.t{token}",
                         os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            os.close(fd)
        except FileExistsError:
            return None  # lost the token race; caller moves on
        now = time.time()
        lease = Lease(node_id=node_id, worker=worker, token=token,
                      acquired_ts=now, heartbeat_ts=now)
        self._write(lease)
        return lease

    def renew(self, lease: Lease) -> Optional[Lease]:
        """Heartbeat: refresh the lease if we still hold it.

        Returns the renewed lease, or ``None`` if a higher fencing
        token has since been granted for the node — this worker has
        been fenced and must abandon the node without committing.

        The fence decision reads the **token files**, not the lease
        JSON: the JSON is replaced with plain last-rename-wins, so a
        zombie's in-flight heartbeat write could momentarily mask a
        stealer's record — but it can never un-create the stealer's
        ``O_EXCL`` token file, which is why the token files are the
        authority for every fencing decision.
        """
        if self.highest_token(lease.node_id) > lease.token:
            return None
        renewed = replace(lease, heartbeat_ts=time.time())
        self._write(renewed)
        return renewed

    def check(self, lease: Lease) -> bool:
        """Commit-time fence check: do we still hold the node?

        True iff no higher token has been granted (token files are
        the authority; see :meth:`renew`).
        """
        return self.highest_token(lease.node_id) <= lease.token

    def release(self, lease: Lease) -> None:
        """Drop the lease after commit (only if we still hold it).

        A fenced worker (a higher token exists) must not unlink the
        stealer's record; the ``<=`` guard also lets the holder clean
        up after a zombie's stale heartbeat write momentarily put an
        *older* token back in the file.
        """
        current = self.read(lease.node_id)
        if current is not None and current.token <= lease.token \
                and self.check(lease):
            try:
                self.lease_path(lease.node_id).unlink()
            except OSError:  # pragma: no cover - benign release race
                pass

    def sweep(self, node_ids) -> int:
        """Unlink lease files for finished nodes; returns how many.

        The coordinator calls this with the committed/failed node set
        so a crash between a worker's commit and its release can never
        leave a lease dangling forever.
        """
        removed = 0
        for node_id in node_ids:
            try:
                self.lease_path(node_id).unlink()
                removed += 1
            except OSError:
                continue
        return removed

    # ------------------------------------------------------------------
    def _write(self, lease: Lease) -> None:
        path = self.lease_path(lease.node_id)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.t{lease.token}.tmp")
        tmp.write_text(json.dumps({
            "node_id": lease.node_id, "worker": lease.worker,
            "token": lease.token, "acquired_ts": lease.acquired_ts,
            "heartbeat_ts": lease.heartbeat_ts}))
        tmp.replace(path)
