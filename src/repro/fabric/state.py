"""Reduce the coordination log + lease directory to fabric state.

Nothing in the fabric holds state in memory: every scheduling
decision — worker "what should I run next", coordinator "who
straggled", ``repro fabric status`` "what is stuck" — is a pure fold
over two sources any process can read at any time:

* the shared :class:`~repro.harness.resilience.SweepJournal`
  (``claim`` / ``renew`` / ``commit`` / ``error`` / ``abandon`` /
  ``redispatch`` / ``fenced`` events, appended O_APPEND one line at a
  time so concurrent writers never interleave), and
* the :class:`~repro.fabric.leases.LeaseDir` (who holds what, how
  stale their heartbeat is).

The fold is deterministic: replaying the same journal bytes yields
the same :class:`FabricState`, which is what makes a crashed
coordinator restartable and a second terminal's ``status`` view
trustworthy.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .dag import SpecDAG
from .leases import Lease, LeaseDir

# Node lifecycle (display + scheduling statuses).
PENDING = "pending"      # parents not yet committed
READY = "ready"          # claimable now
LEASED = "leased"        # live lease, work in flight
COMMITTED = "committed"  # first commit event seen
FAILED = "failed"        # terminal error event seen
SKIPPED = "skipped"      # an ancestor failed; will never run


@dataclass
class NodeState:
    """Everything the log says about one DAG node."""

    node_id: int
    status: str = PENDING
    worker: Optional[str] = None     # current/last lease holder
    token: int = 0                   # highest token seen in the log
    attempts: int = 0                # claims observed
    errors: int = 0                  # non-terminal error events
    runtime_s: Optional[float] = None
    committed_by: Optional[str] = None
    claimed_ts: Optional[float] = None
    redispatch_token: Optional[int] = None  # steal allowed up to this
    abandoned: int = 0               # expired-lease abandon events

    @property
    def finished(self) -> bool:
        return self.status in (COMMITTED, FAILED, SKIPPED)


@dataclass
class FabricState:
    """One consistent snapshot of a fabric sweep."""

    nodes: Dict[int, NodeState] = field(default_factory=dict)
    workers: Dict[str, float] = field(default_factory=dict)  # last-seen ts
    leases: Dict[int, Lease] = field(default_factory=dict)
    now: float = 0.0

    def counts(self) -> Dict[str, int]:
        tally = {status: 0 for status in
                 (PENDING, READY, LEASED, COMMITTED, FAILED, SKIPPED)}
        for node in self.nodes.values():
            tally[node.status] += 1
        return tally

    @property
    def complete(self) -> bool:
        return all(node.finished for node in self.nodes.values())

    @property
    def abandoned_total(self) -> int:
        return sum(node.abandoned for node in self.nodes.values())

    @property
    def redispatched(self) -> List[int]:
        return sorted(node.node_id for node in self.nodes.values()
                      if node.redispatch_token is not None)

    def claimable(self) -> List[NodeState]:
        """Nodes a worker may try to claim right now, id-sorted.

        ``READY`` nodes, plus ``LEASED`` nodes the coordinator has
        marked for speculative re-dispatch (the claim must then pass
        ``beyond_token=redispatch_token`` to out-fence the straggler).
        """
        out = [node for node in self.nodes.values()
               if node.status == READY
               or (node.status == LEASED
                   and node.redispatch_token is not None
                   and node.token <= node.redispatch_token)]
        return sorted(out, key=lambda node: node.node_id)

    def heartbeat_ages(self) -> Dict[str, float]:
        """Seconds since each known worker was last heard from."""
        return {worker: max(0.0, self.now - seen)
                for worker, seen in sorted(self.workers.items())}


def reduce_state(dag: SpecDAG, events: List[Dict],
                 leases: Dict[int, Lease], lease_s: float,
                 max_errors: int = 1,
                 now: Optional[float] = None) -> FabricState:
    """Fold the event log + lease snapshot into a :class:`FabricState`.

    ``events`` is :meth:`SweepJournal.events` output (append order).
    ``max_errors`` is how many *non-terminal* error events a node may
    accumulate before it is declared failed anyway (a backstop against
    a poisoned node being re-claimed forever).
    """
    now = time.time() if now is None else now
    state = FabricState(now=now, leases=dict(leases))
    for node in dag:
        state.nodes[node.node_id] = NodeState(node_id=node.node_id)

    committed: Set[int] = set()
    for record in events:
        event = record.get("event")
        node_id = record.get("node")
        worker = record.get("worker")
        ts = record.get("ts")
        if worker and ts is not None:
            seen = state.workers.get(worker, 0.0)
            state.workers[worker] = max(seen, float(ts))
        node = state.nodes.get(node_id)
        if node is None:
            continue
        token = int(record.get("token") or 0)
        node.token = max(node.token, token)
        if event == "claim":
            node.attempts += 1
            node.worker = worker
            node.claimed_ts = float(ts) if ts is not None else None
        elif event == "commit":
            if node_id not in committed:  # first commit wins
                committed.add(node_id)
                node.committed_by = worker
                if record.get("runtime_s") is not None:
                    node.runtime_s = float(record["runtime_s"])
        elif event == "error":
            node.errors += 1
            if record.get("terminal"):
                node.errors = max(node.errors, max_errors)
        elif event == "abandon":
            node.abandoned += 1
        elif event == "redispatch":
            node.redispatch_token = max(node.redispatch_token or 0, token)

    # Lease files refresh worker last-seen too (heartbeats may outrun
    # the journal when renew events are throttled).
    for lease in leases.values():
        seen = state.workers.get(lease.worker, 0.0)
        state.workers[lease.worker] = max(seen, lease.heartbeat_ts)

    # Statuses, in dependency order (node_id order is topological for
    # every compiler in dag.py, but walk() holds regardless).
    failed: Set[int] = set()
    skipped: Set[int] = set()
    for node_obj, _layer in dag.walk():
        node = state.nodes[node_obj.node_id]
        if node_obj.node_id in committed:
            node.status = COMMITTED
            continue
        if node.errors >= max_errors:
            node.status = FAILED
            failed.add(node_obj.node_id)
            continue
        if any(parent in failed or parent in skipped
               for parent in node_obj.parents):
            node.status = SKIPPED
            skipped.add(node_obj.node_id)
            continue
        lease = leases.get(node_obj.node_id)
        if lease is not None and not lease.expired(lease_s, now) \
                and lease.token >= node.token:
            node.status = LEASED
            node.worker = lease.worker
            continue
        if all(parent in committed for parent in node_obj.parents):
            node.status = READY
        else:
            node.status = PENDING
    return state


def straggler_nodes(dag: SpecDAG, state: FabricState,
                    straggler_factor: float = 4.0,
                    straggler_min_s: float = 1.0,
                    min_samples: int = 3) -> List[Tuple[int, int]]:
    """Leased nodes running suspiciously long: ``[(node_id, token)]``.

    A leased node straggles when its elapsed time since claim exceeds
    ``max(straggler_min_s, straggler_factor * median)`` where the
    median is over committed runtimes *of the node's group* (same
    compiled tape — the only apples-to-apples baseline); with fewer
    than ``min_samples`` committed in the group, the global median is
    used, and with fewer than ``min_samples`` overall there is no
    baseline and nothing straggles. Already-redispatched nodes (at
    their current token) are not re-reported.
    """
    by_group: Dict[Tuple, List[float]] = {}
    all_runtimes: List[float] = []
    for node_obj in dag:
        node = state.nodes[node_obj.node_id]
        if node.status == COMMITTED and node.runtime_s is not None:
            by_group.setdefault(node_obj.group, []).append(node.runtime_s)
            all_runtimes.append(node.runtime_s)
    if len(all_runtimes) < min_samples:
        return []
    out: List[Tuple[int, int]] = []
    for node_obj in dag:
        node = state.nodes[node_obj.node_id]
        if node.status != LEASED:
            continue
        lease = state.leases.get(node_obj.node_id)
        started = (lease.acquired_ts if lease is not None
                   else node.claimed_ts)
        if started is None:
            continue
        token = lease.token if lease is not None else node.token
        if node.redispatch_token is not None \
                and node.redispatch_token >= token:
            continue  # already marked; don't spam redispatch events
        samples = by_group.get(node_obj.group) or all_runtimes
        if len(samples) < min_samples:
            samples = all_runtimes
        budget = max(straggler_min_s,
                     straggler_factor * statistics.median(samples))
        if state.now - started > budget:
            out.append((node_obj.node_id, token))
    return out


def expired_leases(state: FabricState, lease_s: float) -> List[Lease]:
    """Lease records whose heartbeat is stale, on unfinished nodes."""
    out = []
    for node_id, lease in sorted(state.leases.items()):
        node = state.nodes.get(node_id)
        if node is not None and node.finished:
            continue
        if lease.expired(lease_s, state.now):
            out.append(lease)
    return out
