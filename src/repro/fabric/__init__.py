"""repro.fabric — distributed sweep fabric over a shared filesystem.

Compiles flat :class:`~repro.harness.executor.RunSpec` grids into
dependency DAGs (:mod:`repro.fabric.dag`), then executes them either
serially (:meth:`repro.harness.executor.SweepExecutor.run_dag`) or
across N crash-prone worker processes coordinated purely through a
shared directory: fenced heartbeat leases (:mod:`repro.fabric.leases`),
a durable journal as the coordination log, the content-addressed
result cache as the store, and a coordinator that abandons dead
workers' leases and speculatively re-dispatches stragglers
(:mod:`repro.fabric.coordinator`). Any interleaving of crashes,
stalls, partitions and re-executions yields results bit-identical to
the serial sweep — see ``docs/FABRIC.md``.
"""

from .dag import (SpecDAG, SpecNode, compile_figure_grid, compile_grid,
                  compile_sensitivity_grid, compile_size_search_grid,
                  compile_sweep, family_key, find_children, find_parents,
                  group_key, walk_program, STRUCTURES)
from .layout import FabricMeta, FabricRoot
from .leases import Lease, LeaseDir
from .state import (FabricState, NodeState, expired_leases, reduce_state,
                    straggler_nodes)
from .worker import FabricWorker, WorkerCrashed
from .coordinator import (Coordinator, CoordinatorStats, FabricTimeout,
                          run_fabric)
from .status import fabric_state, render_status

__all__ = [
    "SpecDAG", "SpecNode", "compile_grid", "compile_figure_grid",
    "compile_sensitivity_grid", "compile_size_search_grid",
    "compile_sweep", "walk_program", "find_parents", "find_children",
    "group_key", "family_key", "STRUCTURES",
    "FabricMeta", "FabricRoot",
    "Lease", "LeaseDir",
    "FabricState", "NodeState", "reduce_state", "straggler_nodes",
    "expired_leases",
    "FabricWorker", "WorkerCrashed",
    "Coordinator", "CoordinatorStats", "FabricTimeout", "run_fabric",
    "fabric_state", "render_status",
]
