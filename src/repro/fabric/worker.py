"""The fabric worker: claim, compute, commit — and survive the rest.

One :class:`FabricWorker` is one competing consumer of the fabric
root's DAG. Its loop is stateless between iterations (every decision
re-reduces the shared journal + lease directory via
:func:`repro.fabric.state.reduce_state`):

1. snapshot state; exit when the sweep is complete;
2. pick a claimable node — same compile-group as the last one when
   possible (tape affinity: the vector engine compiles each group
   once per process), lowest ``node_id`` otherwise;
3. claim it (fenced token + lease), start heartbeating;
4. run it: cache hit, or engine execution timed for the straggler
   baseline; prewarm nodes build their group's program instead;
5. fence-check, then commit: first ``ResultCache.put`` wins the
   result, the journal gets one line carrying both the checkpoint
   view (``key``/``status``) and the event view (``commit``/node/
   worker/token/runtime);
6. release the lease and go to 1.

Chaos hooks (:func:`repro.harness.faults.fabric_fault`, keyed on the
fencing token so only the *first* claimant suffers) can SIGKILL the
worker mid-lease (``worker_crash``), stall it while heartbeating
(``lease_stall``), or mute its heartbeats while it keeps computing
(``partition``). Recovery for all three is someone else's job — the
coordinator notices, the protocol fences — which is the point: a
worker needs no cleanup path of its own.

Determinism: every result a worker publishes is a pure function of
the spec (PR 3's seeding contract), the cache key is content-
addressed, and commits are first-wins at three layers, so *any*
interleaving of workers, crashes and speculative re-executions
publishes byte-identical bytes per key — the chaos suite
(``tests/fabric/test_fabric_chaos.py``) diffs a crashed 3-worker
sweep against the serial reference byte for byte.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from typing import Optional

from ..harness import faults
from ..harness.executor import (Calibration, ResultCache, RunSpec,
                                SystemSpec, cache_key,
                                environment_fingerprint, execute_spec,
                                program_fingerprint)
from ..harness.resilience import SpecStatus
from .dag import SpecDAG, SpecNode
from .layout import FabricRoot
from .state import FabricState, NodeState, reduce_state


class WorkerCrashed(RuntimeError):
    """Raised by the inline crash hook (tests) instead of SIGKILL."""


def _sigkill_self() -> None:  # pragma: no cover - kills the process
    os.kill(os.getpid(), signal.SIGKILL)


class FabricWorker:
    """One competing consumer of a fabric root. See module docstring."""

    #: Extra read attempts absorbed before a flaky cache read degrades
    #: to a miss (mirrors ``SweepExecutor.CACHE_READ_RETRIES``).
    CACHE_READ_RETRIES = 2

    def __init__(self, fabric: FabricRoot, worker_id: str,
                 system: Optional[SystemSpec] = None,
                 calib: Optional[Calibration] = None,
                 crash_hook=None):
        self.fabric = fabric
        self.worker_id = worker_id
        self.dag: SpecDAG = fabric.load_dag()
        self.meta = fabric.load_meta()
        self.journal = fabric.journal()
        self.leases = fabric.leases()
        self.cache: ResultCache = fabric.cache()
        self.system = system
        self.calib = calib
        # Tests swap SIGKILL for an exception so the "crashed" worker
        # can run inline (pytest-cov cannot see subprocess lines).
        self._crash = crash_hook or _sigkill_self
        self._env_fp = environment_fingerprint(system, calib)
        self._last_group = None
        self._last_family = None
        self.committed = 0
        # Heartbeat machinery (live only while a lease is held).
        self._hb_stop: Optional[threading.Event] = None
        self._hb_thread: Optional[threading.Thread] = None
        self._fenced = False
        self._partitioned = False

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, max_nodes: Optional[int] = None,
            deadline_s: Optional[float] = None) -> int:
        """Consume nodes until the sweep completes; returns commits.

        ``max_nodes`` / ``deadline_s`` bound the loop for tests and
        for ``repro fabric worker --max-nodes`` (a worker that exits
        early just makes the sweep slower, never wrong).
        """
        self.journal.append_event("worker", worker=self.worker_id,
                                  pid=os.getpid())
        started = time.monotonic()
        while True:
            if max_nodes is not None and self.committed >= max_nodes:
                return self.committed
            if deadline_s is not None \
                    and time.monotonic() - started > deadline_s:
                return self.committed
            state = self.snapshot()
            if state.complete:
                return self.committed
            node = self._pick(state)
            if node is None:
                time.sleep(self.meta.poll_s)
                continue
            beyond = (node.redispatch_token
                      if node.status == "leased" else None)
            lease = self.leases.claim(node.node_id, self.worker_id,
                                      self.meta.lease_s,
                                      beyond_token=beyond)
            if lease is None:
                continue  # lost the race; re-snapshot and move on
            self._run_node(self.dag[node.node_id], lease,
                           prior_errors=node.errors)

    def snapshot(self) -> FabricState:
        return reduce_state(self.dag, self.journal.events(),
                            self.leases.all_leases(), self.meta.lease_s,
                            max_errors=self.meta.max_errors)

    def _pick(self, state: FabricState) -> Optional[NodeState]:
        """Claimable node, preferring group then family affinity.

        Tier 1: the last compile-group — the vector engine compiles
        each group's tape once per worker.  Tier 2: the last fusion
        family (``SpecNode.family``) — a worker that drains a whole
        family leases exactly the cells the executor can settle as
        one fused array replay, so distributed sweeps keep the
        single-process fusion win instead of scattering a family
        across workers.
        """
        candidates = state.claimable()
        if not candidates:
            return None
        if self._last_group is not None:
            for node in candidates:
                if self.dag[node.node_id].group == self._last_group:
                    return node
        if self._last_family:
            for node in candidates:
                if self.dag[node.node_id].family == self._last_family:
                    return node
        return candidates[0]

    # ------------------------------------------------------------------
    # One node, one lease
    # ------------------------------------------------------------------
    def _run_node(self, node: SpecNode, lease, prior_errors: int = 0) -> None:
        self.journal.append_event("claim", node=node.node_id,
                                  worker=self.worker_id, token=lease.token)
        self._last_group = node.group
        self._last_family = node.family
        fault = faults.fabric_fault(node.spec, lease.token)
        if fault is not None and fault.kind == faults.KIND_WORKER_CRASH:
            # Die holding the lease: no release, no event, heartbeat
            # gone. (The real hook SIGKILLs; the inline hook raises.)
            self._crash()
            raise WorkerCrashed(  # pragma: no cover - _crash always acts
                f"{self.worker_id} crashed on node {node.node_id}")
        self._partitioned = bool(
            fault is not None and fault.kind == faults.KIND_PARTITION)
        self._start_heartbeat(lease)
        try:
            if fault is not None and fault.kind == faults.KIND_LEASE_STALL:
                # A straggler, not a corpse: heartbeats keep flowing,
                # so only the coordinator's re-dispatch rescues the
                # node. Bail out of the nap early once fenced.
                self._nap(fault.hang_s)
            if self._fenced or not self.leases.check(lease):
                self._fence_out(node, lease)
                return
            if node.is_run:
                self._run_spec_node(node, lease, prior_errors)
            else:
                self._run_prewarm_node(node, lease)
        finally:
            self._stop_heartbeat()

    def _run_spec_node(self, node: SpecNode, lease,
                       prior_errors: int) -> None:
        spec = node.spec
        key = cache_key(spec, self.system, self.calib,
                        env_fingerprint=self._env_fp)
        result, runtime_s = self._cache_get(spec, key), None
        if result is None:
            begin = time.perf_counter()
            try:
                result = execute_spec(spec, system=self.system,
                                      calib=self.calib,
                                      attempt=lease.token,
                                      engine=self.meta.engine)
            except Exception as error:  # noqa: BLE001 - isolation boundary
                self._record_error(node, lease, spec, key, error,
                                   prior_errors)
                self.leases.release(lease)
                return
            runtime_s = time.perf_counter() - begin
        if self._fenced or not self.leases.check(lease):
            self._fence_out(node, lease)
            return
        self.cache.put(key, result)  # first commit wins
        self.journal.record(
            key, SpecStatus.OK, spec=spec, attempts=1,
            extra={"event": "commit", "node": node.node_id,
                   "worker": self.worker_id, "token": lease.token,
                   "runtime_s": runtime_s})
        self.committed += 1
        self.leases.release(lease)

    def _run_prewarm_node(self, node: SpecNode, lease) -> None:
        # The shared prefix a sensitivity group's cells depend on:
        # build the group's program once and fingerprint it (warming
        # the per-process program memo every later cell hits).
        program_fingerprint(node.spec)
        if self._fenced or not self.leases.check(lease):
            self._fence_out(node, lease)
            return
        self.journal.append_event("commit", node=node.node_id,
                                  worker=self.worker_id, token=lease.token)
        self.committed += 1
        self.leases.release(lease)

    def _record_error(self, node: SpecNode, lease, spec: RunSpec, key: str,
                      error: Exception, prior_errors: int) -> None:
        # One execution attempt per claim; whether this error is
        # terminal depends on how many the node already absorbed.
        terminal = prior_errors + 1 >= self.meta.max_errors
        self.journal.record(
            key, SpecStatus.FAILED if terminal else "error", spec=spec,
            attempts=1, error=f"{type(error).__name__}: {error}",
            extra={"event": "error", "node": node.node_id,
                   "worker": self.worker_id, "token": lease.token,
                   "terminal": terminal or None})

    def _fence_out(self, node: SpecNode, lease) -> None:
        # Someone out-fenced us (crash recovery or speculative
        # re-dispatch). The stealer owns the node now: no commit, no
        # release — just a diagnosable trace.
        self.journal.append_event("fenced", node=node.node_id,
                                  worker=self.worker_id, token=lease.token)

    # ------------------------------------------------------------------
    # Heartbeats
    # ------------------------------------------------------------------
    def _start_heartbeat(self, lease) -> None:
        self._fenced = False
        self._hb_stop = threading.Event()
        interval = self.meta.effective_heartbeat_s

        def beat(stop: threading.Event = self._hb_stop) -> None:
            current = lease
            while not stop.wait(interval):
                if self._partitioned:
                    continue  # zombie: computing, but silent
                renewed = self.leases.renew(current)
                if renewed is None:
                    self._fenced = True
                    return
                current = renewed
                self.journal.append_event("renew", node=current.node_id,
                                          worker=self.worker_id,
                                          token=current.token)

        self._hb_thread = threading.Thread(
            target=beat, name=f"fabric-hb-{self.worker_id}", daemon=True)
        self._hb_thread.start()

    def _stop_heartbeat(self) -> None:
        if self._hb_stop is not None:
            self._hb_stop.set()
        if self._hb_thread is not None:
            self._hb_thread.join(timeout=5.0)
        self._hb_stop = self._hb_thread = None
        self._partitioned = False

    def _nap(self, seconds: float) -> None:
        """Sleep in small slices so a fence cuts the stall short."""
        deadline = time.monotonic() + seconds
        while time.monotonic() < deadline and not self._fenced:
            time.sleep(min(0.05, max(0.0, deadline - time.monotonic())))

    # ------------------------------------------------------------------
    def _cache_get(self, spec: RunSpec, key: str):
        """Flake-resilient cache read (see executor ``_cache_get``)."""
        for _ in range(self.CACHE_READ_RETRIES + 1):
            try:
                faults.maybe_flaky_io(spec)
                return self.cache.get(key)
            except OSError:
                continue
        self.cache.stats.misses += 1
        return None


def main(root: str, worker_id: Optional[str] = None,
         max_nodes: Optional[int] = None,
         deadline_s: Optional[float] = None) -> int:
    """Entry point behind ``repro fabric worker``.

    The fault plan (if any) arrives via the ``REPRO_FAULT_PLAN``
    environment variable inherited from the coordinator — the same
    channel the executor's process pool uses.
    """
    fabric = FabricRoot(root)
    if not fabric.initialized:
        raise SystemExit(f"not a fabric root (no dag.json): {root}")
    worker = FabricWorker(
        fabric, worker_id or f"worker-{os.getpid()}")
    return worker.run(max_nodes=max_nodes, deadline_s=deadline_s)
