"""The fabric root: one directory that *is* the distributed sweep.

Workers are spawned with nothing but ``--root <dir> --id <name>``;
everything else — the compiled DAG, the engine, lease and straggler
tuning — lives in the directory, so a worker started from a second
terminal (or a second machine sharing the filesystem) joins the same
sweep with the same configuration by construction:

    <root>/
      dag.json        compiled SpecDAG manifest (immutable after init)
      meta.json       FabricMeta: engine + protocol tuning (immutable)
      journal.jsonl   shared durable SweepJournal (coordination log)
      leases/         LeaseDir (token files + lease records)
      cache/          ResultCache (content-addressed result store)

``dag.json`` and ``meta.json`` are written once by ``init`` (temp +
atomic rename) before any worker starts; only the journal and the
lease directory are ever written concurrently.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Optional, Union

from ..harness.executor import ResultCache
from ..harness.resilience import SweepJournal
from .dag import SpecDAG
from .leases import LeaseDir


@dataclass(frozen=True)
class FabricMeta:
    """Protocol tuning shared by every participant of one sweep."""

    engine: str = "fast"
    lease_s: float = 5.0          # heartbeat older than this = expired
    heartbeat_s: float = 0.0      # 0 = lease_s / 3
    straggler_factor: float = 4.0  # redispatch at factor x group median
    straggler_min_s: float = 1.0   # never redispatch under this elapsed
    straggler_min_samples: int = 3
    max_errors: int = 2            # error events before a node fails
    poll_s: float = 0.05           # worker idle poll interval

    @property
    def effective_heartbeat_s(self) -> float:
        return self.heartbeat_s if self.heartbeat_s > 0 else self.lease_s / 3

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, payload: str) -> "FabricMeta":
        return cls(**json.loads(payload))


class FabricRoot:
    """Paths + lazily constructed components of one fabric directory."""

    DAG_FILE = "dag.json"
    META_FILE = "meta.json"

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)

    # ------------------------------------------------------------------
    @property
    def dag_path(self) -> Path:
        return self.root / self.DAG_FILE

    @property
    def meta_path(self) -> Path:
        return self.root / self.META_FILE

    @property
    def journal_path(self) -> Path:
        return self.root / SweepJournal.FILENAME

    @property
    def leases_dir(self) -> Path:
        return self.root / "leases"

    @property
    def cache_dir(self) -> Path:
        return self.root / "cache"

    @property
    def initialized(self) -> bool:
        return self.dag_path.exists() and self.meta_path.exists()

    # ------------------------------------------------------------------
    @classmethod
    def init(cls, root: Union[str, Path], dag: SpecDAG,
             meta: Optional[FabricMeta] = None) -> "FabricRoot":
        """Create (or re-open) a fabric directory for one sweep.

        Re-initializing an existing root with the *same* DAG is a
        no-op (a crashed coordinator restarting); with a different DAG
        it refuses — a root is one sweep, forever.
        """
        fabric = cls(root)
        fabric.root.mkdir(parents=True, exist_ok=True)
        meta = meta or FabricMeta()
        dag_payload = dag.to_json()
        if fabric.dag_path.exists():
            if fabric.dag_path.read_text() != dag_payload:
                raise ValueError(
                    f"fabric root {fabric.root} already holds a different "
                    "sweep; use a fresh directory")
        else:
            _write_atomic(fabric.dag_path, dag_payload)
        if not fabric.meta_path.exists():
            _write_atomic(fabric.meta_path, meta.to_json())
        fabric.leases_dir.mkdir(exist_ok=True)
        fabric.cache_dir.mkdir(exist_ok=True)
        return fabric

    def load_dag(self) -> SpecDAG:
        return SpecDAG.from_json(self.dag_path.read_text())

    def load_meta(self) -> FabricMeta:
        return FabricMeta.from_json(self.meta_path.read_text())

    def journal(self) -> SweepJournal:
        # durable=True: the journal is the coordination log — a power
        # cut must not un-happen a claim another worker already acted on.
        return SweepJournal(self.journal_path, durable=True)

    def leases(self) -> LeaseDir:
        return LeaseDir(self.leases_dir)

    def cache(self) -> ResultCache:
        return ResultCache(self.cache_dir)


def _write_atomic(path: Path, payload: str) -> None:
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    tmp.write_text(payload)
    tmp.replace(path)
