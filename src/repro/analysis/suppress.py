"""Shared suppression and baseline mechanism for every lint family.

Two ways to silence a finding, both reviewable in the diff:

* **Inline pragma** - ``# repro: allow[RULE] -- justification`` on the
  flagged line suppresses that rule there; ``# repro:
  allow-file[RULE] -- justification`` anywhere in a file suppresses
  the rule for the whole file. The justification is *required*: a
  pragma without ``-- why`` (or naming an unknown rule) suppresses
  nothing and is itself reported (A001). A valid pragma that
  suppressed nothing is reported as stale (A002). Several rules may
  share one pragma: ``allow[D401,D403]``.

  Model-lint findings (K1xx/P2xx/S30x) carry no source position - they
  point at a ``(workload, mode)`` context - so for those a *file-level*
  pragma in the module defining the workload's class is the suppression
  site.

* **Baseline** - a checked-in JSON file grandfathering known findings
  so a new gate can land strict without a flag-day cleanup. Static
  findings are matched by ``(rule, path, sha of the stripped source
  line)`` - the hash pins the finding to its code, so editing the
  flagged line un-grandfathers it; model findings are matched by
  ``(rule, workload, mode, location)``. Baselined findings do not fail
  the lint (exit 4, not 1) unless ``--strict``.

Propagated findings (D409 ``impure-call-path``) carry an ``origin``
(``path:line:rule`` of the underlying hazard); suppressing the origin
hazard cascades to every propagation derived from it, so one justified
pragma silences the whole call chain.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .diagnostics import Diagnostic, RuleRegistry

PRAGMA_RE = re.compile(
    r"#\s*repro:\s*(?P<kind>allow-file|allow)"
    r"\[(?P<rules>[^\]]*)\]"
    r"(?:\s*--\s*(?P<why>\S.*))?")


@dataclass
class Pragma:
    """One parsed ``# repro: allow[...]`` comment."""

    path: Path              #: absolute path of the file carrying it
    relpath: str
    lineno: int
    kind: str               #: "allow" (line) or "allow-file"
    rules: Tuple[str, ...]
    justification: str
    used: bool = field(default=False, compare=False)

    def problems(self, known: Optional[Set[str]] = None) -> List[str]:
        known = known_rule_ids() if known is None else known
        out = []
        if not self.rules:
            out.append("names no rule")
        for rule in self.rules:
            if rule not in known:
                out.append(f"names unknown rule {rule!r}")
        if not self.justification:
            out.append("lacks the required `-- justification`")
        return out


def known_rule_ids() -> Set[str]:
    """Every rule id across every lint family (pragma validity)."""
    from .astlint import SOURCE_REGISTRY
    from .rules import DEFAULT_REGISTRY
    return ({rule.id for rule in SOURCE_REGISTRY.all_rules()}
            | {rule.id for rule in DEFAULT_REGISTRY.all_rules()})


def _comment_tokens(lines: Sequence[str]):
    """(lineno, text) of every real comment (docstring mentions of the
    pragma syntax are STRING tokens and must not count)."""
    import io
    import tokenize
    reader = io.StringIO("\n".join(lines) + "\n").readline
    try:
        for token in tokenize.generate_tokens(reader):
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return


def _pragma_target(lines: Sequence[str], lineno: int) -> int:
    """The code line a pragma covers.

    A *trailing* pragma (after code) covers its own line. A pragma on
    a comment-only line covers the next code line, skipping the rest
    of its comment block - so a long justification can wrap.
    """
    line = lines[lineno - 1] if 1 <= lineno <= len(lines) else ""
    if line.strip() and not line.lstrip().startswith("#"):
        return lineno
    for target in range(lineno + 1, len(lines) + 1):
        text = lines[target - 1].strip()
        if text and not text.startswith("#"):
            return target
    return lineno


def scan_pragmas(path: Path, relpath: str, lines: Sequence[str]
                 ) -> List[Pragma]:
    pragmas = []
    for lineno, comment in _comment_tokens(lines):
        match = PRAGMA_RE.search(comment)
        if match is None:
            continue
        rules = tuple(r.strip() for r in match.group("rules").split(",")
                      if r.strip())
        pragmas.append(Pragma(path=Path(path), relpath=relpath,
                              lineno=_pragma_target(lines, lineno),
                              kind=match.group("kind"),
                              rules=rules,
                              justification=(match.group("why")
                                             or "").strip()))
    return pragmas


def workload_source(name: str) -> Optional[Path]:
    """The file defining a workload's class (model-lint pragma site)."""
    import inspect
    try:
        from ..workloads.registry import get_workload
        cls = type(get_workload(name))
        src = inspect.getsourcefile(cls)
        return Path(src).resolve() if src else None
    except Exception:
        return None


class Suppressions:
    """Pragma set collected from a scanned module tree."""

    def __init__(self, pragmas: Iterable[Pragma] = ()):
        self.pragmas: List[Pragma] = list(pragmas)
        self._by_line: Dict[Tuple[str, int], List[Pragma]] = {}
        self._by_file: Dict[str, List[Pragma]] = {}
        self._file_by_abspath: Dict[Path, List[Pragma]] = {}
        for pragma in self.pragmas:
            if pragma.kind == "allow":
                self._by_line.setdefault(
                    (pragma.relpath, pragma.lineno), []).append(pragma)
            else:
                self._by_file.setdefault(pragma.relpath, []).append(pragma)
                self._file_by_abspath.setdefault(
                    pragma.path.resolve(), []).append(pragma)

    @classmethod
    def from_modules(cls, modules) -> "Suppressions":
        pragmas: List[Pragma] = []
        for source in modules:
            pragmas.extend(scan_pragmas(source.path, source.relpath,
                                        source.lines))
        return cls(pragmas)

    # ------------------------------------------------------------------
    def _match_site(self, relpath: str, line: int, rule: str,
                    known: Set[str]) -> Optional[Pragma]:
        """A valid pragma covering (relpath, line, rule), if any."""
        candidates = list(self._by_line.get((relpath, line), []))
        candidates += self._by_file.get(relpath, [])
        for pragma in candidates:
            if rule in pragma.rules and not pragma.problems(known):
                return pragma
        return None

    def _match_workload(self, workload: str, rule: str,
                        known: Set[str]) -> Optional[Pragma]:
        src = workload_source(workload)
        if src is None:
            return None
        for pragma in self._file_by_abspath.get(src, []):
            if rule in pragma.rules and not pragma.problems(known):
                return pragma
        return None

    def filter(self, findings: Sequence[Diagnostic],
               registry: RuleRegistry
               ) -> Tuple[List[Diagnostic], List[Diagnostic],
                          List[Diagnostic]]:
        """Split findings into (active, suppressed, pragma_diags).

        ``pragma_diags`` are the A001 (invalid pragma) and A002 (stale
        pragma) findings about the pragmas themselves.
        """
        known = known_rule_ids()
        active: List[Diagnostic] = []
        suppressed: List[Diagnostic] = []
        for diag in findings:
            pragma = None
            if diag.path:
                pragma = self._match_site(diag.path, diag.line, diag.rule,
                                          known)
            elif diag.workload:
                pragma = self._match_workload(diag.workload, diag.rule,
                                              known)
            if pragma is None and diag.origin:
                # D409 cascade: suppressing the origin hazard
                # suppresses every propagation derived from it.
                parts = diag.origin.rsplit(":", 2)
                if len(parts) == 3:
                    opath, oline, orule = parts
                    try:
                        pragma = self._match_site(opath, int(oline),
                                                  orule, known)
                    except ValueError:
                        pragma = None
            if pragma is not None:
                pragma.used = True
                suppressed.append(diag)
            else:
                active.append(diag)
        return active, suppressed, self.pragma_diagnostics(registry)

    def pragma_diagnostics(self, registry: RuleRegistry
                           ) -> List[Diagnostic]:
        """A001/A002 findings about the pragmas themselves.

        A002 (stale pragma) only fires for pragmas whose rules all
        belong to ``registry`` - the family this run actually checked;
        a model-rule pragma is not stale just because a *static* run
        produced no model findings.
        """
        # The meta-rules live in the source registry but apply to
        # pragmas of every family, so resolve them there explicitly.
        from .astlint import SOURCE_REGISTRY
        known = known_rule_ids()
        diags: List[Diagnostic] = []
        a001 = SOURCE_REGISTRY.is_enabled("A001")
        a002 = SOURCE_REGISTRY.is_enabled("A002")
        for pragma in self.pragmas:
            problems = pragma.problems(known)
            if not problems and not all(r in registry
                                        for r in pragma.rules):
                continue
            if problems and a001:
                rule = SOURCE_REGISTRY.effective_rule("A001")
                diags.append(Diagnostic(
                    rule="A001", severity=rule.severity,
                    message=(f"suppression pragma "
                             f"`{pragma.kind}[{','.join(pragma.rules)}]` "
                             f"{'; '.join(problems)} - it suppresses "
                             "nothing"),
                    path=pragma.relpath, line=pragma.lineno,
                    fix_hint="write `# repro: allow[RULE] -- why`"))
            elif not problems and not pragma.used and a002:
                rule = SOURCE_REGISTRY.effective_rule("A002")
                diags.append(Diagnostic(
                    rule="A002", severity=rule.severity,
                    message=(f"suppression pragma "
                             f"`{pragma.kind}[{','.join(pragma.rules)}]` "
                             "matched no finding in this run; remove it "
                             "or it will mask a future regression"),
                    path=pragma.relpath, line=pragma.lineno))
        return diags


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
def _content_hash(text: str) -> str:
    return hashlib.sha256(text.strip().encode()).hexdigest()[:16]


def baseline_entry(diag: Diagnostic,
                   line_text: str = "") -> Dict[str, str]:
    """The identity under which a finding is baselined."""
    if diag.path:
        return {"rule": diag.rule, "path": diag.path,
                "content": _content_hash(line_text)}
    return {"rule": diag.rule, "workload": diag.workload,
            "mode": diag.mode, "location": diag.location}


class Baseline:
    """Checked-in grandfather list (``.repro-lint-baseline.json``)."""

    VERSION = 1

    def __init__(self, entries: Iterable[Dict[str, str]] = (),
                 project_root: Optional[Path] = None):
        self.entries: List[Dict[str, str]] = list(entries)
        self.project_root = Path(project_root) if project_root else None
        self._keys: Set[Tuple] = {self._key(e) for e in self.entries}
        self._line_cache: Dict[str, List[str]] = {}

    @staticmethod
    def _key(entry: Dict[str, str]) -> Tuple:
        if "path" in entry:
            return ("static", entry["rule"], entry["path"],
                    entry.get("content", ""))
        return ("model", entry["rule"], entry.get("workload", ""),
                entry.get("mode", ""), entry.get("location", ""))

    @classmethod
    def load(cls, path: Path,
             project_root: Optional[Path] = None) -> "Baseline":
        path = Path(path)
        root = project_root or path.resolve().parent
        if not path.exists():
            return cls(project_root=root)
        payload = json.loads(path.read_text())
        if payload.get("version") != cls.VERSION:
            raise ValueError(
                f"baseline {path} has version {payload.get('version')!r}; "
                f"this tool reads version {cls.VERSION}")
        return cls(payload.get("entries", []), project_root=root)

    def _line_text(self, relpath: str, lineno: int) -> str:
        if relpath not in self._line_cache:
            lines: List[str] = []
            if self.project_root is not None:
                target = self.project_root / relpath
                if target.exists():
                    lines = target.read_text().splitlines()
            self._line_cache[relpath] = lines
        lines = self._line_cache[relpath]
        if 1 <= lineno <= len(lines):
            return lines[lineno - 1]
        return ""

    def entry_for(self, diag: Diagnostic) -> Dict[str, str]:
        return baseline_entry(
            diag, self._line_text(diag.path, diag.line) if diag.path
            else "")

    def matches(self, diag: Diagnostic) -> bool:
        return self._key(self.entry_for(diag)) in self._keys

    def filter(self, findings: Sequence[Diagnostic]
               ) -> Tuple[List[Diagnostic], List[Diagnostic]]:
        """Split findings into (active, grandfathered)."""
        active: List[Diagnostic] = []
        grandfathered: List[Diagnostic] = []
        for diag in findings:
            (grandfathered if self.matches(diag) else active).append(diag)
        return active, grandfathered

    # -- authoring ------------------------------------------------------
    @classmethod
    def from_findings(cls, findings: Sequence[Diagnostic],
                      project_root: Path) -> "Baseline":
        baseline = cls(project_root=project_root)
        seen: Set[Tuple] = set()
        for diag in findings:
            entry = baseline.entry_for(diag)
            key = cls._key(entry)
            if key not in seen:
                seen.add(key)
                baseline.entries.append(entry)
        baseline._keys = {cls._key(e) for e in baseline.entries}
        return baseline

    def save(self, path: Path) -> None:
        payload = {
            "version": self.VERSION,
            "entries": sorted(self.entries,
                              key=lambda e: sorted(e.items())),
        }
        Path(path).write_text(json.dumps(payload, indent=2,
                                         sort_keys=True) + "\n")
