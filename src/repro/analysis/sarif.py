"""SARIF 2.1.0 rendering of a :class:`LintReport`.

SARIF (Static Analysis Results Interchange Format) is what GitHub code
scanning ingests: uploading a run makes every finding an inline PR
annotation. The emitter is deliberately minimal - one ``run``, one
``tool.driver`` carrying the rule catalog, one ``result`` per active
diagnostic - and covers both rule families:

* source-level findings (D4xx/F5xx/A0xx) carry ``path``/``line`` and
  map to a ``physicalLocation``;
* model-lint findings (K1xx/P2xx/S30x) carry a ``(workload, mode,
  location)`` context instead, which lands in the result message and
  ``logicalLocations`` so they still render usefully.

Suppressed and baselined findings are emitted with a ``suppressions``
entry (kind ``inSource`` / ``external``) as the spec intends, so code
scanning shows them as suppressed rather than dropping them silently.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from .diagnostics import Diagnostic, LintReport, RuleRegistry, Severity

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")

_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def _rule_descriptor(rule) -> Dict:
    return {
        "id": rule.id,
        "name": rule.name,
        "shortDescription": {"text": rule.name.replace("-", " ")},
        "fullDescription": {"text": rule.description},
        "defaultConfiguration": {"level": _LEVELS[rule.severity]},
    }


def _result(diag: Diagnostic, rule_index: Dict[str, int],
            suppression: Optional[str] = None) -> Dict:
    message = diag.message
    if diag.fix_hint:
        message += f" Fix: {diag.fix_hint}"
    result: Dict = {
        "ruleId": diag.rule,
        "level": _LEVELS[diag.severity],
        "message": {"text": message},
    }
    if diag.rule in rule_index:
        result["ruleIndex"] = rule_index[diag.rule]
    if diag.path:
        region = {"startLine": diag.line} if diag.line else {}
        location: Dict = {
            "physicalLocation": {
                "artifactLocation": {"uri": diag.path,
                                     "uriBaseId": "SRCROOT"},
            },
        }
        if region:
            location["physicalLocation"]["region"] = region
        if diag.location:
            location["logicalLocations"] = [
                {"fullyQualifiedName": diag.location}]
        result["locations"] = [location]
    else:
        logical = ":".join(p for p in (diag.workload, diag.mode) if p)
        if diag.location:
            logical = f"{logical}/{diag.location}" if logical \
                else diag.location
        if logical:
            result["locations"] = [
                {"logicalLocations": [{"fullyQualifiedName": logical}]}]
    if suppression is not None:
        result["suppressions"] = [{"kind": suppression}]
    return result


def to_sarif(report: LintReport, registries: List[RuleRegistry],
             tool_name: str = "repro-lint",
             min_severity: Severity = Severity.INFO,
             indent: Optional[int] = 2) -> str:
    """Render a report (active + suppressed + baselined) as SARIF."""
    rules = []
    seen = set()
    for registry in registries:
        for rule in registry.all_rules():
            if rule.id not in seen:
                seen.add(rule.id)
                rules.append(_rule_descriptor(registry.effective_rule(
                    rule.id)))
    rule_index = {r["id"]: i for i, r in enumerate(rules)}

    results = [
        _result(d, rule_index) for d in report.sorted()
        if d.severity.rank >= min_severity.rank
    ]
    results += [_result(d, rule_index, suppression="inSource")
                for d in report.suppressed]
    results += [_result(d, rule_index, suppression="external")
                for d in report.baselined]

    payload = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {"driver": {
                "name": tool_name,
                "informationUri":
                    "https://github.com/repro/repro#linting",
                "rules": rules,
            }},
            "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
            "results": results,
        }],
    }
    return json.dumps(payload, indent=indent)
