"""Static analysis for the simulator: model linter + source analyzer.

The paper's conclusions only hold for structurally *valid* kernel and
transfer configurations - real CUDA rejects launches that overflow the
shared-memory carveout, and UVM silently degrades when footprints are
mis-declared. This package catches such problems before a simulation
burns cycles:

* :mod:`repro.analysis.diagnostics` - ``Diagnostic`` records, the
  ``LintReport`` container (text + JSON), and the ``RuleRegistry`` with
  per-rule enable/disable and configuration.
* :mod:`repro.analysis.rules` - the K1xx/P2xx lint rules over programs
  and kernel descriptors.
* :mod:`repro.analysis.streamcheck` - the S3xx happens-before analyzer
  over recorded ``CudaStream`` ledgers (races, cycles, dead syncs).
* :mod:`repro.analysis.runner` - lint one program, one workload, or
  the whole registry; ``validate_program`` is the fast-fail hook.

And, since the caches of PRs 2-4 rest on purity and key-completeness
assumptions, a second *source-level* analyzer (``repro lint --static``)
proves those assumptions over the Python source itself:

* :mod:`repro.analysis.astlint` - source scanning, project call graph,
  the D4xx/F5xx/A0xx rule catalog, and the orchestrator
  :func:`run_static_analysis`.
* :mod:`repro.analysis.purity` - D4xx determinism rules with
  call-graph taint propagation onto the declared pure roots.
* :mod:`repro.analysis.fingerprints` - F5xx fingerprint-completeness
  rules cross-checking dataclass schemas against cache-key functions.
* :mod:`repro.analysis.suppress` - shared ``# repro: allow[RULE]``
  pragmas and the checked-in baseline, for *all* rule families.
* :mod:`repro.analysis.sarif` - SARIF 2.1.0 output for GitHub code
  scanning.

See ``docs/LINTING.md`` for the rule catalog.
"""

from .astlint import SOURCE_REGISTRY, run_static_analysis, scan_package
from .diagnostics import (Diagnostic, LintReport, Rule, RuleRegistry,
                          Severity)
from .rules import DEFAULT_REGISTRY, LintContext, run_rules
from .runner import (LintError, lint_program, lint_registry, lint_workload,
                     validate_program)
from .sarif import to_sarif
from .streamcheck import GraphOp, StreamGraph, analyze_records
from .suppress import Baseline, Suppressions

__all__ = [
    "Baseline", "DEFAULT_REGISTRY", "Diagnostic", "GraphOp", "LintContext",
    "LintError", "LintReport", "Rule", "RuleRegistry", "SOURCE_REGISTRY",
    "Severity", "StreamGraph", "Suppressions", "analyze_records",
    "lint_program", "lint_registry", "lint_workload", "run_rules",
    "run_static_analysis", "scan_package", "to_sarif", "validate_program",
]
