"""Static analysis for the simulator: model linter + stream checker.

The paper's conclusions only hold for structurally *valid* kernel and
transfer configurations - real CUDA rejects launches that overflow the
shared-memory carveout, and UVM silently degrades when footprints are
mis-declared. This package catches such problems before a simulation
burns cycles:

* :mod:`repro.analysis.diagnostics` - ``Diagnostic`` records, the
  ``LintReport`` container (text + JSON), and the ``RuleRegistry`` with
  per-rule enable/disable and configuration.
* :mod:`repro.analysis.rules` - the K1xx/P2xx lint rules over programs
  and kernel descriptors.
* :mod:`repro.analysis.streamcheck` - the S3xx happens-before analyzer
  over recorded ``CudaStream`` ledgers (races, cycles, dead syncs).
* :mod:`repro.analysis.runner` - lint one program, one workload, or
  the whole registry; ``validate_program`` is the fast-fail hook.

See ``docs/LINTING.md`` for the rule catalog.
"""

from .diagnostics import (Diagnostic, LintReport, Rule, RuleRegistry,
                          Severity)
from .rules import DEFAULT_REGISTRY, LintContext, run_rules
from .runner import (LintError, lint_program, lint_registry, lint_workload,
                     validate_program)
from .streamcheck import GraphOp, StreamGraph, analyze_records

__all__ = [
    "DEFAULT_REGISTRY", "Diagnostic", "GraphOp", "LintContext",
    "LintError", "LintReport", "Rule", "RuleRegistry", "Severity",
    "StreamGraph", "analyze_records", "lint_program", "lint_registry",
    "lint_workload", "run_rules", "validate_program",
]
