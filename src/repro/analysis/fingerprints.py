"""Pass 2 of ``repro lint --static``: F5xx fingerprint completeness.

PR 2's content-addressed cache and PR 4's :class:`PhaseMemo` are only
sound if *every* input that can change a result feeds the key. That
property is easy to break silently: add a field to ``RunSpec``, drop a
line from ``cache_key``'s payload, or grow ``simulate_kernel`` a new
parameter that ``PhaseMemo.simulate`` forgets to key - and every warm
sweep replays stale numbers without a single test failing. This pass
turns each of those edits into a lint error:

* **F501** - cross-checks the parameters of the memoized pure function
  (``simulate_kernel``) against ``PhaseMemo.simulate``'s key tuple and
  its environment binding (``matches(system, calib)``), via AST;
* **F502** - checks the ``cache_key`` payload dict (and
  ``environment_fingerprint``) still wires every required component;
* **F503** - checks ``canonical()`` still enumerates
  ``dataclasses.fields`` generically (a hand-written field list would
  drop new fields from every digest);
* **F504** - reflects over every dataclass reachable from the schema
  roots (``RunSpec``, ``SystemSpec``, ``Calibration``, ``Program``)
  and flags fields whose declared types ``canonical()`` cannot
  serialize deterministically;
* **F505** - compares the reachable field schema against the
  checked-in manifest (``fingerprint_manifest.json``) so adding or
  retyping a field is an explicit, reviewed act
  (``repro lint --static --update-manifest``);
* **F506** - checks the memo-key classes (``KernelDescriptor``,
  ``ConfigFlags``) stay frozen dataclasses with hashable fields.
"""

from __future__ import annotations

import dataclasses
import enum
import importlib
import inspect
import json
import typing
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

import ast

from .astlint import SOURCE_REGISTRY, SourceModule
from .diagnostics import Diagnostic, RuleRegistry

#: ``module:Class`` roots whose reachable dataclass fields must all be
#: canonicalizable and manifest-tracked (everything a cache key hashes).
DEFAULT_SCHEMA_ROOTS: Tuple[str, ...] = (
    "repro.harness.executor:RunSpec",
    "repro.sim.hardware:SystemSpec",
    "repro.sim.calibration:Calibration",
    "repro.sim.program:Program",
)

#: ``module:Class`` roots used as PhaseMemo dict-key members.
DEFAULT_MEMO_KEY_ROOTS: Tuple[str, ...] = (
    "repro.sim.kernel:KernelDescriptor",
    "repro.sim.timing:ConfigFlags",
)

#: required cache_key payload entries -> identifier tokens that must
#: appear somewhere in the entry's value expression.
CACHE_KEY_REQUIRED: Dict[str, Tuple[str, ...]] = {
    "code": ("CODE_VERSION",),
    "spec": ("canonical",),
    "program": ("program_fingerprint",),
    "environment": ("env_fingerprint", "environment_fingerprint"),
}

#: required environment_fingerprint entries -> value tokens.
ENV_FP_REQUIRED: Dict[str, Tuple[str, ...]] = {
    "system": ("system", "default_system"),
    "calib": ("calib", "default_calibration"),
}

MANIFEST_NAME = "fingerprint_manifest.json"


def default_manifest_path() -> Path:
    return Path(__file__).resolve().parent / MANIFEST_NAME


def _diag(registry: RuleRegistry, rule_id: str, message: str, *,
          path: str = "", line: int = 0, location: str = "",
          fix_hint: str = "") -> Diagnostic:
    rule = registry.effective_rule(rule_id)
    return Diagnostic(rule=rule_id, severity=rule.severity,
                      message=message, location=location,
                      path=path, line=line, fix_hint=fix_hint)


# ----------------------------------------------------------------------
# AST helpers
# ----------------------------------------------------------------------
def _find_module(modules: Sequence[SourceModule],
                 suffix: str) -> Optional[SourceModule]:
    for source in modules:
        if source.module == suffix or source.module.endswith("." + suffix):
            return source
    return None


def _find_function(tree: ast.AST, name: str,
                   class_name: Optional[str] = None) -> Optional[ast.AST]:
    scope: ast.AST = tree
    if class_name is not None:
        scope = next((n for n in ast.walk(tree)
                      if isinstance(n, ast.ClassDef)
                      and n.name == class_name), None)
        if scope is None:
            return None
    for node in ast.walk(scope):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and node.name == name:
            return node
    return None


def _param_names(func: ast.AST, skip_self: bool = False) -> List[str]:
    args = func.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if skip_self and names and names[0] in ("self", "cls"):
        names = names[1:]
    return names


def _identifier_tokens(node: ast.AST) -> Set[str]:
    """Every Name id and Attribute attr inside an expression."""
    tokens: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            tokens.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            tokens.add(sub.attr)
    return tokens


def _dict_literals(func: ast.AST) -> List[ast.Dict]:
    return [node for node in ast.walk(func) if isinstance(node, ast.Dict)]


def _dict_entries(dicts: Sequence[ast.Dict]) -> Dict[str, List[ast.AST]]:
    entries: Dict[str, List[ast.AST]] = {}
    for node in dicts:
        for key, value in zip(node.keys, node.values):
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                entries.setdefault(key.value, []).append(value)
    return entries


# ----------------------------------------------------------------------
# F502: cache-key payload wiring
# ----------------------------------------------------------------------
def check_cache_key_wiring(source: SourceModule,
                           registry: Optional[RuleRegistry] = None,
                           *,
                           func_name: str = "cache_key",
                           required: Optional[Dict[str, Tuple[str, ...]]]
                           = None) -> List[Diagnostic]:
    """The payload dict of ``cache_key`` must wire every component."""
    registry = registry or SOURCE_REGISTRY
    required = required if required is not None else CACHE_KEY_REQUIRED
    func = _find_function(source.tree, func_name)
    if func is None:
        return [_diag(registry, "F502",
                      f"required cache-key function '{func_name}' not "
                      f"found in {source.relpath}",
                      path=source.relpath, line=1)]
    entries = _dict_entries(_dict_literals(func))
    diags: List[Diagnostic] = []
    for key, tokens in sorted(required.items()):
        values = entries.get(key)
        if not values:
            diags.append(_diag(
                registry, "F502",
                f"cache-key payload in '{func_name}' has no "
                f"'{key}' entry: results cached before and after a "
                f"{key} change would collide",
                path=source.relpath, line=func.lineno,
                location=func_name,
                fix_hint=f"restore the '\"{key}\": ...' payload entry"))
            continue
        if not any(_identifier_tokens(v) & set(tokens) for v in values):
            diags.append(_diag(
                registry, "F502",
                f"cache-key payload entry '{key}' in '{func_name}' no "
                f"longer references {' or '.join(tokens)}",
                path=source.relpath, line=values[0].lineno,
                location=func_name))
    return diags


def check_environment_fingerprint(source: SourceModule,
                                  registry: Optional[RuleRegistry] = None,
                                  *,
                                  func_name: str = "environment_fingerprint",
                                  required: Optional[
                                      Dict[str, Tuple[str, ...]]] = None
                                  ) -> List[Diagnostic]:
    """``environment_fingerprint`` must digest both system and calib."""
    registry = registry or SOURCE_REGISTRY
    required = required if required is not None else ENV_FP_REQUIRED
    func = _find_function(source.tree, func_name)
    if func is None:
        return [_diag(registry, "F502",
                      f"required fingerprint function '{func_name}' not "
                      f"found in {source.relpath}",
                      path=source.relpath, line=1)]
    entries = _dict_entries(_dict_literals(func))
    diags: List[Diagnostic] = []
    for key, tokens in sorted(required.items()):
        values = entries.get(key)
        if not values or not any(
                _identifier_tokens(v) & set(tokens) for v in values):
            diags.append(_diag(
                registry, "F502",
                f"'{func_name}' no longer digests '{key}': results "
                "computed under different environments would share a "
                "cache key",
                path=source.relpath, line=func.lineno,
                location=func_name))
    return diags


# ----------------------------------------------------------------------
# F501: PhaseMemo key completeness
# ----------------------------------------------------------------------
def check_memo_wiring(memo_source: SourceModule,
                      pure_source: SourceModule,
                      registry: Optional[RuleRegistry] = None,
                      *,
                      memo_class: str = "PhaseMemo",
                      memo_method: str = "simulate",
                      pure_func: str = "simulate_kernel",
                      guard_method: str = "matches") -> List[Diagnostic]:
    """Every ``simulate_kernel`` parameter must feed the memo key.

    A parameter is covered if it appears in the ``key = (...)`` tuple
    or is bound by the memo's environment guard
    (``self.matches(system, calib)``). A parameter of the pure
    function that the memo method does not even accept is also an
    error (it could never be forwarded, let alone keyed).
    """
    registry = registry or SOURCE_REGISTRY
    pure = _find_function(pure_source.tree, pure_func)
    if pure is None:
        return [_diag(registry, "F501",
                      f"memoized pure function '{pure_func}' not found "
                      f"in {pure_source.relpath}",
                      path=pure_source.relpath, line=1)]
    method = _find_function(memo_source.tree, memo_method,
                            class_name=memo_class)
    if method is None:
        return [_diag(registry, "F501",
                      f"memo method '{memo_class}.{memo_method}' not "
                      f"found in {memo_source.relpath}",
                      path=memo_source.relpath, line=1)]

    pure_params = _param_names(pure)
    memo_params = _param_names(method, skip_self=True)

    key_names: Set[str] = set()
    key_line = method.lineno
    for node in ast.walk(method):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and node.targets[0].id == "key" \
                and isinstance(node.value, ast.Tuple):
            key_names = {elt.id for elt in node.value.elts
                         if isinstance(elt, ast.Name)}
            key_line = node.lineno
    bound: Set[str] = set()
    for node in ast.walk(method):
        if isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr == guard_method:
            for arg in node.args:
                if isinstance(arg, ast.Name):
                    bound.add(arg.id)

    diags: List[Diagnostic] = []
    if not key_names:
        diags.append(_diag(
            registry, "F501",
            f"'{memo_class}.{memo_method}' has no `key = (...)` tuple: "
            "the memo cannot distinguish inputs at all",
            path=memo_source.relpath, line=method.lineno,
            location=f"{memo_class}.{memo_method}"))
        return diags
    for param in pure_params:
        if param not in memo_params:
            diags.append(_diag(
                registry, "F501",
                f"parameter '{param}' of {pure_func} is not accepted "
                f"by {memo_class}.{memo_method}: it can never reach "
                "the memo key",
                path=memo_source.relpath, line=method.lineno,
                location=f"{memo_class}.{memo_method}",
                fix_hint=f"add '{param}' to the method signature and "
                         "the key tuple"))
        elif param not in key_names and param not in bound:
            diags.append(_diag(
                registry, "F501",
                f"parameter '{param}' of {pure_func} feeds neither the "
                f"memo key tuple nor the {guard_method}() environment "
                "binding: two inputs differing only in "
                f"'{param}' collide on one memo entry",
                path=memo_source.relpath, line=key_line,
                location=f"{memo_class}.{memo_method}",
                fix_hint=f"add '{param}' to the key tuple"))
    return diags


# ----------------------------------------------------------------------
# F503: canonical() stays generic
# ----------------------------------------------------------------------
def check_canonical_generic(source: SourceModule,
                            registry: Optional[RuleRegistry] = None,
                            *,
                            func_name: str = "canonical"
                            ) -> List[Diagnostic]:
    registry = registry or SOURCE_REGISTRY
    func = _find_function(source.tree, func_name)
    if func is None:
        return [_diag(registry, "F503",
                      f"canonicalizer '{func_name}' not found in "
                      f"{source.relpath}",
                      path=source.relpath, line=1)]
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            callee = node.func
            if (isinstance(callee, ast.Name) and callee.id == "fields") \
                    or (isinstance(callee, ast.Attribute)
                        and callee.attr == "fields"):
                return []
    return [_diag(registry, "F503",
                  f"'{func_name}' no longer calls dataclasses.fields(): "
                  "a hand-enumerated field list silently drops newly "
                  "added fields from every fingerprint",
                  path=source.relpath, line=func.lineno,
                  location=func_name)]


# ----------------------------------------------------------------------
# Reflection: schema collection (F504/F505/F506)
# ----------------------------------------------------------------------
class _SchemaProblem(Exception):
    pass


def _resolve_root(root) -> type:
    if isinstance(root, str):
        module_name, _, class_name = root.partition(":")
        module = importlib.import_module(module_name)
        return getattr(module, class_name)
    return root


def _class_location(cls: type) -> Tuple[str, int]:
    """(project-relative path, lineno) of a class definition."""
    try:
        path = Path(inspect.getsourcefile(cls) or "").resolve()
        line = inspect.getsourcelines(cls)[1]
    except (OSError, TypeError):
        return "", 0
    for anchor in ("src", ):
        parts = path.parts
        if anchor in parts:
            idx = len(parts) - 1 - list(reversed(parts)).index(anchor)
            return Path(*parts[idx:]).as_posix(), line
    return path.name, line


def _type_label(tp, problems: List[str], queue: List[type]) -> str:
    """Stable label for a field type; records canonicalization problems."""
    if tp is type(None):
        return "None"
    if tp in (bool, int, float, str):
        return tp.__name__
    if isinstance(tp, type) and issubclass(tp, enum.Enum):
        return tp.__name__
    if dataclasses.is_dataclass(tp):
        queue.append(tp)
        return tp.__name__
    origin = typing.get_origin(tp)
    args = typing.get_args(tp)
    if origin is Union:
        labels = sorted(_type_label(a, problems, queue) for a in args)
        return f"Union[{', '.join(labels)}]"
    if origin in (list, tuple, Sequence, typing.Sequence):
        inner = ", ".join(_type_label(a, problems, queue)
                          for a in args if a is not Ellipsis)
        suffix = ", ..." if Ellipsis in args else ""
        name = "Tuple" if origin is tuple else "List"
        return f"{name}[{inner}{suffix}]"
    if origin in (dict, typing.Mapping):
        inner = ", ".join(_type_label(a, problems, queue) for a in args)
        return f"Dict[{inner}]"
    if origin in (set, frozenset):
        problems.append("unordered container (set/frozenset) cannot be "
                        "canonicalized deterministically")
        return "set"
    if isinstance(tp, type) and issubclass(tp, (set, frozenset)):
        problems.append("unordered container (set/frozenset) cannot be "
                        "canonicalized deterministically")
        return tp.__name__
    try:
        import numpy as np
        if isinstance(tp, type) and issubclass(tp, (np.integer, np.floating)):
            return tp.__name__
    except ImportError:  # pragma: no cover - numpy is a hard dep
        pass
    problems.append(f"type {tp!r} is not canonicalizable (no stable "
                    "serialization)")
    return repr(tp)


def collect_schema(roots: Sequence = DEFAULT_SCHEMA_ROOTS,
                   registry: Optional[RuleRegistry] = None
                   ) -> Tuple[Dict[str, Dict[str, str]], List[Diagnostic]]:
    """Field schema of every dataclass reachable from the roots.

    Returns ``(schema, f504_diagnostics)``; the schema maps
    ``module.Class`` to ``{field: type-label}`` and is what the
    manifest (F505) pins.
    """
    registry = registry or SOURCE_REGISTRY
    queue: List[type] = [_resolve_root(root) for root in roots]
    schema: Dict[str, Dict[str, str]] = {}
    diags: List[Diagnostic] = []
    seen: Set[type] = set()
    while queue:
        cls = queue.pop()
        if cls in seen or not dataclasses.is_dataclass(cls):
            continue
        seen.add(cls)
        qualname = f"{cls.__module__}.{cls.__name__}"
        try:
            hints = typing.get_type_hints(cls)
        except Exception as error:
            path, line = _class_location(cls)
            diags.append(_diag(
                registry, "F504",
                f"cannot resolve type hints of {qualname}: {error}",
                path=path, line=line, location=qualname))
            hints = {}
        fields: Dict[str, str] = {}
        for f in dataclasses.fields(cls):
            problems: List[str] = []
            label = _type_label(hints.get(f.name, f.type), problems, queue)
            fields[f.name] = label
            for problem in problems:
                path, line = _class_location(cls)
                diags.append(_diag(
                    registry, "F504",
                    f"field '{qualname}.{f.name}' ({label}): {problem}",
                    path=path, line=line, location=qualname,
                    fix_hint="use an ordered, canonicalizable type "
                             "(tuple, dict, dataclass, enum, primitive)"))
        schema[qualname] = fields
    return schema, diags


# ----------------------------------------------------------------------
# F505: manifest drift
# ----------------------------------------------------------------------
def _current_code_version() -> str:
    try:
        from ..harness.executor import CODE_VERSION
        return CODE_VERSION
    except Exception:  # pragma: no cover - partial checkouts
        return "unknown"


def build_manifest(roots: Sequence = DEFAULT_SCHEMA_ROOTS) -> Dict:
    schema, _ = collect_schema(roots)
    return {
        "version": 1,
        "code_version": _current_code_version(),
        "classes": {name: dict(sorted(fields.items()))
                    for name, fields in sorted(schema.items())},
    }


def write_manifest(path: Optional[Path] = None,
                   roots: Sequence = DEFAULT_SCHEMA_ROOTS) -> Path:
    """Regenerate the checked-in manifest (CLI ``--update-manifest``)."""
    path = Path(path or default_manifest_path())
    path.write_text(json.dumps(build_manifest(roots), indent=2,
                               sort_keys=True) + "\n")
    return path


def check_manifest(schema: Dict[str, Dict[str, str]],
                   manifest_path: Optional[Path] = None,
                   registry: Optional[RuleRegistry] = None
                   ) -> List[Diagnostic]:
    registry = registry or SOURCE_REGISTRY
    manifest_path = Path(manifest_path or default_manifest_path())
    rel = manifest_path.name
    fix = ("review the cache-key impact, run `repro lint --static "
           "--update-manifest`, and bump CODE_VERSION in "
           "harness/executor.py if previously cached results are stale")
    if not manifest_path.exists():
        return [_diag(registry, "F505",
                      f"fingerprint manifest {rel} is missing",
                      path=rel, line=1, fix_hint=fix)]
    try:
        manifest = json.loads(manifest_path.read_text())
        pinned = manifest["classes"]
    except (ValueError, KeyError) as error:
        return [_diag(registry, "F505",
                      f"fingerprint manifest {rel} is unreadable: {error}",
                      path=rel, line=1, fix_hint=fix)]
    diags: List[Diagnostic] = []
    for name in sorted(set(pinned) - set(schema)):
        diags.append(_diag(
            registry, "F505",
            f"dataclass {name} is pinned in the manifest but no longer "
            "reachable from the schema roots",
            path=rel, line=1, location=name, fix_hint=fix))
    for name in sorted(set(schema) - set(pinned)):
        diags.append(_diag(
            registry, "F505",
            f"dataclass {name} became reachable from the schema roots "
            "but is not pinned in the manifest",
            path=rel, line=1, location=name, fix_hint=fix))
    for name in sorted(set(schema) & set(pinned)):
        current, recorded = schema[name], pinned[name]
        added = sorted(set(current) - set(recorded))
        removed = sorted(set(recorded) - set(current))
        retyped = sorted(f for f in set(current) & set(recorded)
                         if current[f] != recorded[f])
        if not (added or removed or retyped):
            continue
        changes = []
        if added:
            changes.append("added " + ", ".join(
                f"{f}: {current[f]}" for f in added))
        if removed:
            changes.append("removed " + ", ".join(removed))
        if retyped:
            changes.append("retyped " + ", ".join(
                f"{f}: {recorded[f]} -> {current[f]}" for f in retyped))
        diags.append(_diag(
            registry, "F505",
            f"field schema of {name} drifted from the manifest "
            f"({'; '.join(changes)}): every cache key hashing this "
            "class changes meaning",
            path=rel, line=1, location=name, fix_hint=fix))
    return diags


# ----------------------------------------------------------------------
# F506: memo-key classes stay hashable values
# ----------------------------------------------------------------------
_UNHASHABLE_ORIGINS = (list, dict, set, typing.Mapping)


def _hashable_label(tp, problems: List[str], queue: List[type]) -> None:
    origin = typing.get_origin(tp)
    if origin in _UNHASHABLE_ORIGINS or (
            isinstance(tp, type)
            and issubclass(tp, (list, dict, set, bytearray))):
        problems.append(f"declares unhashable type {tp!r}")
        return
    if dataclasses.is_dataclass(tp):
        queue.append(tp)
        return
    for arg in typing.get_args(tp):
        if arg is not Ellipsis and arg is not type(None):
            _hashable_label(arg, problems, queue)


def check_memo_key_classes(roots: Sequence = DEFAULT_MEMO_KEY_ROOTS,
                           registry: Optional[RuleRegistry] = None
                           ) -> List[Diagnostic]:
    registry = registry or SOURCE_REGISTRY
    diags: List[Diagnostic] = []
    queue: List[type] = [_resolve_root(root) for root in roots]
    seen: Set[type] = set()
    while queue:
        cls = queue.pop()
        if cls in seen:
            continue
        seen.add(cls)
        qualname = f"{cls.__module__}.{cls.__name__}"
        path, line = _class_location(cls)
        if not dataclasses.is_dataclass(cls):
            diags.append(_diag(
                registry, "F506",
                f"memo-key class {qualname} is not a dataclass: keys "
                "need structural equality, not identity",
                path=path, line=line, location=qualname))
            continue
        if not cls.__dataclass_params__.frozen:
            diags.append(_diag(
                registry, "F506",
                f"memo-key class {qualname} is not frozen: a mutated "
                "key silently aliases a stale memo entry",
                path=path, line=line, location=qualname,
                fix_hint="declare @dataclass(frozen=True)"))
        try:
            hints = typing.get_type_hints(cls)
        except Exception:
            hints = {}
        for f in dataclasses.fields(cls):
            problems: List[str] = []
            _hashable_label(hints.get(f.name, f.type), problems, queue)
            for problem in problems:
                diags.append(_diag(
                    registry, "F506",
                    f"memo-key field '{qualname}.{f.name}' {problem}: "
                    "the memo table cannot hash it",
                    path=path, line=line, location=qualname))
    return diags


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def analyze_fingerprints(modules: Sequence[SourceModule],
                         registry: Optional[RuleRegistry] = None,
                         *,
                         manifest_path: Optional[Path] = None,
                         schema_roots: Sequence = DEFAULT_SCHEMA_ROOTS,
                         memo_key_roots: Sequence = DEFAULT_MEMO_KEY_ROOTS
                         ) -> List[Diagnostic]:
    """Run every F5xx check applicable to the scanned module set.

    The AST wiring checks bind to the executor/phasecache/timing
    modules when present in ``modules``; the reflection checks
    (schema, manifest, memo-key hashability) only run when the
    executor module is among them - i.e. when the real package is the
    analysis subject, not a test corpus.
    """
    registry = registry or SOURCE_REGISTRY
    diags: List[Diagnostic] = []
    executor = _find_module(modules, "harness.executor")
    phasecache = _find_module(modules, "sim.phasecache")
    timing = _find_module(modules, "sim.timing")
    if executor is not None:
        diags.extend(check_cache_key_wiring(executor, registry))
        diags.extend(check_environment_fingerprint(executor, registry))
        diags.extend(check_canonical_generic(executor, registry))
    if phasecache is not None and timing is not None:
        diags.extend(check_memo_wiring(phasecache, timing, registry))
    if executor is not None:
        schema, field_diags = collect_schema(schema_roots, registry)
        diags.extend(field_diags)
        diags.extend(check_manifest(schema, manifest_path, registry))
        diags.extend(check_memo_key_classes(memo_key_roots, registry))
    enabled = {rule.id for rule in registry.enabled_rules()}
    return [d for d in diags if d.rule in enabled]
