"""Lint entry points: one program, one workload, or the whole registry.

``repro lint`` and the test suite's registry smoke both funnel through
:func:`lint_registry`; :func:`lint_program` is the building block the
``validate=True`` fast-fail hook in :mod:`repro.core.execution` uses.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ..sim.hardware import SystemSpec, default_system
from ..sim.program import Program
from .diagnostics import LintReport, RuleRegistry
from .rules import DEFAULT_REGISTRY, LintContext, run_rules


class LintError(ValueError):
    """Raised by fast-fail validation when a program lints with errors."""

    def __init__(self, report: LintReport):
        self.report = report
        errors = report.errors
        lines = "\n".join(d.format() for d in errors)
        super().__init__(
            f"program failed static validation with {len(errors)} "
            f"error(s):\n{lines}")


def lint_program(program: Program, mode, *,
                 system: Optional[SystemSpec] = None,
                 smem_carveout_bytes: Optional[int] = None,
                 registry: Optional[RuleRegistry] = None) -> LintReport:
    """Lint one program under one transfer mode."""
    ctx = LintContext.build(program, mode, system=system,
                            smem_carveout_bytes=smem_carveout_bytes)
    report = LintReport(run_rules(ctx, registry or DEFAULT_REGISTRY))
    report.contexts = 1
    return report


def validate_program(program: Program, mode, *,
                     system: Optional[SystemSpec] = None,
                     smem_carveout_bytes: Optional[int] = None,
                     registry: Optional[RuleRegistry] = None) -> LintReport:
    """Fast-fail lint: raise :class:`LintError` on any error finding."""
    report = lint_program(program, mode, system=system,
                          smem_carveout_bytes=smem_carveout_bytes,
                          registry=registry)
    if report.has_errors:
        raise LintError(report)
    return report


def lint_workload(workload, size, modes: Optional[Iterable] = None, *,
                  system: Optional[SystemSpec] = None,
                  registry: Optional[RuleRegistry] = None) -> LintReport:
    """Lint one workload at one size class under the given modes."""
    from ..core.configs import ALL_MODES  # late: keeps analysis core-free
    report = LintReport()
    program = workload.program(size)
    for mode in (modes or ALL_MODES):
        report.merge(lint_program(program, mode, system=system,
                                  registry=registry))
    return report


def lint_registry(names: Optional[Sequence[str]] = None,
                  sizes: Optional[Sequence] = None,
                  modes: Optional[Iterable] = None, *,
                  system: Optional[SystemSpec] = None,
                  registry: Optional[RuleRegistry] = None) -> LintReport:
    """Lint registered workloads across sizes and transfer modes.

    Defaults: every registered workload, the paper's Super size class,
    all five transfer modes. Workloads that do not support a requested
    size are skipped at that size (matching the experiment harness).
    """
    from ..workloads.registry import ALL_NAMES, get_workload
    from ..workloads.sizes import SizeClass
    names = list(names) if names else list(ALL_NAMES)
    sizes = list(sizes) if sizes else [SizeClass.SUPER]
    report = LintReport()
    for name in names:
        workload = get_workload(name)
        for size in sizes:
            if not workload.supports(size):
                continue
            report.merge(lint_workload(workload, size, modes,
                                       system=system, registry=registry))
    return report
