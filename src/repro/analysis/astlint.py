"""Source-level static analysis framework (the ``repro lint --static`` pass).

The model linter (:mod:`repro.analysis.rules`) validates what workload
*programs* declare; this module validates what the *Python source*
does. It parses every module under a target package into
:class:`SourceModule` records, builds a best-effort project call graph
(in the spirit of numpywren's ``walk_program``/``find_parents``
walkers), and drives the two static passes:

* :mod:`repro.analysis.purity` - the D4xx determinism rules (wall
  clocks, unseeded randomness, env reads, unordered iteration,
  identity in keys) with call-graph propagation onto the declared
  *pure roots* - the functions whose purity the result cache and
  :class:`~repro.sim.phasecache.PhaseMemo` assume;
* :mod:`repro.analysis.fingerprints` - the F5xx cache-key completeness
  rules cross-checking dataclass fields against the fingerprint
  functions in :mod:`repro.harness.executor` and
  :mod:`repro.sim.phasecache`.

Findings are ordinary :class:`~repro.analysis.diagnostics.Diagnostic`
records carrying ``path``/``line``, so the text/JSON/SARIF renderers,
the inline ``# repro: allow[RULE]`` suppressions, and the baseline
mechanism (:mod:`repro.analysis.suppress`) all work across rule
families.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .diagnostics import Diagnostic, LintReport, Rule, RuleRegistry, Severity

#: Registry for the source-level rule families (D4xx determinism,
#: F5xx fingerprint completeness, A0xx suppression hygiene). The
#: checks are structural visitors in purity.py / fingerprints.py, not
#: per-rule callables, so every entry is catalog-only (``check=None``)
#: like the S30x stream rules.
SOURCE_REGISTRY = RuleRegistry()

for _id, _name, _sev, _desc in [
    ("D401", "wall-clock-call", Severity.ERROR,
     "A deterministic code path reads a wall clock (time.time, "
     "time.monotonic, time.perf_counter, ...): reruns observe "
     "different values, poisoning memoized results."),
    ("D402", "datetime-now", Severity.ERROR,
     "A deterministic code path calls datetime.now()/utcnow()/today(): "
     "wall-clock timestamps leak into results or cache keys."),
    ("D403", "unseeded-random", Severity.ERROR,
     "Unseeded or global-state randomness (random.*, numpy.random.* "
     "legacy API, default_rng() without a seed) in a deterministic "
     "code path: reruns are not bit-identical."),
    ("D404", "unordered-iteration", Severity.WARNING,
     "Iteration over a set/frozenset whose order can escape into "
     "serialized output, hashes, or simulation results: set order is "
     "arbitrary across processes and interpreter runs."),
    ("D405", "env-read", Severity.ERROR,
     "An environment-variable read (os.environ / os.getenv) inside a "
     "cached or pure-assumed function: the cache key cannot see the "
     "environment, so two hosts can disagree under one key."),
    ("D406", "mutable-default-arg", Severity.WARNING,
     "A mutable default argument (list/dict/set/bytearray) is shared "
     "across calls: call-order-dependent state in code the caches "
     "assume is stateless."),
    ("D407", "identity-in-key", Severity.ERROR,
     "id() in a deterministic code path: CPython object identities "
     "differ across processes and runs, so identity must never reach "
     "results, keys, or serialized output."),
    ("D408", "salted-hash-in-key", Severity.ERROR,
     "Built-in hash() in a deterministic code path: str/bytes hashes "
     "are salted per process (PYTHONHASHSEED), so hash() values must "
     "never cross a process or serialization boundary."),
    ("D409", "impure-call-path", Severity.ERROR,
     "A declared pure root transitively calls a function containing a "
     "D4xx hazard: the purity assumption the memo/cache layer rests "
     "on is violated somewhere down the call graph."),
    ("F501", "memo-key-incomplete", Severity.ERROR,
     "A parameter of the memoized pure function does not feed the "
     "PhaseMemo key or its environment binding: two different inputs "
     "can collide on one memo entry."),
    ("F502", "cache-key-incomplete", Severity.ERROR,
     "The content-addressed cache key is missing one of its required "
     "components (code version, canonical spec, program fingerprint, "
     "environment fingerprint): stale results can be served."),
    ("F503", "non-generic-canonical", Severity.ERROR,
     "canonical() no longer enumerates dataclasses.fields(): a "
     "hand-written field list silently drops newly added fields from "
     "every fingerprint."),
    ("F504", "unfingerprintable-field", Severity.ERROR,
     "A dataclass field reachable from RunSpec / SystemSpec / "
     "Calibration / Program has a type canonical() cannot serialize "
     "deterministically (set, callable, arbitrary object)."),
    ("F505", "fingerprint-schema-drift", Severity.ERROR,
     "The reachable-dataclass field schema differs from the checked-in "
     "fingerprint manifest: a field was added/removed/retyped without "
     "acknowledging the cache-key impact (run `repro lint --static "
     "--update-manifest`, and bump CODE_VERSION if cached results are "
     "invalidated)."),
    ("F506", "memo-key-unhashable", Severity.ERROR,
     "A PhaseMemo key class is not a frozen dataclass or declares an "
     "unhashable field: memo keys must be immutable values with "
     "structural equality."),
    ("A001", "invalid-suppression", Severity.ERROR,
     "A `# repro: allow[RULE]` pragma names an unknown rule or lacks "
     "the required `-- justification`; an invalid pragma suppresses "
     "nothing."),
    ("A002", "unused-suppression", Severity.WARNING,
     "A `# repro: allow[RULE]` pragma on this line suppressed no "
     "finding in this run: stale pragmas hide future regressions."),
]:
    SOURCE_REGISTRY.register(Rule(id=_id, name=_name, severity=_sev,
                                  description=_desc))


# ----------------------------------------------------------------------
# Source loading
# ----------------------------------------------------------------------
@dataclass
class SourceModule:
    """One parsed Python source file."""

    path: Path            #: absolute path on disk
    relpath: str          #: project-relative posix path (for reports)
    module: str           #: dotted module name ("" for loose files)
    text: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)

    @property
    def package(self) -> str:
        """The dotted package this module lives in."""
        if self.path.name == "__init__.py":
            return self.module
        return self.module.rpartition(".")[0]

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


def load_source(path: Path, relpath: str = "",
                module: str = "") -> SourceModule:
    """Parse one file into a :class:`SourceModule` (raises SyntaxError)."""
    path = Path(path)
    text = path.read_text()
    return SourceModule(path=path, relpath=relpath or path.name,
                        module=module or path.stem, text=text,
                        tree=ast.parse(text, filename=str(path)),
                        lines=text.splitlines())


def scan_package(package_root: Path,
                 project_root: Optional[Path] = None,
                 package_name: Optional[str] = None) -> List[SourceModule]:
    """Parse every ``.py`` file under a package directory.

    ``package_root`` is the directory of the top-level package (e.g.
    ``src/repro``); module names are derived from the path relative to
    it, prefixed with ``package_name`` (default: the directory name).
    ``project_root`` anchors the report-facing relative paths.
    """
    package_root = Path(package_root).resolve()
    project_root = (Path(project_root).resolve() if project_root
                    else package_root.parent)
    package_name = package_name or package_root.name
    modules: List[SourceModule] = []
    for path in sorted(package_root.rglob("*.py")):
        rel = path.relative_to(package_root)
        parts = [package_name] + list(rel.parts)
        if parts[-1] == "__init__.py":
            parts = parts[:-1]
        else:
            parts[-1] = parts[-1][:-3]
        try:
            relpath = path.relative_to(project_root).as_posix()
        except ValueError:  # package outside the project root
            relpath = path.as_posix()
        modules.append(load_source(path, relpath=relpath,
                                   module=".".join(parts)))
    return modules


# ----------------------------------------------------------------------
# Symbol table and call graph
# ----------------------------------------------------------------------
@dataclass
class FunctionInfo:
    """One function/method definition discovered in a module."""

    qualname: str                 #: "module.Class.method" / "module.func"
    name: str
    lineno: int
    module: str
    relpath: str
    node: ast.AST
    calls: Set[str] = field(default_factory=set)   #: resolved callee qualnames
    hazards: List = field(default_factory=list)    #: purity.Hazard records


def _resolve_relative(module: str, is_package: bool, level: int,
                      target: Optional[str]) -> str:
    """Resolve a ``from ...x import y`` module reference to a dotted name."""
    parts = module.split(".") if module else []
    if not is_package:
        parts = parts[:-1]
    if level > 1:
        parts = parts[:-(level - 1)] if level - 1 <= len(parts) else []
    if target:
        parts += target.split(".")
    return ".".join(parts)


class _ModuleIndexer(ast.NodeVisitor):
    """Collect imports and function definitions for one module."""

    def __init__(self, source: SourceModule):
        self.source = source
        #: local name -> fully dotted external name
        self.imports: Dict[str, str] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self._scope: List[str] = []       # enclosing class/function names
        self._is_package = source.path.name == "__init__.py"

    # -- imports --------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else alias.name.split(".")[0]
            self.imports[local] = target

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level:
            base = _resolve_relative(self.source.module, self._is_package,
                                     node.level, node.module)
        else:
            base = node.module or ""
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            self.imports[local] = f"{base}.{alias.name}" if base \
                else alias.name

    # -- definitions ----------------------------------------------------
    def _qualname(self, name: str) -> str:
        return ".".join([self.source.module] + self._scope + [name])

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._scope.append(node.name)
        self.generic_visit(node)
        self._scope.pop()

    def _visit_function(self, node) -> None:
        info = FunctionInfo(qualname=self._qualname(node.name),
                            name=node.name, lineno=node.lineno,
                            module=self.source.module,
                            relpath=self.source.relpath, node=node)
        self.functions[info.qualname] = info
        self._scope.append(node.name)
        self.generic_visit(node)
        self._scope.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` attribute chain as a dotted string, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass
class ProjectIndex:
    """Symbol table + call graph over a set of source modules."""

    modules: List[SourceModule]
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    imports: Dict[str, Dict[str, str]] = field(default_factory=dict)

    def resolve_call(self, module: str, scope: Sequence[str],
                     func: ast.AST) -> Tuple[Optional[str], Optional[str]]:
        """Resolve a Call.func node.

        Returns ``(qualname, external)``: ``qualname`` when the callee
        is a project function, ``external`` as the best-effort dotted
        name (imports expanded) for hazard matching. Either may be
        None; unresolvable calls resolve to (None, None).
        """
        imports = self.imports.get(module, {})
        dotted = dotted_name(func)
        if dotted is None:
            return None, None
        head, _, rest = dotted.partition(".")
        if head == "self" and rest and scope:
            # self.method() inside class scope: resolve within the class.
            candidate = ".".join([module] + list(scope) + [rest])
            if candidate in self.functions:
                return candidate, None
            return None, None
        expanded = dotted
        if head in imports:
            expanded = imports[head] + ("." + rest if rest else "")
        # Project function? Try the expanded name, then module-local.
        if expanded in self.functions:
            return expanded, expanded
        local = f"{module}.{dotted}"
        if local in self.functions:
            return local, expanded
        return None, expanded

    def reachable(self, roots: Iterable[str]) -> Set[str]:
        """Transitive closure of the call graph from the given roots."""
        seen: Set[str] = set()
        stack = [r for r in roots if r in self.functions]
        while stack:
            qualname = stack.pop()
            if qualname in seen:
                continue
            seen.add(qualname)
            for callee in self.functions[qualname].calls:
                if callee not in seen and callee in self.functions:
                    stack.append(callee)
        return seen

    def call_paths(self, root: str, target: str,
                   limit: int = 16) -> Optional[List[str]]:
        """One shortest call path root -> target, or None."""
        if root not in self.functions:
            return None
        frontier: List[List[str]] = [[root]]
        seen = {root}
        while frontier and len(frontier[0]) <= limit:
            path = frontier.pop(0)
            if path[-1] == target:
                return path
            for callee in sorted(self.functions[path[-1]].calls):
                if callee in self.functions and callee not in seen:
                    seen.add(callee)
                    frontier.append(path + [callee])
        return None


def build_index(modules: Sequence[SourceModule]) -> ProjectIndex:
    """Index functions and imports; call edges are filled by purity.py."""
    index = ProjectIndex(modules=list(modules))
    for source in modules:
        indexer = _ModuleIndexer(source)
        indexer.visit(source.tree)
        index.functions.update(indexer.functions)
        index.imports[source.module] = indexer.imports
    return index


# ----------------------------------------------------------------------
# Orchestration
# ----------------------------------------------------------------------
def default_package_root() -> Path:
    """The installed ``repro`` package directory (the default target)."""
    return Path(__file__).resolve().parent.parent


def run_static_analysis(package_root: Optional[Path] = None,
                        project_root: Optional[Path] = None,
                        *,
                        pure_roots: Optional[Sequence[str]] = None,
                        registry: Optional[RuleRegistry] = None,
                        suppressions=None,
                        baseline=None,
                        check_fingerprints: bool = True) -> LintReport:
    """Run both static passes and fold in suppressions + baseline.

    Returns a :class:`LintReport` whose ``diagnostics`` are the
    *active* findings; inline-suppressed findings land in
    ``report.suppressed`` and baseline-grandfathered ones in
    ``report.baselined``.
    """
    from .fingerprints import analyze_fingerprints
    from .purity import analyze_purity
    from .suppress import Suppressions

    registry = registry or SOURCE_REGISTRY
    package_root = Path(package_root or default_package_root())
    modules = scan_package(package_root, project_root)
    index = build_index(modules)

    findings: List[Diagnostic] = []
    findings.extend(analyze_purity(modules, index, pure_roots=pure_roots,
                                   registry=registry))
    if check_fingerprints:
        findings.extend(analyze_fingerprints(modules, registry=registry))

    report = LintReport()
    report.contexts = len(modules)
    if suppressions is None:
        suppressions = Suppressions.from_modules(modules)
    active, suppressed, pragma_diags = suppressions.filter(findings,
                                                           registry)
    findings = active + pragma_diags
    if baseline is not None:
        findings, grandfathered = baseline.filter(findings)
        report.baselined = grandfathered
    report.extend(findings)
    report.suppressed = suppressed
    return report
