"""Lint rules over the workload IR (programs + kernel descriptors).

Every rule inspects one :class:`LintContext` - a program paired with
one transfer mode on one system - and yields diagnostics. Rules are
registered on :data:`DEFAULT_REGISTRY`; ``repro lint`` and the
``validate=True`` hook in :mod:`repro.core.execution` both run the
enabled subset.

The catalog (see ``docs/LINTING.md`` for rationale and examples):

========  =======================  ========
id        name                     severity
========  =======================  ========
K101      smem-overflow            error
K102      smem-carveout-spill      warning
K103      register-file-overflow   error
K104      thread-geometry          error
K105      async-copy-coverage      error
K106      retile-drift             warning
K107      warp-alignment           info
K108      grid-underutilization    info
K109      async-serialized         info
P201      hbm-capacity             error/info
P202      uncovered-input          warning
P203      footprint-exceeds-buffers error
P204      fresh-data-reuse         warning
P205      scratch-host-fraction    warning
S301-303  stream graph rules       see streamcheck
========  =======================  ========
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from ..sim.hardware import SystemSpec, default_system
from ..sim.kernel import KernelDescriptor
from ..sim.program import BufferDirection, KernelPhase, Program
from ..sim.sm import BYTES_PER_REGISTER, smem_per_block
from ..sim.timing import ConfigFlags
from .diagnostics import Diagnostic, Rule, RuleRegistry, Severity

#: fraction of HBM the UVM driver leaves usable for managed data
#: (mirrors ``repro.core.execution.UVM_USABLE_HBM_FRACTION`` without
#: importing the core layer).
UVM_USABLE_HBM_FRACTION = 0.95

MIB = float(1024 * 1024)


@dataclass(frozen=True)
class LintContext:
    """One (program, transfer-mode, system) lint subject."""

    program: Program
    mode_label: str
    flags: ConfigFlags
    system: SystemSpec
    smem_carveout_bytes: int

    @classmethod
    def build(cls, program: Program, mode, system: SystemSpec = None,
              smem_carveout_bytes: int = None) -> "LintContext":
        """Build a context from a ``TransferMode``-like object.

        ``mode`` needs ``kernel_flags()`` and a ``value`` label - duck
        typed so the analysis layer stays independent of
        :mod:`repro.core`.
        """
        system = system or default_system()
        if smem_carveout_bytes is None:
            smem_carveout_bytes = system.gpu.default_shared_mem_bytes
        return cls(program=program, mode_label=getattr(mode, "value", str(mode)),
                   flags=mode.kernel_flags(), system=system,
                   smem_carveout_bytes=smem_carveout_bytes)

    def phases(self) -> Iterator[Tuple[int, KernelPhase, KernelDescriptor]]:
        for index, phase in enumerate(self.program.phases):
            yield index, phase, phase.descriptor

    @staticmethod
    def kernel_loc(index: int, desc: KernelDescriptor) -> str:
        return f"phase[{index}]/kernel:{desc.name}"


DEFAULT_REGISTRY = RuleRegistry()


def _attach(diag: Diagnostic, ctx: LintContext) -> Diagnostic:
    """Stamp the context's workload/mode onto a rule diagnostic."""
    return Diagnostic(rule=diag.rule, severity=diag.severity,
                      message=diag.message, location=diag.location,
                      fix_hint=diag.fix_hint,
                      workload=ctx.program.name, mode=ctx.mode_label)


# ----------------------------------------------------------------------
# K1xx - kernel geometry and shared-memory rules
# ----------------------------------------------------------------------
@DEFAULT_REGISTRY.rule(
    "K101", "smem-overflow", Severity.ERROR,
    "Per-block shared memory (static + staging buffers, 2x under async "
    "double-buffering) exceeds the device's maximum shared-memory "
    "carveout; real CUDA rejects the launch.")
def check_smem_overflow(ctx: LintContext, rule: Rule, config: dict):
    gpu = ctx.system.gpu
    for index, _phase, desc in ctx.phases():
        need = smem_per_block(desc, use_async=ctx.flags.use_async)
        if need > gpu.max_shared_mem_bytes:
            buffers = "2x (double-buffered)" if ctx.flags.use_async else "1x"
            yield rule.diag(
                f"block needs {need / 1024:.1f} KiB shared memory "
                f"({desc.smem_static_bytes} static + {buffers} "
                f"{desc.tile_bytes}-byte tile) but the device caps the "
                f"carveout at {gpu.max_shared_mem_bytes // 1024} KiB",
                location=ctx.kernel_loc(index, desc),
                fix_hint="shrink tile_bytes or smem_static_bytes, or "
                         "split the tile across more blocks")


@DEFAULT_REGISTRY.rule(
    "K102", "smem-carveout-spill", Severity.WARNING,
    "Per-block shared memory fits the device maximum but not the "
    "configured carveout: occupancy clamps to one block per SM and, "
    "under cp.async, the double buffer gains no overlap (Takeaway 5).")
def check_smem_carveout_spill(ctx: LintContext, rule: Rule, config: dict):
    gpu = ctx.system.gpu
    for index, _phase, desc in ctx.phases():
        need = smem_per_block(desc, use_async=ctx.flags.use_async)
        if gpu.max_shared_mem_bytes >= need > ctx.smem_carveout_bytes:
            consequence = ("cp.async degenerates to copy cost without "
                           "overlap" if ctx.flags.use_async
                           else "block residency clamps to 1 per SM")
            yield rule.diag(
                f"block needs {need / 1024:.1f} KiB shared memory but the "
                f"carveout is {ctx.smem_carveout_bytes / 1024:.0f} KiB; "
                + consequence,
                location=ctx.kernel_loc(index, desc),
                fix_hint="raise the carveout (smem_carveout_bytes) or "
                         "shrink tile_bytes")


@DEFAULT_REGISTRY.rule(
    "K103", "register-file-overflow", Severity.ERROR,
    "registers_per_thread x threads_per_block exceeds the SM register "
    "file: not even one block can be resident, the launch is "
    "impossible.")
def check_register_file(ctx: LintContext, rule: Rule, config: dict):
    gpu = ctx.system.gpu
    for index, _phase, desc in ctx.phases():
        need = (desc.registers_per_thread * desc.threads_per_block
                * BYTES_PER_REGISTER)
        if need > gpu.register_file_bytes:
            yield rule.diag(
                f"one block needs {need // 1024} KiB of registers "
                f"({desc.registers_per_thread}/thread x "
                f"{desc.threads_per_block} threads) but the register file "
                f"holds {gpu.register_file_bytes // 1024} KiB",
                location=ctx.kernel_loc(index, desc),
                fix_hint="reduce registers_per_thread or "
                         "threads_per_block")


@DEFAULT_REGISTRY.rule(
    "K104", "thread-geometry", Severity.ERROR,
    "threads_per_block exceeds the device block or SM thread caps "
    "(guards re-targeted SystemSpecs; the descriptor only validates "
    "the default 1024 cap).")
def check_thread_geometry(ctx: LintContext, rule: Rule, config: dict):
    gpu = ctx.system.gpu
    for index, _phase, desc in ctx.phases():
        cap = min(gpu.max_threads_per_block, gpu.max_threads_per_sm)
        if desc.threads_per_block > cap:
            yield rule.diag(
                f"threads_per_block={desc.threads_per_block} exceeds the "
                f"device cap of {cap}",
                location=ctx.kernel_loc(index, desc),
                fix_hint=f"launch at most {cap} threads per block")


@DEFAULT_REGISTRY.rule(
    "K105", "async-copy-coverage", Severity.ERROR,
    "The declared cp.async copies cannot stage the tile: "
    "async_copies() x 16 B x threads_per_block < tile_bytes, so part "
    "of the tile would never reach shared memory.")
def check_async_copy_coverage(ctx: LintContext, rule: Rule, config: dict):
    if not ctx.flags.use_async:
        return
    per_copy = int(config.get("bytes_per_copy", 16))
    for index, _phase, desc in ctx.phases():
        staged = desc.async_copies() * per_copy * desc.threads_per_block
        if staged < desc.tile_bytes:
            yield rule.diag(
                f"{desc.async_copies()} cp.async copies x {per_copy} B x "
                f"{desc.threads_per_block} threads stage {staged} B per "
                f"tile but tile_bytes={desc.tile_bytes}",
                location=ctx.kernel_loc(index, desc),
                fix_hint="raise async_copies_per_tile to at least "
                         f"ceil(tile_bytes / {per_copy} / threads)")


@DEFAULT_REGISTRY.rule(
    "K106", "retile-drift", Severity.WARNING,
    "Rounding a retiling of this descriptor onto the probe geometries "
    "(the Fig. 11 sweep) would change total traffic by more than the "
    "tolerance: the tiling is too coarse to re-gear, and "
    "with_geometry() will refuse it.",
    tolerance=0.01, probe_blocks=None)
def check_retile_drift(ctx: LintContext, rule: Rule, config: dict):
    tolerance = float(config.get("tolerance", 0.01))
    probes = config.get("probe_blocks")
    if not probes:
        sm_count = ctx.system.gpu.sm_count
        probes = (sm_count, 4 * sm_count)
    for index, _phase, desc in ctx.phases():
        total = desc.load_bytes
        bad = []
        for blocks in probes:
            tiles = max(1, round(desc.total_tiles / blocks))
            tile_bytes = max(1, round(total / (blocks * tiles)))
            drift = abs(blocks * tiles * tile_bytes - total) / total
            if drift > tolerance:
                bad.append((blocks, drift))
        if len(bad) == len(list(probes)):
            worst = max(drift for _b, drift in bad)
            yield rule.diag(
                f"retiling onto {[b for b, _d in bad]} blocks drifts "
                f"total traffic by up to {worst * 100:.1f} % "
                f"(> {tolerance * 100:.0f} % tolerance)",
                location=ctx.kernel_loc(index, desc),
                fix_hint="choose blocks x tiles_per_block that divide "
                         "the total byte count")


@DEFAULT_REGISTRY.rule(
    "K107", "warp-alignment", Severity.INFO,
    "threads_per_block is not a multiple of the warp size; the last "
    "warp runs partially masked on every instruction.")
def check_warp_alignment(ctx: LintContext, rule: Rule, config: dict):
    warp = ctx.system.gpu.warp_size
    for index, _phase, desc in ctx.phases():
        if desc.threads_per_block % warp:
            yield rule.diag(
                f"threads_per_block={desc.threads_per_block} is not a "
                f"multiple of the warp size ({warp})",
                location=ctx.kernel_loc(index, desc),
                fix_hint=f"round up to {((desc.threads_per_block // warp) + 1) * warp}")


@DEFAULT_REGISTRY.rule(
    "K108", "grid-underutilization", Severity.INFO,
    "The grid launches fewer blocks than the device has SMs, leaving "
    "SMs idle for the whole kernel (the flat region of Fig. 11).",
    min_fraction=0.5)
def check_grid_underutilization(ctx: LintContext, rule: Rule, config: dict):
    gpu = ctx.system.gpu
    threshold = int(gpu.sm_count * float(config.get("min_fraction", 0.5)))
    for index, _phase, desc in ctx.phases():
        if desc.blocks < threshold:
            yield rule.diag(
                f"grid has {desc.blocks} blocks for {gpu.sm_count} SMs "
                f"({gpu.sm_count - desc.blocks} SMs idle)",
                location=ctx.kernel_loc(index, desc),
                fix_hint="split the work across more blocks if the "
                         "algorithm allows")


@DEFAULT_REGISTRY.rule(
    "K109", "async-serialized", Severity.INFO,
    "The kernel barriers per copy batch (async_serializes): under an "
    "async mode cp.async pays its control cost without gaining any "
    "overlap, regardless of buffer capacity.")
def check_async_serialized(ctx: LintContext, rule: Rule, config: dict):
    if not ctx.flags.use_async:
        return
    for index, _phase, desc in ctx.phases():
        if desc.async_serializes:
            yield rule.diag(
                "staging loop barriers per copy batch; cp.async adds "
                f"{desc.async_copies()} control ops/tile with no overlap",
                location=ctx.kernel_loc(index, desc),
                fix_hint="restructure the halo exchange to batch "
                         "copies across stages, or keep sync staging")


# ----------------------------------------------------------------------
# P2xx - program-level rules
# ----------------------------------------------------------------------
@DEFAULT_REGISTRY.rule(
    "P201", "hbm-capacity", Severity.ERROR,
    "Program footprint vs device memory: explicit-mode overflow is an "
    "error (cudaMalloc would fail); managed-mode oversubscription is "
    "legal but thrash-prone and reported as info.")
def check_hbm_capacity(ctx: LintContext, rule: Rule, config: dict):
    gpu = ctx.system.gpu
    footprint = ctx.program.footprint_bytes
    if ctx.flags.managed:
        usable = gpu.hbm_bytes * UVM_USABLE_HBM_FRACTION
        if footprint > usable:
            yield rule.diag(
                f"managed footprint {footprint / 2**30:.1f} GiB "
                f"oversubscribes the usable {usable / 2**30:.1f} GiB of "
                f"HBM ({footprint / usable:.2f}x); expect re-fault "
                "thrashing on every pass",
                location="program",
                fix_hint="expected for oversubscription studies; "
                         "otherwise shrink the size class",
                severity=Severity.INFO)
    elif footprint > gpu.hbm_bytes:
        yield rule.diag(
            f"explicit footprint {footprint / 2**30:.1f} GiB exceeds "
            f"{gpu.hbm_bytes / 2**30:.0f} GiB of HBM; cudaMalloc would "
            "fail on the real device",
            location="program",
            fix_hint="use a managed (UVM) mode to oversubscribe, or "
                     "shrink the size class")


@DEFAULT_REGISTRY.rule(
    "P202", "uncovered-input", Severity.WARNING,
    "Host-to-device buffer bytes no kernel phase ever reads: the "
    "program ships data the kernels never touch, inflating memcpy "
    "time against every managed mode.",
    tolerance=0.25)
def check_uncovered_input(ctx: LintContext, rule: Rule, config: dict):
    tolerance = float(config.get("tolerance", 0.25))
    declared = sum(b.size_bytes for b in ctx.program.buffers
                   if b.direction.host_to_device)
    if declared <= 0:
        return
    covered = 0.0
    for _i, phase, desc in ctx.phases():
        # fresh_data phases stream new bytes on every launch; resident
        # phases only ever read their footprint once.
        launches = phase.count if phase.fresh_data else 1
        covered += desc.footprint_bytes * desc.touched_fraction * launches
    uncovered = declared - covered
    if uncovered > tolerance * declared:
        yield rule.diag(
            f"{uncovered / MIB:.1f} MiB of {declared / MIB:.1f} MiB "
            f"declared input is not covered by any phase's read traffic "
            f"({uncovered / declared * 100:.0f} % > "
            f"{tolerance * 100:.0f} % tolerance)",
            location="program",
            fix_hint="drop the unread buffer bytes or raise the "
                     "kernels' data_footprint_bytes")


@DEFAULT_REGISTRY.rule(
    "P203", "footprint-exceeds-buffers", Severity.ERROR,
    "A kernel's unique data footprint (data_footprint_bytes, or "
    "load_bytes/reuse) exceeds every byte the program allocates: the "
    "kernel claims to read memory that does not exist.",
    slack=0.01)
def check_footprint_exceeds_buffers(ctx: LintContext, rule: Rule,
                                    config: dict):
    slack = float(config.get("slack", 0.01))
    allocated = ctx.program.footprint_bytes
    for index, _phase, desc in ctx.phases():
        footprint = desc.footprint_bytes * desc.touched_fraction
        if footprint > allocated * (1.0 + slack):
            yield rule.diag(
                f"kernel touches {footprint / MIB:.1f} MiB of unique "
                f"data but the program allocates only "
                f"{allocated / MIB:.1f} MiB",
                location=ctx.kernel_loc(index, desc),
                fix_hint="fix data_footprint_bytes (or reuse) to match "
                         "the declared buffers")


@DEFAULT_REGISTRY.rule(
    "P204", "fresh-data-reuse", Severity.WARNING,
    "A fresh_data phase (every launch streams new host data) whose "
    "kernel claims reuse > 1 contradicts itself: freshly streamed "
    "bytes cannot already be cache-resident.")
def check_fresh_data_reuse(ctx: LintContext, rule: Rule, config: dict):
    for index, phase, desc in ctx.phases():
        if phase.fresh_data and desc.reuse > 1.0:
            yield rule.diag(
                f"phase streams fresh data every launch but the kernel "
                f"declares reuse={desc.reuse:g}",
                location=ctx.kernel_loc(index, desc),
                fix_hint="set reuse=1 for fresh_data phases, or drop "
                         "fresh_data")


@DEFAULT_REGISTRY.rule(
    "P205", "scratch-host-fraction", Severity.WARNING,
    "A SCRATCH (device-only) buffer sets host-facing fractions "
    "(device_touched_fraction / host_read_fraction): the host never "
    "sees a scratch buffer, so the fractions are dead configuration.")
def check_scratch_host_fraction(ctx: LintContext, rule: Rule, config: dict):
    for buf in ctx.program.buffers:
        if buf.direction is not BufferDirection.SCRATCH:
            continue
        odd = []
        if buf.device_touched_fraction != 1.0:
            odd.append(f"device_touched_fraction={buf.device_touched_fraction:g}")
        if buf.host_read_fraction != 1.0:
            odd.append(f"host_read_fraction={buf.host_read_fraction:g}")
        if odd:
            yield rule.diag(
                f"scratch buffer sets {', '.join(odd)} but never crosses "
                "the host-device boundary",
                location=f"buffer:{buf.name}",
                fix_hint="remove the fractions or change the buffer "
                         "direction")


def run_rules(ctx: LintContext,
              registry: RuleRegistry = None) -> Iterator[Diagnostic]:
    """Run every enabled program rule against one context."""
    registry = registry or DEFAULT_REGISTRY
    for rule in registry.enabled_rules():
        if rule.check is None:
            continue
        effective = registry.effective_rule(rule.id)
        config = registry.config_for(rule.id)
        for diag in rule.check(ctx, effective, config):
            yield _attach(diag, ctx)
