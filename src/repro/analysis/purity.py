"""Pass 1 of ``repro lint --static``: the D4xx determinism rules.

The result cache (:mod:`repro.harness.executor`) and the phase memo
(:mod:`repro.sim.phasecache`) are only correct if the functions they
memoize are *pure*: same inputs, same bytes, on every host, in every
process, forever. This pass proves the cheap half of that statically:

* every module under ``repro.sim`` (the simulator proper) must be free
  of wall-clock reads, unseeded randomness, env reads, identity leaks
  and salted hashes - the *always-pure* region;
* every function transitively reachable from a declared **pure root**
  (:data:`DEFAULT_PURE_ROOTS` - the fingerprint/cache-key functions
  and the spec execution entry points) is held to the same standard,
  with the taint reported at the hazard site (its base D4xx rule) and
  at the root (D409 ``impure-call-path``), so a "pure" function
  calling a tainted helper is visible at both ends of the call chain.

The call graph is best-effort (module functions, ``self.`` methods,
imported names); unresolvable dynamic dispatch is simply not an edge,
which keeps the pass sound-for-what-it-sees and quiet otherwise.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .astlint import (ProjectIndex, SourceModule, build_index, dotted_name,
                      SOURCE_REGISTRY)
from .diagnostics import Diagnostic, RuleRegistry

#: Functions whose transitive call graph must be deterministic: the
#: content-addressed cache and phase memo assume exactly these are pure.
DEFAULT_PURE_ROOTS: Tuple[str, ...] = (
    "repro.harness.executor.execute_spec",
    "repro.harness.executor.cache_key",
    "repro.harness.executor.canonical",
    "repro.harness.executor.fingerprint",
    "repro.harness.executor.program_fingerprint",
    "repro.harness.executor.environment_fingerprint",
    "repro.sim.phasecache.PhaseMemo.simulate",
    "repro.sim.timing.simulate_kernel",
    "repro.core.execution.execute_program",
    "repro.core.experiment.run_seed",
)

#: Module-name prefixes that must be hazard-free wholesale: the
#: simulator itself. (Dotted prefixes; matched against module names.)
DEFAULT_ALWAYS_PURE_PREFIXES: Tuple[str, ...] = ("repro.sim.",)

# -- hazard tables -----------------------------------------------------
CLOCK_CALLS = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "time.clock_gettime", "time.clock_gettime_ns",
}
DATETIME_CALLS = {
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}
#: numpy.random attributes that are *not* hazards (seedable API).
NUMPY_RANDOM_OK = {"default_rng", "Generator", "SeedSequence", "PCG64",
                   "Philox", "MT19937", "SFC64", "BitGenerator"}
SERIALIZATION_SINKS = ("json.dump", "json.dumps", "pickle.dump",
                       "pickle.dumps", "marshal.dump", "hashlib.")
SET_FACTORIES = {"set", "frozenset"}
ITERATION_SINKS = {"list", "tuple", "enumerate", "iter", "next"}
MUTABLE_FACTORIES = {"list", "dict", "set", "bytearray"}
REPR_METHODS = {"__repr__", "__str__", "__format__"}


@dataclass(frozen=True)
class Hazard:
    """One direct hazard site inside a function body."""

    rule: str
    lineno: int
    message: str


class _PurityVisitor(ast.NodeVisitor):
    """Per-module walk: hazards per function + call-graph edges."""

    def __init__(self, source: SourceModule, index: ProjectIndex):
        self.source = source
        self.index = index
        # scope entries are ("class"|"func", name)
        self._scope: List[Tuple[str, str]] = []
        #: qualname -> hazards found in that function's body
        self.hazards: Dict[str, List[Hazard]] = {}
        #: qualname -> function also calls a serialization sink
        self.serializes: Set[str] = set()
        #: per-function set-valued local names (for D404)
        self._set_locals: List[Set[str]] = []

    # -- scope plumbing -------------------------------------------------
    @property
    def _qualname(self) -> Optional[str]:
        if not any(kind == "func" for kind, _ in self._scope):
            return None
        return ".".join([self.source.module]
                        + [name for _, name in self._scope])

    @property
    def _class_prefix(self) -> List[str]:
        """Scope names up to the innermost enclosing class."""
        prefix: List[str] = []
        for kind, name in self._scope:
            if kind == "func":
                break
            prefix.append(name)
        return prefix

    @property
    def _in_repr(self) -> bool:
        return any(kind == "func" and name in REPR_METHODS
                   for kind, name in self._scope)

    def _record(self, rule: str, node: ast.AST, message: str) -> None:
        owner = self._qualname or f"{self.source.module}.<module>"
        self.hazards.setdefault(owner, []).append(
            Hazard(rule=rule, lineno=node.lineno, message=message))

    # -- definitions ----------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._scope.append(("class", node.name))
        self.generic_visit(node)
        self._scope.pop()

    def _visit_function(self, node) -> None:
        # D406: mutable default arguments, everywhere.
        for default in list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None]:
            if self._is_mutable_default(default):
                self._scope.append(("func", node.name))
                self._record(
                    "D406", default,
                    f"function '{node.name}' has a mutable default "
                    f"argument ({ast.unparse(default)}): one shared "
                    "instance accumulates state across calls")
                self._scope.pop()
        self._scope.append(("func", node.name))
        self._set_locals.append(set())
        self.generic_visit(node)
        self._set_locals.pop()
        self._scope.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    @staticmethod
    def _is_mutable_default(node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in MUTABLE_FACTORIES
        return False

    # -- expression-level hazards --------------------------------------
    def _expanded(self, func: ast.AST) -> Optional[str]:
        dotted = dotted_name(func)
        if dotted is None:
            return None
        imports = self.index.imports.get(self.source.module, {})
        head, _, rest = dotted.partition(".")
        if head in imports:
            return imports[head] + ("." + rest if rest else "")
        return dotted

    def visit_Call(self, node: ast.Call) -> None:
        qual = self._qualname
        callee, external = self.index.resolve_call(
            self.source.module, self._class_prefix, node.func)
        if qual is not None and callee is not None:
            info = self.index.functions.get(qual)
            if info is not None:
                info.calls.add(callee)
        external = external or self._expanded(node.func) or ""

        if external in CLOCK_CALLS:
            self._record("D401", node,
                         f"wall-clock read via {external}(): reruns "
                         "observe different values")
        elif external in DATETIME_CALLS:
            self._record("D402", node,
                         f"wall-clock timestamp via {external}()")
        elif self._random_hazard(node, external):
            self._record("D403", node,
                         f"nondeterministic randomness via {external}"
                         "(unseeded or process-global state)")
        elif external == "os.getenv" or external.startswith("os.environ"):
            self._record("D405", node,
                         f"environment read via {external}: the value "
                         "is invisible to every cache key")
        elif isinstance(node.func, ast.Name) and node.func.id == "id":
            if not self._in_repr:
                self._record("D407", node,
                             "id() leaks per-process object identity")
        elif isinstance(node.func, ast.Name) and node.func.id == "hash":
            if not self._in_repr:
                self._record("D408", node,
                             "built-in hash() is salted per process "
                             "(PYTHONHASHSEED)")

        if qual is not None and any(
                external.startswith(sink) for sink in SERIALIZATION_SINKS):
            self.serializes.add(qual)

        # D404: unordered iteration materialized by a sink call.
        if (isinstance(node.func, ast.Name)
                and node.func.id in ITERATION_SINKS and node.args
                and self._is_set_expr(node.args[0])):
            self._record("D404", node,
                         f"{node.func.id}() over a set materializes "
                         "arbitrary order; wrap in sorted() if the "
                         "order can escape")
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr == "join" and node.args
                and self._is_set_expr(node.args[0])):
            self._record("D404", node,
                         "str.join over a set serializes arbitrary "
                         "order; wrap in sorted()")
        self.generic_visit(node)

    @staticmethod
    def _random_hazard(node: ast.Call, external: str) -> bool:
        if external.startswith("random."):
            tail = external[len("random."):]
            if tail == "Random" and node.args:
                return False  # seeded instance
            return True
        if external.startswith("numpy.random."):
            tail = external[len("numpy.random."):]
            if tail == "default_rng":
                return not node.args  # unseeded default_rng()
            return tail not in NUMPY_RANDOM_OK
        return False

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if dotted_name(node.value) and \
                self._expanded(node.value) == "os.environ":
            self._record("D405", node,
                         "environment read via os.environ[...]: the "
                         "value is invisible to every cache key")
        self.generic_visit(node)

    # -- D404 set tracking ---------------------------------------------
    def _is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id in SET_FACTORIES:
            return True
        if isinstance(node, ast.Name) and self._set_locals \
                and node.id in self._set_locals[-1]:
            return True
        return False

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._set_locals and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and self._is_set_expr(node.value):
            self._set_locals[-1].add(node.targets[0].id)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        if self._is_set_expr(node.iter):
            self._record("D404", node,
                         "for-loop over a set iterates in arbitrary "
                         "order; wrap in sorted() if the order can "
                         "escape")
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        if self._is_set_expr(node.iter):
            self._record("D404", node.iter,
                         "comprehension over a set iterates in "
                         "arbitrary order; wrap in sorted() if the "
                         "order can escape")
        self.generic_visit(node)


# ----------------------------------------------------------------------
# Analysis entry point
# ----------------------------------------------------------------------
#: rules only reported in pure regions (noise everywhere else)
PURE_REGION_RULES = {"D401", "D402", "D403", "D405", "D407", "D408"}


def analyze_purity(modules: Sequence[SourceModule],
                   index: Optional[ProjectIndex] = None,
                   *,
                   pure_roots: Optional[Sequence[str]] = None,
                   always_pure_prefixes: Optional[Sequence[str]] = None,
                   registry: Optional[RuleRegistry] = None
                   ) -> List[Diagnostic]:
    """Run the D4xx determinism pass over parsed modules.

    ``pure_roots`` overrides :data:`DEFAULT_PURE_ROOTS` (corpus tests
    point it at snippet functions); ``always_pure_prefixes`` overrides
    the module prefixes that are hazard-checked wholesale. An *empty*
    sequence for ``always_pure_prefixes`` disables the region; None
    selects the defaults.
    """
    registry = registry or SOURCE_REGISTRY
    if index is None:
        index = build_index(modules)
    roots = tuple(DEFAULT_PURE_ROOTS if pure_roots is None else pure_roots)
    prefixes = tuple(DEFAULT_ALWAYS_PURE_PREFIXES
                     if always_pure_prefixes is None
                     else always_pure_prefixes)

    visitors: Dict[str, _PurityVisitor] = {}
    for source in modules:
        visitor = _PurityVisitor(source, index)
        visitor.visit(source.tree)
        visitors[source.module] = visitor
        for qualname, hazards in visitor.hazards.items():
            info = index.functions.get(qualname)
            if info is not None:
                info.hazards.extend(hazards)

    pure_set = index.reachable(roots)

    def always_pure(module: str) -> bool:
        return any(module.startswith(prefix) or module == prefix.rstrip(".")
                   for prefix in prefixes)

    diagnostics: List[Diagnostic] = []
    enabled = {rule.id for rule in registry.enabled_rules()}

    # Direct hazard sites.
    for source in modules:
        visitor = visitors[source.module]
        module_pure = always_pure(source.module)
        for owner, hazards in sorted(visitor.hazards.items()):
            in_pure_region = module_pure or owner in pure_set
            for hazard in hazards:
                if hazard.rule not in enabled:
                    continue
                if hazard.rule in PURE_REGION_RULES and not in_pure_region:
                    continue
                if hazard.rule == "D404" and not (
                        in_pure_region or owner in visitor.serializes):
                    continue
                rule = registry.effective_rule(hazard.rule)
                diagnostics.append(Diagnostic(
                    rule=hazard.rule, severity=rule.severity,
                    message=hazard.message,
                    location=owner,
                    path=source.relpath, line=hazard.lineno,
                    fix_hint="hoist the impurity to the caller and pass "
                             "the value in, or justify with "
                             f"`# repro: allow[{hazard.rule}] -- why`"))

    # D409: propagate taint onto the declared pure roots.
    if "D409" in enabled:
        rule = registry.effective_rule("D409")
        for root in roots:
            info = index.functions.get(root)
            if info is None:
                continue
            for reached in sorted(index.reachable([root])):
                if reached == root:
                    continue
                target = index.functions.get(reached)
                if target is None or not target.hazards:
                    continue
                for hazard in target.hazards:
                    if hazard.rule not in enabled or hazard.rule == "D406":
                        continue
                    path = index.call_paths(root, reached) or [root, reached]
                    chain = " -> ".join(p.rsplit(".", 1)[-1] for p in path)
                    diagnostics.append(Diagnostic(
                        rule="D409", severity=rule.severity,
                        message=(f"pure root '{root}' reaches "
                                 f"{hazard.rule} ({hazard.message}) in "
                                 f"{reached} [call path: {chain}]"),
                        location=root,
                        path=info.relpath, line=info.lineno,
                        origin=(f"{target.relpath}:{hazard.lineno}:"
                                f"{hazard.rule}")))
    return diagnostics
