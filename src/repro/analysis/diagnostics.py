"""Diagnostics framework for the static model linter.

The linter reports :class:`Diagnostic` records - one structural finding
about a workload program, kernel descriptor, or stream graph - grouped
into a :class:`LintReport`. Rules are registered in a
:class:`RuleRegistry` which supports per-rule enable/disable and
configuration overrides (including severity remapping), mirroring how
clang-tidy / ruff manage their rule catalogs.

Severity semantics:

* ``error``   - structurally impossible on the modelled hardware (real
  CUDA would refuse the launch / allocation); simulating it produces
  plausible-but-wrong timings.
* ``warning`` - legal but almost certainly a modelling mistake or a
  configuration that silently degrades (e.g. a cp.async double buffer
  that cannot fit the carveout).
* ``info``    - noteworthy structural property worth surfacing (e.g.
  intentional UVM oversubscription).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, Iterator, List, Optional


class Severity(enum.Enum):
    """Diagnostic severity levels, ordered ``error > warning > info``."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        """Numeric rank for sorting (higher = more severe)."""
        return {"error": 2, "warning": 1, "info": 0}[self.value]

    @classmethod
    def from_label(cls, label: str) -> "Severity":
        for sev in cls:
            if sev.value == label.lower():
                return sev
        raise ValueError(
            f"unknown severity {label!r}; expected one of "
            f"{[s.value for s in cls]}"
        )


@dataclass(frozen=True)
class Diagnostic:
    """One structural finding.

    ``location`` pins the finding inside the linted object (e.g.
    ``phase[0]/kernel:gemm`` or ``buffer:coeff`` or ``stream:copy#2``);
    ``workload`` and ``mode`` identify the lint context so reports over
    the whole registry stay attributable. Source-level findings (the
    D4xx/F5xx static analyzer) set ``path``/``line`` instead, pinning
    the finding to a file position suppressions and SARIF can address.
    """

    rule: str
    severity: Severity
    message: str
    location: str = ""
    fix_hint: str = ""
    workload: str = ""
    mode: str = ""
    path: str = ""
    line: int = 0
    #: for derived findings (D409 call-path propagation): the
    #: ``path:line:rule`` of the originating hazard, so suppressing the
    #: origin also suppresses the propagation. Not serialized.
    origin: str = ""

    def format(self) -> str:
        """One-line human-readable rendering."""
        where = ":".join(p for p in (self.workload, self.mode) if p)
        parts = [f"{self.severity.value:<7}", self.rule]
        if self.path:
            parts.append(f"{self.path}:{self.line}" if self.line
                         else self.path)
        if where:
            parts.append(where)
        if self.location:
            parts.append(self.location)
        line = " ".join(parts) + f": {self.message}"
        if self.fix_hint:
            line += f"  [fix: {self.fix_hint}]"
        return line

    def to_dict(self) -> Dict[str, str]:
        payload = {
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
            "location": self.location,
            "fix_hint": self.fix_hint,
            "workload": self.workload,
            "mode": self.mode,
        }
        if self.path:
            payload["path"] = self.path
            payload["line"] = self.line
        return payload


class LintReport:
    """An ordered collection of diagnostics with summary accounting."""

    def __init__(self, diagnostics: Optional[Iterable[Diagnostic]] = None):
        self.diagnostics: List[Diagnostic] = list(diagnostics or [])
        #: number of (workload, mode) contexts linted to produce this report
        self.contexts = 0
        #: findings silenced by an inline "repro: allow" pragma
        self.suppressed: List[Diagnostic] = []
        #: findings grandfathered by the checked-in baseline file
        self.baselined: List[Diagnostic] = []

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def merge(self, other: "LintReport") -> None:
        self.diagnostics.extend(other.diagnostics)
        self.suppressed.extend(other.suppressed)
        self.baselined.extend(other.baselined)
        self.contexts += other.contexts

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def by_severity(self, severity: Severity) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is severity]

    @property
    def errors(self) -> List[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> List[Diagnostic]:
        return self.by_severity(Severity.WARNING)

    @property
    def infos(self) -> List[Diagnostic]:
        return self.by_severity(Severity.INFO)

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    def counts(self) -> Dict[str, int]:
        return {
            "error": len(self.errors),
            "warning": len(self.warnings),
            "info": len(self.infos),
        }

    def sorted(self) -> List[Diagnostic]:
        """Most severe first, stable within a severity."""
        return sorted(self.diagnostics,
                      key=lambda d: (-d.severity.rank, d.workload, d.mode,
                                     d.rule, d.location))

    # ------------------------------------------------------------------
    # Output formats
    # ------------------------------------------------------------------
    def render_text(self, min_severity: Severity = Severity.INFO) -> str:
        """Human-readable report, one diagnostic per line plus summary."""
        lines = [d.format() for d in self.sorted()
                 if d.severity.rank >= min_severity.rank]
        counts = self.counts()
        summary = (f"{counts['error']} error(s), {counts['warning']} "
                   f"warning(s), {counts['info']} info(s)")
        if self.suppressed or self.baselined:
            summary += (f"; {len(self.suppressed)} suppressed inline, "
                        f"{len(self.baselined)} baselined")
        if self.contexts:
            summary += f" across {self.contexts} lint context(s)"
        if not lines:
            return f"clean: {summary}"
        return "\n".join(lines + [summary])

    def to_json(self, indent: Optional[int] = None) -> str:
        """Machine-readable report (the ``--format json`` contract)."""
        payload = {
            "version": 1,
            "contexts": self.contexts,
            "counts": self.counts(),
            "diagnostics": [d.to_dict() for d in self.sorted()],
        }
        if self.suppressed or self.baselined:
            payload["suppressed"] = [d.to_dict() for d in self.suppressed]
            payload["baselined"] = [d.to_dict() for d in self.baselined]
        return json.dumps(payload, indent=indent)


# ----------------------------------------------------------------------
# Rule registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Rule:
    """One registered lint rule.

    ``check`` receives the lint context and yields diagnostics; rules
    without a ``check`` (the stream-graph rules, which run on stream
    ledgers rather than programs) are catalog entries only.
    """

    id: str
    name: str
    severity: Severity
    description: str
    check: Optional[Callable] = None
    default_config: Dict[str, object] = field(default_factory=dict)

    def diag(self, message: str, *, location: str = "", fix_hint: str = "",
             severity: Optional[Severity] = None) -> Diagnostic:
        """Build a diagnostic carrying this rule's id and severity."""
        return Diagnostic(rule=self.id, severity=severity or self.severity,
                          message=message, location=location,
                          fix_hint=fix_hint)


class RuleRegistry:
    """Catalog of lint rules with enable/disable and per-rule config."""

    def __init__(self) -> None:
        self._rules: Dict[str, Rule] = {}
        self._disabled: set = set()
        self._config: Dict[str, Dict[str, object]] = {}

    # -- registration ---------------------------------------------------
    def register(self, rule: Rule) -> Rule:
        if rule.id in self._rules:
            raise ValueError(f"duplicate rule id {rule.id!r}")
        self._rules[rule.id] = rule
        return rule

    def rule(self, id: str, name: str, severity: Severity,
             description: str, **default_config):
        """Decorator: register ``fn`` as the check of a new rule."""
        def decorate(fn: Callable) -> Callable:
            self.register(Rule(id=id, name=name, severity=severity,
                               description=description, check=fn,
                               default_config=dict(default_config)))
            return fn
        return decorate

    # -- lookup ---------------------------------------------------------
    def __contains__(self, rule_id: str) -> bool:
        return rule_id in self._rules

    def get(self, rule_id: str) -> Rule:
        try:
            return self._rules[rule_id]
        except KeyError:
            raise KeyError(f"unknown rule {rule_id!r}; known: "
                           f"{sorted(self._rules)}") from None

    def all_rules(self) -> List[Rule]:
        return [self._rules[rid] for rid in sorted(self._rules)]

    def enabled_rules(self) -> List[Rule]:
        return [r for r in self.all_rules() if r.id not in self._disabled]

    def is_enabled(self, rule_id: str) -> bool:
        self.get(rule_id)
        return rule_id not in self._disabled

    # -- configuration --------------------------------------------------
    def disable(self, rule_id: str) -> None:
        self.get(rule_id)
        self._disabled.add(rule_id)

    def enable(self, rule_id: str) -> None:
        self.get(rule_id)
        self._disabled.discard(rule_id)

    def configure(self, rule_id: str, **options) -> None:
        """Override a rule's default config (``severity=`` remaps it)."""
        self.get(rule_id)
        self._config.setdefault(rule_id, {}).update(options)

    def config_for(self, rule_id: str) -> Dict[str, object]:
        rule = self.get(rule_id)
        merged = dict(rule.default_config)
        merged.update(self._config.get(rule_id, {}))
        return merged

    def effective_rule(self, rule_id: str) -> Rule:
        """The rule with any configured severity override applied."""
        rule = self.get(rule_id)
        override = self._config.get(rule_id, {}).get("severity")
        if override is None:
            return rule
        if isinstance(override, str):
            override = Severity.from_label(override)
        return replace(rule, severity=override)

    def catalog(self) -> str:
        """Render the rule catalog (``repro lint --rules``)."""
        lines = []
        for rule in self.all_rules():
            state = "" if rule.id not in self._disabled else " (disabled)"
            lines.append(f"{rule.id}  {rule.severity.value:<7} "
                         f"{rule.name}{state}")
            lines.append(f"      {rule.description}")
        return "\n".join(lines)
