"""Static stream/event-graph analyzer.

Walks :class:`~repro.sim.streams.CudaStream` enqueue ledgers (or a
declaratively built graph) to reconstruct the happens-before DAG CUDA
guarantees - per-stream FIFO order, ``after`` (cudaStreamWaitEvent)
edges, and host-blocking ``synchronize`` barriers - and statically
detects:

* **S301 stream-race** - two operations on different streams touch the
  same buffer, at least one writes, and neither happens-before the
  other (the classic unsynchronized H2D-copy-vs-kernel overlap bug).
* **S302 stream-cycle** - the dependency graph has a cycle; at run
  time every operation on it waits forever (deadlock).
* **S303 dead-sync** - a ``synchronize()`` that provably waits on
  nothing (empty or already-drained stream, or back-to-back syncs).

The analyzer is conservative in the sound direction: an edge is only
added when the ordering is guaranteed, so every reported race is a
genuine absence of synchronization in the modelled graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from ..sim.streams import StreamOpRecord
from .diagnostics import Diagnostic, Rule, RuleRegistry, Severity
from .rules import DEFAULT_REGISTRY

# Catalog entries (check=None: these run on stream graphs, not programs).
STREAM_RULES = (
    Rule("S301", "stream-race", Severity.ERROR,
         "Unsynchronized cross-stream access to the same buffer with at "
         "least one writer (e.g. a kernel consuming a buffer while an "
         "H2D copy to it is still in flight on another stream)."),
    Rule("S302", "stream-cycle", Severity.ERROR,
         "The happens-before graph has a dependency cycle: every "
         "operation on it deadlocks at run time."),
    Rule("S303", "dead-sync", Severity.WARNING,
         "A synchronize() that waits on nothing: the stream is empty, "
         "already drained, or was just synchronized."),
)
for _rule in STREAM_RULES:
    if _rule.id not in DEFAULT_REGISTRY:
        DEFAULT_REGISTRY.register(_rule)


@dataclass
class GraphOp:
    """One node of the happens-before DAG."""

    index: int
    stream: str
    label: str
    kind: str = "op"
    reads: Tuple[str, ...] = ()
    writes: Tuple[str, ...] = ()
    #: indices of ops this one is guaranteed to start after
    afters: List[int] = field(default_factory=list)
    #: sync-only: did the sync have in-flight work to wait for?
    pending: bool = True

    @property
    def is_sync(self) -> bool:
        return self.kind == "sync"

    def describe(self) -> str:
        return f"{self.stream}#{self.index}:{self.label}"


class StreamGraph:
    """A happens-before DAG over stream operations.

    Build it declaratively (:meth:`op` / :meth:`sync` /
    :meth:`add_dependency`) or from a recorded simulation ledger
    (:meth:`from_records` / :meth:`from_runtime`), then call
    :meth:`analyze`.
    """

    def __init__(self) -> None:
        self.ops: List[GraphOp] = []
        self._stream_tail: Dict[str, int] = {}
        self._last_sync: Optional[int] = None
        self._synced_tail: Dict[str, Optional[int]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def op(self, stream: str, label: str = "", kind: str = "op",
           reads: Sequence[str] = (), writes: Sequence[str] = (),
           after: Union[None, GraphOp, Iterable[GraphOp]] = None) -> GraphOp:
        """Append an operation to ``stream`` (FIFO after its tail)."""
        node = GraphOp(index=len(self.ops), stream=stream,
                       label=label or f"{stream}:{len(self.ops)}",
                       kind=kind, reads=tuple(reads), writes=tuple(writes))
        tail = self._stream_tail.get(stream)
        if tail is not None:
            node.afters.append(tail)
        if self._last_sync is not None:
            # Host blocked on a synchronize before enqueuing this op.
            node.afters.append(self._last_sync)
        if after is not None:
            targets = [after] if isinstance(after, GraphOp) else list(after)
            for target in targets:
                node.afters.append(target.index)
        self.ops.append(node)
        self._stream_tail[stream] = node.index
        return node

    def sync(self, stream: str) -> GraphOp:
        """Record a cudaStreamSynchronize on ``stream``."""
        tail = self._stream_tail.get(stream)
        pending = (tail is not None
                   and tail != self._synced_tail.get(stream))
        node = GraphOp(index=len(self.ops), stream=stream,
                       label=f"{stream}:synchronize", kind="sync",
                       pending=pending)
        if tail is not None:
            node.afters.append(tail)
        if self._last_sync is not None:
            node.afters.append(self._last_sync)
        self.ops.append(node)
        self._last_sync = node.index
        self._synced_tail[stream] = tail
        return node

    def add_dependency(self, op: GraphOp, after: GraphOp) -> None:
        """Add an arbitrary edge (supports testing cycle detection)."""
        op.afters.append(after.index)

    # ------------------------------------------------------------------
    # Construction from simulation ledgers
    # ------------------------------------------------------------------
    @classmethod
    def from_records(cls, records: Sequence[StreamOpRecord]) -> "StreamGraph":
        """Rebuild the DAG from recorded :class:`StreamOpRecord`s.

        ``after`` events are matched to producing operations by process
        identity; events the ledger does not know about contribute no
        edge (conservative: unknown ordering is no ordering).
        """
        graph = cls()
        by_process: Dict[int, GraphOp] = {}
        for record in records:
            if record.kind == "sync":
                node = graph.sync(record.stream)
                # Trust the runtime's view of pendingness: the ledger
                # records whether the tail had actually drained.
                node.pending = record.pending and node.pending
                continue
            node = graph.op(record.stream, label=record.label,
                            kind=record.kind, reads=record.reads,
                            writes=record.writes)
            for event in record.after:
                producer = by_process.get(id(event))
                if producer is not None:
                    node.afters.append(producer.index)
            if record.process is not None:
                by_process[id(record.process)] = node
        return graph

    @classmethod
    def from_runtime(cls, rt) -> "StreamGraph":
        """Rebuild the DAG from a runtime's ``stream_ops`` ledger."""
        return cls.from_records(getattr(rt, "stream_ops", ()))

    @classmethod
    def from_streams(cls, *streams) -> "StreamGraph":
        """Rebuild from individual streams' ledgers (host order is
        approximated by interleaving on sequence numbers)."""
        records = [op for stream in streams for op in stream.ops]
        records.sort(key=lambda r: r.sequence)
        return cls.from_records(records)

    # ------------------------------------------------------------------
    # Graph queries
    # ------------------------------------------------------------------
    def _successors(self) -> List[List[int]]:
        succ: List[List[int]] = [[] for _ in self.ops]
        for node in self.ops:
            for dep in node.afters:
                succ[dep].append(node.index)
        return succ

    def find_cycle(self) -> Optional[List[int]]:
        """One dependency cycle (list of op indices), or ``None``."""
        succ = self._successors()
        WHITE, GREY, BLACK = 0, 1, 2
        color = [WHITE] * len(self.ops)
        stack_path: List[int] = []

        def visit(start: int) -> Optional[List[int]]:
            work = [(start, iter(succ[start]))]
            color[start] = GREY
            stack_path.append(start)
            while work:
                node, children = work[-1]
                advanced = False
                for child in children:
                    if color[child] == GREY:
                        at = stack_path.index(child)
                        return stack_path[at:] + [child]
                    if color[child] == WHITE:
                        color[child] = GREY
                        stack_path.append(child)
                        work.append((child, iter(succ[child])))
                        advanced = True
                        break
                if not advanced:
                    work.pop()
                    stack_path.pop()
                    color[node] = BLACK
            return None

        for start in range(len(self.ops)):
            if color[start] == WHITE:
                cycle = visit(start)
                if cycle is not None:
                    return cycle
        return None

    def _reachability(self) -> List[Set[int]]:
        """``reach[i]`` = every op guaranteed to complete before op i."""
        order = sorted(range(len(self.ops)))  # indices are append-order
        reach: List[Set[int]] = [set() for _ in self.ops]
        for index in order:
            node = self.ops[index]
            for dep in node.afters:
                if dep < index:  # forward edges only (cycles reported separately)
                    reach[index].add(dep)
                    reach[index] |= reach[dep]
        return reach

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def analyze(self, registry: Optional[RuleRegistry] = None,
                workload: str = "", mode: str = "") -> List[Diagnostic]:
        """Run the stream rules; return their diagnostics."""
        registry = registry or DEFAULT_REGISTRY
        diagnostics: List[Diagnostic] = []

        def emit(rule_id: str, message: str, location: str,
                 fix_hint: str) -> None:
            if rule_id in registry and not registry.is_enabled(rule_id):
                return
            rule = (registry.effective_rule(rule_id)
                    if rule_id in registry else
                    next(r for r in STREAM_RULES if r.id == rule_id))
            diag = rule.diag(message, location=location, fix_hint=fix_hint)
            diagnostics.append(Diagnostic(
                rule=diag.rule, severity=diag.severity,
                message=diag.message, location=diag.location,
                fix_hint=diag.fix_hint, workload=workload, mode=mode))

        # S302 - cycles. A cyclic graph has no happens-before order, so
        # report it and skip race analysis (everything would look racy).
        cycle = self.find_cycle()
        if cycle is not None:
            names = " -> ".join(self.ops[i].describe() for i in cycle)
            emit("S302",
                 f"dependency cycle: {names}; every operation on it "
                 "deadlocks",
                 location=f"stream:{self.ops[cycle[0]].stream}",
                 fix_hint="break the cycle: an operation cannot wait on "
                          "work enqueued after it")
        else:
            reach = self._reachability()
            for b_idx, b in enumerate(self.ops):
                if b.is_sync:
                    continue
                for a_idx in range(b_idx):
                    a = self.ops[a_idx]
                    if a.is_sync or a.stream == b.stream:
                        continue
                    conflicts = (set(a.writes) & set(b.reads + b.writes)) \
                        | (set(a.reads) & set(b.writes))
                    if not conflicts:
                        continue
                    if a_idx in reach[b_idx] or b_idx in reach[a_idx]:
                        continue
                    buffers = ", ".join(sorted(conflicts))
                    emit("S301",
                         f"unsynchronized access to {buffers!r}: "
                         f"{a.describe()} and {b.describe()} run on "
                         "different streams with no happens-before edge",
                         location=f"{a.stream}<->{b.stream}",
                         fix_hint="add an event edge (enqueue "
                                  "after=<producer>) or a synchronize "
                                  "between the streams")

        for node in self.ops:
            if node.is_sync and not node.pending:
                emit("S303",
                     f"{node.describe()} waits on nothing (stream empty "
                     "or already drained)",
                     location=f"stream:{node.stream}",
                     fix_hint="drop the redundant synchronize")
        return diagnostics


def analyze_records(records: Sequence[StreamOpRecord],
                    registry: Optional[RuleRegistry] = None,
                    workload: str = "", mode: str = "") -> List[Diagnostic]:
    """Convenience: rebuild the DAG from a ledger and analyze it."""
    return StreamGraph.from_records(records).analyze(
        registry, workload=workload, mode=mode)
