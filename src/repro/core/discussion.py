"""Section 6.1 aggregates: where the time goes before/after optimizing.

The paper reports that across the application suite, moving from
``standard`` to ``uvm_prefetch_async``:

* the CPU-GPU transfer share of overall time drops (55.86 % -> 24.55 %),
* GPU occupancy (busy fraction) rises (25.15 % -> 37.79 %), and
* allocation becomes the dominant share (18.99 % -> 37.66 %),

which motivates the inter-job pipeline of
:mod:`repro.core.pipeline_model`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..workloads.registry import APP_NAMES
from ..workloads.sizes import SizeClass
from .configs import TransferMode
from .experiment import Experiment
from .stats import mean


@dataclass(frozen=True)
class ShareSummary:
    """Mean time shares and GPU busyness for one configuration."""

    mode: TransferMode
    memcpy_share: float
    allocation_share: float
    kernel_share: float
    gpu_busy: float

    def __post_init__(self) -> None:
        for name in ("memcpy_share", "allocation_share", "kernel_share",
                     "gpu_busy"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} outside [0, 1]: {value}")


@dataclass(frozen=True)
class DiscussionSummary:
    """The Sec. 6.1 before/after pair."""

    standard: ShareSummary
    optimized: ShareSummary

    @property
    def transfer_share_drop(self) -> float:
        return self.standard.memcpy_share - self.optimized.memcpy_share

    @property
    def occupancy_gain(self) -> float:
        return self.optimized.gpu_busy - self.standard.gpu_busy

    @property
    def allocation_share_rise(self) -> float:
        return (self.optimized.allocation_share
                - self.standard.allocation_share)

    def render(self) -> str:
        rows = []
        for summary in (self.standard, self.optimized):
            rows.append(
                f"{summary.mode.value:>20}: transfer {summary.memcpy_share:6.2%}"
                f"  allocation {summary.allocation_share:6.2%}"
                f"  kernel {summary.kernel_share:6.2%}"
                f"  GPU busy {summary.gpu_busy:6.2%}")
        return "\n".join(rows)


def _mode_shares(mode: TransferMode, workloads: Sequence[str],
                 size: SizeClass, iterations: int,
                 base_seed: int) -> ShareSummary:
    memcpy, alloc, kernel, busy = [], [], [], []
    for name in workloads:
        runs = Experiment(workload=name, size=size, modes=(mode,),
                          iterations=iterations,
                          base_seed=base_seed).run_mode(mode)
        for run in runs.runs:
            memcpy.append(run.share("memcpy"))
            alloc.append(run.share("allocation"))
            kernel.append(run.share("gpu_kernel"))
            busy.append(run.gpu_busy_fraction)
    return ShareSummary(
        mode=mode,
        memcpy_share=mean(memcpy),
        allocation_share=mean(alloc),
        kernel_share=mean(kernel),
        gpu_busy=mean(busy),
    )


def section6_shares(workloads: Sequence[str] = APP_NAMES,
                    size: SizeClass = SizeClass.SUPER,
                    iterations: int = 3, base_seed: int = 1234,
                    optimized_mode: TransferMode =
                    TransferMode.UVM_PREFETCH_ASYNC) -> DiscussionSummary:
    """Compute the Sec. 6.1 before/after share summary."""
    return DiscussionSummary(
        standard=_mode_shares(TransferMode.STANDARD, workloads, size,
                              iterations, base_seed),
        optimized=_mode_shares(optimized_mode, workloads, size,
                               iterations, base_seed),
    )
