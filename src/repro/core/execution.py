"""Replaying a workload program under one transfer configuration.

This module encodes what each of the five configurations *means* as a
sequence of runtime operations:

* ``standard`` / ``async`` - host malloc, ``cudaMalloc``, explicit
  H2D copies, kernels (sync or cp.async staging), explicit D2H copies,
  ``cudaFree``.
* ``uvm`` - ``cudaMallocManaged``, kernels fault their data over on
  first touch (migration overlaps the stalling kernel), the host
  faults results back, ``cudaFree``.
* ``uvm_prefetch`` / ``uvm_prefetch_async`` - as ``uvm`` plus a bulk
  ``cudaMemPrefetchAsync`` of every input range before the kernels;
  kernels start fully resident, except when a preceding kernel shares
  its working set (the paper's nw anomaly).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..sim.calibration import Calibration, default_calibration
from ..sim.hardware import SystemSpec, default_system
from ..sim.program import BufferDirection, Program
from ..sim.runtime import CudaRuntime
from .configs import TransferMode
from .results import RunResult

# Fraction of a kernel's working set still resident when a bulk
# prefetch for the previous kernel displaced shared data (nw case):
# the displaced range must fault back in entirely.
SHARED_DATA_PREFETCH_PENALTY = 0.0

# Fraction of HBM usable for managed data (driver reserves the rest).
UVM_USABLE_HBM_FRACTION = 0.95

#: Recognized simulation engines: ``reference`` is the historical
#: event-by-event heap engine; ``fast`` is the bit-identical
#: train-coalescing engine (:class:`repro.sim.fastpath.FastEnvironment`).
ENGINES = ("reference", "fast")


def make_environment(engine: str):
    """Build the simulation environment for an engine name."""
    from ..sim.engine import Environment
    if engine == "reference":
        return Environment()
    if engine == "fast":
        from ..sim.fastpath import FastEnvironment
        return FastEnvironment()
    raise ValueError(
        f"unknown engine {engine!r}; expected one of {', '.join(ENGINES)}")


def managed_capacity_ratio(program: Program, rt: CudaRuntime) -> float:
    """How much of the program's footprint fits GPU memory at once.

    Under oversubscription (footprint > HBM), every kernel pass
    re-faults the excess - the thrashing regime studied by the
    oversubscription literature the paper builds on (Shao et al.).
    Explicit allocation cannot oversubscribe at all; managed memory
    degrades gracefully via this cap on residency.
    """
    usable = rt.system.gpu.hbm_bytes * UVM_USABLE_HBM_FRACTION
    return min(1.0, usable / max(program.footprint_bytes, 1))


def _explicit_process(rt: CudaRuntime, program: Program, mode: TransferMode):
    """standard / async: explicit allocation and copies."""
    flags = mode.kernel_flags()
    for buf in program.buffers:
        if buf.direction is not BufferDirection.SCRATCH:
            yield from rt.malloc_host(buf.name, buf.size_bytes)
    for buf in program.buffers:
        yield from rt.malloc_device(buf.name, buf.size_bytes)
    for buf in program.buffers:
        if buf.direction.host_to_device:
            yield from rt.memcpy_h2d(buf.name, buf.size_bytes)
    for phase in program.phases:
        yield from rt.launch_repeated(phase.descriptor, flags, phase.count,
                                      resident_first=1.0, resident_rest=1.0)
        if phase.host_sync_bytes:
            # Rodinia's explicit versions copy intermediate results
            # back every iteration; UVM keeps them resident instead.
            yield from rt.memcpy_d2h(f"{phase.descriptor.name}:sync",
                                     phase.host_sync_bytes)
    for buf in program.buffers:
        if buf.direction.device_to_host:
            yield from rt.memcpy_d2h(buf.name, buf.size_bytes)
    for buf in program.buffers:
        yield from rt.free(buf.name, buf.size_bytes, managed=False)


def _managed_process(rt: CudaRuntime, program: Program, mode: TransferMode):
    """uvm / uvm_prefetch / uvm_prefetch_async."""
    flags = mode.kernel_flags()
    for buf in program.buffers:
        yield from rt.malloc_managed(
            buf.name, buf.size_bytes,
            host_populated=buf.direction.host_to_device)

    if mode.prefetch:
        for buf in program.buffers:
            if buf.direction.host_to_device:
                yield from rt.uvm_prefetch(buf.name,
                                           fraction=buf.device_touched_fraction)

    capacity_ratio = managed_capacity_ratio(program, rt)
    first_touch = True
    previous_shares_data = False
    for phase in program.phases:
        desc = phase.descriptor
        if mode.prefetch:
            resident_first = 1.0
            if previous_shares_data:
                # Prefetching around a kernel that re-reads the previous
                # kernel's data displaces the shared working set; part of
                # it must fault back (the paper's nw case).
                resident_first = SHARED_DATA_PREFETCH_PENALTY
            resident_rest = resident_first if phase.fresh_data else 1.0
        else:
            resident_first = 1.0 if not first_touch else 0.0
            resident_rest = 0.0 if phase.fresh_data else 1.0
        # Oversubscription: residency is capped by GPU capacity, so
        # repeated passes keep re-faulting the evicted excess.
        resident_first = min(resident_first, capacity_ratio)
        resident_rest = min(resident_rest, capacity_ratio)
        yield from rt.launch_repeated(desc, flags, phase.count,
                                      resident_first=resident_first,
                                      resident_rest=resident_rest)
        first_touch = False
        previous_shares_data = desc.shares_data_with_next

    for buf in program.buffers:
        if buf.direction.device_to_host:
            rt.managed.device_wrote(buf.name, fraction=1.0)
            yield from rt.uvm_host_read(buf.name, buf.host_read_fraction)
    for buf in program.buffers:
        yield from rt.free(buf.name, buf.size_bytes, managed=True)


def execute_program(program: Program, mode: TransferMode, *,
                    system: Optional[SystemSpec] = None,
                    calib: Optional[Calibration] = None,
                    rng: Optional[np.random.Generator] = None,
                    seed: int = 0,
                    smem_carveout_bytes: Optional[int] = None,
                    size_label: str = "",
                    validate: bool = False,
                    engine: str = "reference",
                    phase_memo=None) -> RunResult:
    """Run one program once under one configuration; return the measurement.

    With ``validate=True`` the program is first linted against this
    (mode, system, carveout) and :class:`repro.analysis.LintError` is
    raised before any simulation time is spent if an error-severity
    finding exists (e.g. a launch that overflows the shared-memory
    carveout, or an explicit allocation larger than HBM).

    ``engine`` selects the simulation engine (see :data:`ENGINES`);
    both produce bit-identical results — ``fast`` merely skips event
    machinery it can prove unobservable.  ``phase_memo`` optionally
    supplies a :class:`repro.sim.phasecache.PhaseMemo` whose
    ``simulate`` replaces ``simulate_kernel`` (pure function, so
    memoization is result-preserving by construction).
    """
    system = system or default_system()
    calib = calib or default_calibration()
    if validate:
        # Late import: analysis depends on sim only; importing it here
        # keeps core importable without the analysis package loaded.
        from ..analysis.runner import validate_program
        validate_program(program, mode, system=system,
                         smem_carveout_bytes=smem_carveout_bytes)
    rng = rng if rng is not None else np.random.default_rng(seed)
    kernel_sim = None
    if phase_memo is not None:
        kernel_sim = phase_memo.simulate
    rt = CudaRuntime(system, calib, rng,
                     footprint_bytes=program.footprint_bytes,
                     smem_carveout_bytes=smem_carveout_bytes,
                     env=make_environment(engine),
                     kernel_sim=kernel_sim)
    if mode.managed:
        process = _managed_process(rt, program, mode)
    else:
        process = _explicit_process(rt, program, mode)
    rt.run(process)

    timeline = rt.timeline
    wall = timeline.wall_ns()
    gpu_busy = timeline.busy_time("gpu_kernel") / wall if wall > 0 else 0.0
    return RunResult(
        workload=program.name,
        mode=mode,
        size=size_label,
        seed=seed,
        alloc_ns=timeline.category_time("allocation"),
        memcpy_ns=timeline.category_time("memcpy"),
        kernel_ns=timeline.category_time("gpu_kernel"),
        wall_ns=wall,
        counters=rt.counters,
        occupancy=rt.counters.mean_occupancy(),
        gpu_busy_fraction=gpu_busy,
    )
