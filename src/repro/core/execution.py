"""Replaying a workload program under one transfer configuration.

This module encodes what each of the five configurations *means* as a
sequence of runtime operations:

* ``standard`` / ``async`` - host malloc, ``cudaMalloc``, explicit
  H2D copies, kernels (sync or cp.async staging), explicit D2H copies,
  ``cudaFree``.
* ``uvm`` - ``cudaMallocManaged``, kernels fault their data over on
  first touch (migration overlaps the stalling kernel), the host
  faults results back, ``cudaFree``.
* ``uvm_prefetch`` / ``uvm_prefetch_async`` - as ``uvm`` plus a bulk
  ``cudaMemPrefetchAsync`` of every input range before the kernels;
  kernels start fully resident, except when a preceding kernel shares
  its working set (the paper's nw anomaly).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..sim.calibration import Calibration, default_calibration
from ..sim.counters import CounterReport
from ..sim.hardware import SystemSpec, default_system
from ..sim.pcie import TransferKind
from ..sim.program import BufferDirection, Program
from ..sim.runtime import CudaRuntime, combine_repeat_counters
from ..sim.timing import simulate_kernel
from .configs import TransferMode
from .results import RunResult

# Fraction of a kernel's working set still resident when a bulk
# prefetch for the previous kernel displaced shared data (nw case):
# the displaced range must fault back in entirely.
SHARED_DATA_PREFETCH_PENALTY = 0.0

# Fraction of HBM usable for managed data (driver reserves the rest).
UVM_USABLE_HBM_FRACTION = 0.95

@dataclass(frozen=True)
class EngineSpec:
    """One entry in the :data:`ENGINES` registry.

    ``uses_phase_memo`` engines bind the process-local kernel-phase
    memo (:func:`repro.sim.phasecache.phase_memo_for`); ``analytic``
    engines replay programs without the event heap
    (:class:`repro.sim.vecgrid.AnalyticRuntime`) and reroute to
    ``fallback`` when the analytic contention classifier bails.
    """

    name: str
    summary: str
    uses_phase_memo: bool = False
    analytic: bool = False
    fallback: Optional[str] = None


#: The single source of truth for engine selection — consumed by
#: ``cli.py`` (``--engine`` choices), ``SweepExecutor`` and
#: :func:`execute_program`.  All engines are bit-identical; they differ
#: only in how much event machinery they can prove unobservable.
ENGINES: Dict[str, EngineSpec] = {
    "reference": EngineSpec(
        "reference", "event-by-event heap engine (the historical baseline)"),
    "fast": EngineSpec(
        "fast", "train-coalescing event engine + kernel-phase memo",
        uses_phase_memo=True),
    "vector": EngineSpec(
        "vector", "analytic array-program engine; grid-batched phases, "
        "falls back to the event engine on cross-stream contention",
        uses_phase_memo=True, analytic=True, fallback="fast"),
}


def engine_spec(engine: str) -> EngineSpec:
    """Resolve an engine name, raising the canonical error when unknown."""
    try:
        return ENGINES[engine]
    except KeyError:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of "
            f"{', '.join(ENGINES)}") from None


def make_environment(engine: str):
    """Build the simulation environment for an *event* engine name."""
    from ..sim.engine import Environment
    spec = engine_spec(engine)
    if spec.analytic:
        raise ValueError(
            f"engine {engine!r} is analytic and has no event environment; "
            "build its runtime via make_runtime()")
    if engine == "fast":
        from ..sim.fastpath import FastEnvironment
        return FastEnvironment()
    return Environment()


def make_runtime(engine: str, system: SystemSpec, calib: Calibration,
                 rng: np.random.Generator, *,
                 footprint_bytes: int = 0,
                 smem_carveout_bytes: Optional[int] = None,
                 kernel_sim=None) -> CudaRuntime:
    """Build the runtime for an engine name (event or analytic)."""
    if engine_spec(engine).analytic:
        from ..sim.vecgrid import AnalyticRuntime
        return AnalyticRuntime(system, calib, rng,
                               footprint_bytes=footprint_bytes,
                               smem_carveout_bytes=smem_carveout_bytes,
                               kernel_sim=kernel_sim)
    return CudaRuntime(system, calib, rng,
                       footprint_bytes=footprint_bytes,
                       smem_carveout_bytes=smem_carveout_bytes,
                       env=make_environment(engine),
                       kernel_sim=kernel_sim)


def managed_capacity_ratio(program: Program, rt: CudaRuntime) -> float:
    """How much of the program's footprint fits GPU memory at once.

    Under oversubscription (footprint > HBM), every kernel pass
    re-faults the excess - the thrashing regime studied by the
    oversubscription literature the paper builds on (Shao et al.).
    Explicit allocation cannot oversubscribe at all; managed memory
    degrades gracefully via this cap on residency.
    """
    return capacity_ratio_for(program, rt.system)


def capacity_ratio_for(program: Program, system: SystemSpec) -> float:
    """:func:`managed_capacity_ratio` without a runtime in hand."""
    usable = system.gpu.hbm_bytes * UVM_USABLE_HBM_FRACTION
    return min(1.0, usable / max(program.footprint_bytes, 1))


def iter_phase_cells(program: Program, mode: TransferMode,
                     smem_carveout_bytes: Optional[int],
                     system: SystemSpec) -> List[Tuple]:
    """Enumerate the kernel-phase memo cells one run will request.

    Mirrors the residency logic of :func:`_explicit_process` /
    :func:`_managed_process` (first-touch, shared-data prefetch
    displacement, oversubscription capping, cold-vs-warm repeats) so
    the vector engine can batch-evaluate a whole sweep's phases before
    any spec runs (:func:`repro.sim.vecgrid.prewarm_phase_memo`).
    Drifting from the process functions is *safe* — a missed cell is a
    scalar memo miss, never a wrong result — but wastes the batching,
    so keep the two in lockstep.
    """
    flags = mode.kernel_flags()
    carveout = (smem_carveout_bytes if smem_carveout_bytes is not None
                else system.gpu.default_shared_mem_bytes)
    cells: List[Tuple] = []
    if not mode.managed:
        for phase in program.phases:
            cells.append((phase.descriptor, flags, carveout, 1.0))
        return cells
    capacity_ratio = capacity_ratio_for(program, system)
    first_touch = True
    previous_shares_data = False
    for phase in program.phases:
        desc = phase.descriptor
        if mode.prefetch:
            resident_first = 1.0
            if previous_shares_data:
                resident_first = SHARED_DATA_PREFETCH_PENALTY
            resident_rest = resident_first if phase.fresh_data else 1.0
        else:
            resident_first = 1.0 if not first_touch else 0.0
            resident_rest = 0.0 if phase.fresh_data else 1.0
        resident_first = min(resident_first, capacity_ratio)
        resident_rest = min(resident_rest, capacity_ratio)
        cells.append((desc, flags, carveout, resident_first))
        if phase.count > 1 and resident_rest != resident_first:
            cells.append((desc, flags, carveout, resident_rest))
        first_touch = False
        previous_shares_data = desc.shares_data_with_next
    return cells


def _explicit_process(rt: CudaRuntime, program: Program, mode: TransferMode):
    """standard / async: explicit allocation and copies."""
    flags = mode.kernel_flags()
    for buf in program.buffers:
        if buf.direction is not BufferDirection.SCRATCH:
            yield from rt.malloc_host(buf.name, buf.size_bytes)
    for buf in program.buffers:
        yield from rt.malloc_device(buf.name, buf.size_bytes)
    for buf in program.buffers:
        if buf.direction.host_to_device:
            yield from rt.memcpy_h2d(buf.name, buf.size_bytes)
    for phase in program.phases:
        yield from rt.launch_repeated(phase.descriptor, flags, phase.count,
                                      resident_first=1.0, resident_rest=1.0)
        if phase.host_sync_bytes:
            # Rodinia's explicit versions copy intermediate results
            # back every iteration; UVM keeps them resident instead.
            yield from rt.memcpy_d2h(f"{phase.descriptor.name}:sync",
                                     phase.host_sync_bytes)
    for buf in program.buffers:
        if buf.direction.device_to_host:
            yield from rt.memcpy_d2h(buf.name, buf.size_bytes)
    for buf in program.buffers:
        yield from rt.free(buf.name, buf.size_bytes, managed=False)


def _managed_process(rt: CudaRuntime, program: Program, mode: TransferMode):
    """uvm / uvm_prefetch / uvm_prefetch_async."""
    flags = mode.kernel_flags()
    for buf in program.buffers:
        yield from rt.malloc_managed(
            buf.name, buf.size_bytes,
            host_populated=buf.direction.host_to_device)

    if mode.prefetch:
        for buf in program.buffers:
            if buf.direction.host_to_device:
                yield from rt.uvm_prefetch(buf.name,
                                           fraction=buf.device_touched_fraction)

    capacity_ratio = managed_capacity_ratio(program, rt)
    first_touch = True
    previous_shares_data = False
    for phase in program.phases:
        desc = phase.descriptor
        if mode.prefetch:
            resident_first = 1.0
            if previous_shares_data:
                # Prefetching around a kernel that re-reads the previous
                # kernel's data displaces the shared working set; part of
                # it must fault back (the paper's nw case).
                resident_first = SHARED_DATA_PREFETCH_PENALTY
            resident_rest = resident_first if phase.fresh_data else 1.0
        else:
            resident_first = 1.0 if not first_touch else 0.0
            resident_rest = 0.0 if phase.fresh_data else 1.0
        # Oversubscription: residency is capped by GPU capacity, so
        # repeated passes keep re-faulting the evicted excess.
        resident_first = min(resident_first, capacity_ratio)
        resident_rest = min(resident_rest, capacity_ratio)
        yield from rt.launch_repeated(desc, flags, phase.count,
                                      resident_first=resident_first,
                                      resident_rest=resident_rest)
        first_touch = False
        previous_shares_data = desc.shares_data_with_next

    for buf in program.buffers:
        if buf.direction.device_to_host:
            rt.managed.device_wrote(buf.name, fraction=1.0)
            yield from rt.uvm_host_read(buf.name, buf.host_read_fraction)
    for buf in program.buffers:
        yield from rt.free(buf.name, buf.size_bytes, managed=True)


def execute_program(program: Program, mode: TransferMode, *,
                    system: Optional[SystemSpec] = None,
                    calib: Optional[Calibration] = None,
                    rng: Optional[np.random.Generator] = None,
                    seed: int = 0,
                    smem_carveout_bytes: Optional[int] = None,
                    size_label: str = "",
                    validate: bool = False,
                    engine: str = "reference",
                    phase_memo=None) -> RunResult:
    """Run one program once under one configuration; return the measurement.

    With ``validate=True`` the program is first linted against this
    (mode, system, carveout) and :class:`repro.analysis.LintError` is
    raised before any simulation time is spent if an error-severity
    finding exists (e.g. a launch that overflows the shared-memory
    carveout, or an explicit allocation larger than HBM).

    ``engine`` selects the simulation engine (see :data:`ENGINES`);
    both produce bit-identical results — ``fast`` merely skips event
    machinery it can prove unobservable.  ``phase_memo`` optionally
    supplies a :class:`repro.sim.phasecache.PhaseMemo` whose
    ``simulate`` replaces ``simulate_kernel`` (pure function, so
    memoization is result-preserving by construction).
    """
    system = system or default_system()
    calib = calib or default_calibration()
    if validate:
        # Late import: analysis depends on sim only; importing it here
        # keeps core importable without the analysis package loaded.
        from ..analysis.runner import validate_program
        validate_program(program, mode, system=system,
                         smem_carveout_bytes=smem_carveout_bytes)
    rng = rng if rng is not None else np.random.default_rng(seed)
    kernel_sim = None
    if phase_memo is not None:
        kernel_sim = phase_memo.simulate
    spec = engine_spec(engine)
    if spec.analytic:
        from ..sim.vecgrid import vec_stats
        # The runtime constructor itself draws (host placement), so
        # snapshot the RNG *before* building it: a contention fallback
        # must replay the event engine on the exact same stream.
        state = rng.bit_generator.state
        rt = _build_and_run(engine, program, mode, system, calib, rng,
                            smem_carveout_bytes, kernel_sim)
        if rt is not None:
            vec_stats().analytic_runs += 1
            return _assemble_result(rt, program, mode, size_label, seed)
        vec_stats().fallbacks += 1
        rng.bit_generator.state = state
        engine = spec.fallback or "reference"
    rt = _build_and_run(engine, program, mode, system, calib, rng,
                        smem_carveout_bytes, kernel_sim)
    return _assemble_result(rt, program, mode, size_label, seed)


def compile_program(program: Program, mode: TransferMode,
                    system: SystemSpec, calib: Calibration,
                    smem_carveout_bytes: Optional[int] = None,
                    kernel_sim=None):
    """Lower one (program, mode, carveout) structure to a compiled op
    list for whole-grid replay (:mod:`repro.sim.vecgrid`).

    The *real* process generators drive a recording runtime, so the
    compiled ops cannot drift from execution semantics; only the
    seed-dependent parts (host placement, jitter, measurement noise)
    are deferred to replay time.
    """
    from ..sim.vecgrid import CompilerRuntime
    rt = CompilerRuntime(system, calib,
                         smem_carveout_bytes=smem_carveout_bytes,
                         kernel_sim=kernel_sim)
    if mode.managed:
        process = _managed_process(rt, program, mode)
    else:
        process = _explicit_process(rt, program, mode)
    rt.run(process)
    return rt.finish(program)


def program_structure_key(program: Program) -> Tuple:
    """Everything about a program that determines its compiled op shape
    except kernel geometry.

    Two programs with equal keys produce compiled tapes whose host-op
    durations, transfer bytes, launch flags and residency fractions are
    equal *functions of equal inputs* — allocation costs and
    :class:`~repro.sim.uvm.ManagedSpace` plans depend only on the
    buffer list, residency logic only on phase structure and footprint
    (see :func:`iter_phase_cells`), and the jitter charge only on op
    order.  That is the guard for :func:`derive_compiled`: a sibling
    cell along a threads/blocks/carveout axis shares the key, so only
    its kernel totals and demand-migration spawns need re-deriving;
    a size-axis sibling gets a different key and a full compile.
    """
    return (
        program.footprint_bytes,
        tuple((buf.name, buf.size_bytes, buf.direction,
               buf.device_touched_fraction, buf.host_read_fraction)
              for buf in program.buffers),
        tuple((phase.descriptor.name, phase.count, phase.host_sync_bytes,
               phase.fresh_data, phase.descriptor.shares_data_with_next)
              for phase in program.phases),
    )


def derive_compiled(rep, program: Program, system: SystemSpec,
                    calib: Calibration,
                    smem_carveout_bytes: Optional[int] = None,
                    kernel_sim=None):
    """Derive a sibling cell's compiled tape from a representative's.

    ``rep`` is a :class:`~repro.sim.vecgrid.CompiledProgram` for a
    program with the same :func:`program_structure_key`; only kernel
    totals, counters and demand-migration spawns can differ, so this
    rebuilds exactly those ops — through the same ``kernel_sim`` and
    the same float expressions as ``launch_repeated`` — and copies the
    rest verbatim.  Returns ``None`` when the sibling's spawn shape
    differs from the representative's (a kernel that faults in one cell
    but not the other); the caller full-compiles that cell instead.
    Results are bitwise identical to :func:`compile_program` either
    way — pinned by the fusion property battery.
    """
    from ..sim.vecgrid import _OP_KERNEL, _OP_SPAWN, CompiledProgram
    if kernel_sim is None:
        kernel_sim = simulate_kernel
    if smem_carveout_bytes is None:
        # Same default resolution as CudaRuntime.__init__ — the
        # recorded launches saw the resolved value, not None.
        smem_carveout_bytes = system.gpu.default_shared_mem_bytes
    if len(rep.launches) != len(program.phases):  # pragma: no cover
        return None
    ops: List[Tuple] = []
    counters = CounterReport()
    phase_index = 0
    i = 0
    rep_ops = rep.ops
    total_ops = len(rep_ops)
    while i < total_ops:
        op = rep_ops[i]
        code = op[0]
        if code != _OP_SPAWN and code != _OP_KERNEL:
            ops.append(op)
            i += 1
            continue
        # One launch: an optional spawn op followed by its kernel op.
        flags, count, resident_first, resident_rest = \
            rep.launches[phase_index]
        desc = program.phases[phase_index].descriptor
        first = kernel_sim(desc, flags, system, calib,
                           smem_carveout_bytes=smem_carveout_bytes,
                           resident_fraction=resident_first)
        rest = None
        if count > 1:
            if resident_rest == resident_first:
                rest = first
            else:
                rest = kernel_sim(desc, flags, system, calib,
                                  smem_carveout_bytes=smem_carveout_bytes,
                                  resident_fraction=resident_rest)
        total_ns = first.duration_ns + (count - 1) * (rest.duration_ns
                                                      if rest else 0.0)
        migrate_bytes = first.demand_migrated_bytes
        if rest is not None:
            migrate_bytes += (count - 1) * rest.demand_migrated_bytes
        spawned = code == _OP_SPAWN
        if spawned != (migrate_bytes > 0):
            return None
        if spawned:
            duration = rep.link.duration_ns(TransferKind.MIGRATE_H2D,
                                            migrate_bytes, 1.0)
            ops.append((_OP_SPAWN, op[1], migrate_bytes, duration))
            i += 1
            kernel_op = rep_ops[i]
        else:
            kernel_op = op
        ops.append((_OP_KERNEL, kernel_op[1], total_ns, kernel_op[3]))
        counters.add(combine_repeat_counters(first, rest, count))
        phase_index += 1
        i += 1
    if phase_index != len(rep.launches):  # pragma: no cover
        return None
    return CompiledProgram(
        name=program.name,
        footprint_bytes=program.footprint_bytes,
        ops=tuple(ops),
        counters=counters,
        occupancy=counters.mean_occupancy(),
        draws=rep.draws,
        link=rep.link,
        copy_engines=rep.copy_engines,
        launches=rep.launches,
    )


def replay_result(compiled, mode: TransferMode, rng: np.random.Generator,
                  system: SystemSpec, calib: Calibration,
                  size_label: str, seed: int) -> RunResult:
    """One spec's :class:`RunResult` from a compiled program.

    Bit-identical to :func:`execute_program` on any engine for the same
    seed stream; raises :class:`repro.sim.vecgrid.ContentionDetected`
    when the replay meets genuine contention (callers fall back to the
    per-spec path, which re-routes to the event engine).
    """
    from ..sim.vecgrid import replay_compiled
    alloc_ns, memcpy_ns, kernel_ns, wall_ns, gpu_busy = replay_compiled(
        compiled, rng, system, calib)
    return RunResult(
        workload=compiled.name,
        mode=mode,
        size=size_label,
        seed=seed,
        alloc_ns=alloc_ns,
        memcpy_ns=memcpy_ns,
        kernel_ns=kernel_ns,
        wall_ns=wall_ns,
        counters=compiled.counters,
        occupancy=compiled.occupancy,
        gpu_busy_fraction=gpu_busy,
    )


def _build_and_run(engine: str, program: Program, mode: TransferMode,
                   system: SystemSpec, calib: Calibration,
                   rng: np.random.Generator,
                   smem_carveout_bytes: Optional[int],
                   kernel_sim) -> Optional[CudaRuntime]:
    """Run one program on one engine; ``None`` when the analytic
    classifier routes the run back to the event engine."""
    rt = make_runtime(engine, system, calib, rng,
                      footprint_bytes=program.footprint_bytes,
                      smem_carveout_bytes=smem_carveout_bytes,
                      kernel_sim=kernel_sim)
    if mode.managed:
        process = _managed_process(rt, program, mode)
    else:
        process = _explicit_process(rt, program, mode)
    if engine_spec(engine).analytic:
        from ..sim.vecgrid import ContentionDetected
        try:
            rt.run(process)
        except ContentionDetected:
            return None
        return rt
    rt.run(process)
    return rt


def _assemble_result(rt: CudaRuntime, program: Program, mode: TransferMode,
                     size_label: str, seed: int) -> RunResult:
    """Fold a finished runtime's timeline into a :class:`RunResult`."""
    timeline = rt.timeline
    wall = timeline.wall_ns()
    gpu_busy = timeline.busy_time("gpu_kernel") / wall if wall > 0 else 0.0
    return RunResult(
        workload=program.name,
        mode=mode,
        size=size_label,
        seed=seed,
        alloc_ns=timeline.category_time("allocation"),
        memcpy_ns=timeline.category_time("memcpy"),
        kernel_ns=timeline.category_time("gpu_kernel"),
        wall_ns=wall,
        counters=rt.counters,
        occupancy=rt.counters.mean_occupancy(),
        gpu_busy_fraction=gpu_busy,
    )
