"""The experiment runner: repeated runs across configurations.

An :class:`Experiment` reproduces the paper's measurement protocol:
run one workload at one input-size class under each configuration for
N iterations (the paper uses 30), with deterministic per-run seeds, and
collect the distributions into a :class:`~repro.core.results.ModeComparison`.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

import numpy as np

from ..sim.calibration import Calibration, default_calibration
from ..sim.hardware import SystemSpec, default_system
from ..workloads.base import Workload
from ..workloads.sizes import SizeClass
from .configs import ALL_MODES, TransferMode
from .execution import execute_program
from .results import ModeComparison, RunResult, RunSet

DEFAULT_ITERATIONS = 30


def _stable_token(text: str) -> int:
    """Deterministic across interpreter runs (unlike ``hash``)."""
    return zlib.crc32(text.encode("utf-8"))


def run_seed(base_seed: int, workload: str, size: str, mode: TransferMode,
             iteration: int) -> np.random.SeedSequence:
    """The per-run seed: stable, and unique per (workload, size, mode, i)."""
    return np.random.SeedSequence(
        [base_seed, _stable_token(workload), _stable_token(size),
         _stable_token(mode.value), iteration]
    )


def resolve_workload(workload: Union[str, Workload]) -> Workload:
    if isinstance(workload, Workload):
        return workload
    from ..workloads.registry import get_workload
    return get_workload(workload)


@dataclass
class Experiment:
    """One workload x one size x several configurations x N iterations."""

    workload: Union[str, Workload]
    size: SizeClass = SizeClass.SUPER
    modes: Sequence[TransferMode] = ALL_MODES
    iterations: int = DEFAULT_ITERATIONS
    base_seed: int = 1234
    system: Optional[SystemSpec] = None
    calib: Optional[Calibration] = None
    smem_carveout_bytes: Optional[int] = None
    _resolved: Optional[Workload] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        if not self.modes:
            raise ValueError("at least one mode is required")

    @property
    def target(self) -> Workload:
        if self._resolved is None:
            self._resolved = resolve_workload(self.workload)
        return self._resolved

    def run_one(self, mode: TransferMode, iteration: int) -> RunResult:
        workload = self.target
        program = workload.program(self.size)
        seed_seq = run_seed(self.base_seed, workload.name, self.size.label,
                            mode, iteration)
        rng = np.random.default_rng(seed_seq)
        return execute_program(
            program, mode,
            system=self.system or default_system(),
            calib=self.calib or default_calibration(),
            rng=rng,
            seed=iteration,
            smem_carveout_bytes=self.smem_carveout_bytes,
            size_label=self.size.label,
        )

    def run_mode(self, mode: TransferMode) -> RunSet:
        workload = self.target
        if not workload.supports(self.size):
            raise ValueError(
                f"workload {workload.name!r} does not support size "
                f"{self.size.label!r}"
            )
        runs = RunSet(workload=workload.name, mode=mode, size=self.size.label)
        # Build the program once; it is immutable and shared by runs.
        program = workload.program(self.size)
        system = self.system or default_system()
        calib = self.calib or default_calibration()
        for iteration in range(self.iterations):
            seed_seq = run_seed(self.base_seed, workload.name,
                                self.size.label, mode, iteration)
            rng = np.random.default_rng(seed_seq)
            runs.add(execute_program(
                program, mode, system=system, calib=calib, rng=rng,
                seed=iteration,
                smem_carveout_bytes=self.smem_carveout_bytes,
                size_label=self.size.label,
            ))
        return runs

    def run(self) -> ModeComparison:
        comparison = ModeComparison(workload=self.target.name,
                                    size=self.size.label)
        for mode in self.modes:
            comparison.add(self.run_mode(mode))
        return comparison


def run_workload(name: Union[str, Workload],
                 size: Union[str, SizeClass] = SizeClass.SUPER,
                 mode: TransferMode = TransferMode.STANDARD,
                 iterations: int = DEFAULT_ITERATIONS,
                 **kwargs) -> RunSet:
    """One-call convenience: a RunSet for one workload/size/mode."""
    if isinstance(size, str):
        size = SizeClass.from_label(size)
    experiment = Experiment(workload=name, size=size, modes=(mode,),
                            iterations=iterations, **kwargs)
    return experiment.run_mode(mode)


def compare_workload(name: Union[str, Workload],
                     size: Union[str, SizeClass] = SizeClass.SUPER,
                     iterations: int = DEFAULT_ITERATIONS,
                     **kwargs) -> ModeComparison:
    """One-call convenience: all five configurations compared."""
    if isinstance(size, str):
        size = SizeClass.from_label(size)
    experiment = Experiment(workload=name, size=size, iterations=iterations,
                            **kwargs)
    return experiment.run()
