"""The characterization framework: configurations, experiments, results."""

from .advisor import (Recommendation, check_carveout, check_input_size,
                      check_launch_geometry, recommend_mode)
from .configs import ALL_MODES, TransferMode
from .discussion import DiscussionSummary, ShareSummary, section6_shares
from .execution import execute_program, managed_capacity_ratio
from .multigpu import (MultiGpuResult, run_multi_gpu, scaling_study,
                       shard_program)
from .pipeline_model import BatchResult, interjob_speedup, run_job_batch
from .roofline import (Bottleneck, RooflinePoint, render_roofline,
                       roofline_point, suite_roofline)
from .experiment import (DEFAULT_ITERATIONS, Experiment, compare_workload,
                         run_workload)
from .results import ModeComparison, RunResult, RunSet
from .streaming import (StreamedResult, execute_program_streamed,
                        slice_descriptor)
from .stats import (SignificanceResult, Summary, coefficient_of_variation,
                    confidence_interval_95, geomean, improvement_pct, mean,
                    normalize_to, percentile, significantly_faster, speedup,
                    std)

__all__ = [
    "ALL_MODES", "BatchResult", "DEFAULT_ITERATIONS", "DiscussionSummary",
    "Experiment", "ModeComparison", "Recommendation", "RunResult", "RunSet",
    "ShareSummary", "Summary", "TransferMode", "check_carveout",
    "check_input_size", "check_launch_geometry", "coefficient_of_variation",
    "compare_workload", "confidence_interval_95", "execute_program",
    "geomean", "improvement_pct", "interjob_speedup", "mean",
    "normalize_to", "percentile", "recommend_mode", "run_job_batch",
    "run_workload", "section6_shares", "speedup", "std",
    "MultiGpuResult", "SignificanceResult", "managed_capacity_ratio",
    "run_multi_gpu", "scaling_study", "shard_program",
    "significantly_faster", "Bottleneck", "RooflinePoint",
    "render_roofline", "roofline_point", "suite_roofline",
    "StreamedResult", "execute_program_streamed", "slice_descriptor",
]
