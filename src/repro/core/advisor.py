"""Configuration advisor: the paper's takeaways as executable guidance.

The paper closes with design guidelines for CUDA programmers choosing
between the five data-transfer configurations (Takeaways 1-5 and the
Sec. 7 conclusions). :func:`recommend_mode` applies those rules to a
workload's program; :func:`check_input_size` applies Takeaway 1 to an
input-size choice; :func:`check_launch_geometry` and
:func:`check_carveout` apply Takeaways 4-5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..sim.calibration import default_calibration
from ..sim.hardware import GpuSpec, SystemSpec, default_system
from ..sim.kernel import AccessPattern, KernelDescriptor
from ..sim.program import Program
from ..sim.sm import FULL_UTILIZATION_THREADS, pipeline_fits
from ..sim.timing import ConfigFlags, simulate_kernel
from ..workloads.sizes import SizeClass
from .configs import TransferMode

GB = 1024 ** 3


@dataclass
class Recommendation:
    """A configuration choice plus the reasoning behind it."""

    mode: TransferMode
    reasons: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)

    def render(self) -> str:
        lines = [f"recommended configuration: {self.mode.value}"]
        lines += [f"  + {reason}" for reason in self.reasons]
        lines += [f"  ! {warning}" for warning in self.warnings]
        return "\n".join(lines)


def _dominant_kernel(program: Program) -> KernelDescriptor:
    return max(program.descriptors(),
               key=lambda d: d.load_bytes + d.compute_cycles)


def recommend_mode(program: Program,
                   system: Optional[SystemSpec] = None) -> Recommendation:
    """Pick a transfer configuration for a program (Sec. 7 guidelines)."""
    system = system or default_system()
    gpu = system.gpu
    descriptors = program.descriptors()
    dominant = _dominant_kernel(program)

    regular = dominant.access_pattern.prefetch_friendly
    irregular = dominant.access_pattern in (AccessPattern.IRREGULAR,
                                            AccessPattern.RANDOM)
    shares_data = any(d.shares_data_with_next for d in descriptors)
    gb_scale = program.footprint_bytes >= 1 * GB
    # Memory-bound: the modeled memory stage dominates the modeled
    # compute stage under the standard configuration.
    profile = simulate_kernel(dominant, ConfigFlags(), system,
                              default_calibration(),
                              smem_carveout_bytes=gpu.default_shared_mem_bytes,
                              resident_fraction=1.0)
    memory_bound = profile.load_ns > profile.compute_ns
    async_viable = (pipeline_fits(dominant, gpu,
                                  gpu.default_shared_mem_bytes)
                    and not dominant.async_serializes
                    and dominant.sync_overlap < 0.9)

    reasons: List[str] = []
    warnings: List[str] = []

    if shares_data:
        # nw case: prefetch displaces the shared working set.
        mode = TransferMode.UVM
        reasons.append("kernels share a working set: bulk prefetch would "
                       "displace it (the paper's nw anomaly) - use plain UVM")
        return Recommendation(mode, reasons, warnings)

    if irregular:
        reasons.append("irregular access: the UVM prefetcher cannot "
                       "predict the next touch (Takeaway 2)")
        if async_viable:
            reasons.append("cp.async staging overlaps loads and preserves "
                           "L1 locality (lud/kmeans gain ~20 % atop UVM)")
            mode = (TransferMode.UVM_PREFETCH_ASYNC if gb_scale
                    else TransferMode.ASYNC)
        else:
            mode = TransferMode.STANDARD
            warnings.append("async pipeline not viable (buffer capacity or "
                            "serialized staging); explicit copies win")
        return Recommendation(mode, reasons, warnings)

    if not gb_scale:
        reasons.append("small footprint: allocation overhead dominates and "
                       "transfer optimizations cannot pay off")
        return Recommendation(TransferMode.STANDARD, reasons, warnings)

    if regular and memory_bound:
        reasons.append("GB-scale, memory-bound, regular access: UVM with "
                       "prefetch recovers transfer time (Takeaway 2)")
        if async_viable:
            reasons.append("staging-bound kernel: add Async Memcpy to "
                           "overlap global->shared copies")
            return Recommendation(TransferMode.UVM_PREFETCH_ASYNC, reasons,
                                  warnings)
        warnings.append("kernel is already software-pipelined or cannot "
                        "double-buffer: cp.async would only add control "
                        "instructions (gemm/yolov3 case)")
        return Recommendation(TransferMode.UVM_PREFETCH, reasons, warnings)

    reasons.append("compute-bound kernel: transfer configuration moves "
                   "little; prefetch still trims memcpy time")
    if not async_viable:
        warnings.append("cp.async control overhead would slow this kernel "
                        "(+146 % on 2DCONV-style staging)")
    return Recommendation(TransferMode.UVM_PREFETCH, reasons, warnings)


def check_input_size(size: SizeClass,
                     system: Optional[SystemSpec] = None) -> List[str]:
    """Takeaway 1: pick sizes large enough to amortize overhead but
    clear of single-DRAM-chip capacity."""
    system = system or default_system()
    notes: List[str] = []
    if size in (SizeClass.TINY, SizeClass.SMALL, SizeClass.MEDIUM):
        notes.append(
            f"{size.label}: constant system overhead dominates; run-to-run "
            "variance will be high (Fig. 5)")
    ratio = size.mem_bytes / system.cpu.dram_chip_bytes
    if ratio > 0.35:
        notes.append(
            f"{size.label}: footprint is {ratio:.0%} of one DRAM chip; host "
            "placement may spill across chips and destabilize memcpy time "
            "(Fig. 6)")
    if not notes:
        notes.append(f"{size.label}: stable choice (Large/Super band)")
    return notes


def check_launch_geometry(desc: KernelDescriptor,
                          gpu: Optional[GpuSpec] = None) -> List[str]:
    """Takeaway 4: blocks barely matter; threads/block matter a lot."""
    gpu = gpu or default_system().gpu
    notes: List[str] = []
    if desc.threads_per_block < FULL_UTILIZATION_THREADS:
        notes.append(
            f"{desc.threads_per_block} threads/block underutilizes the SM "
            f"(needs >= {FULL_UTILIZATION_THREADS}); expect multi-x kernel "
            "slowdown (Fig. 12) - though Async Memcpy recovers part of it "
            "through deeper per-thread buffers")
    if desc.blocks < gpu.sm_count:
        notes.append(
            f"only {desc.blocks} blocks for {gpu.sm_count} SMs: some SMs "
            "idle (block count otherwise barely matters, Fig. 11)")
    if not notes:
        notes.append("launch geometry is in the insensitive band (Fig. 11)")
    return notes


def check_carveout(desc: KernelDescriptor, smem_carveout_bytes: int,
                   mode: TransferMode,
                   gpu: Optional[GpuSpec] = None) -> List[str]:
    """Takeaway 5: carveout extremes hurt async (too small) or UVM
    (too large)."""
    gpu = gpu or default_system().gpu
    notes: List[str] = []
    if mode.uses_async and not pipeline_fits(desc, gpu, smem_carveout_bytes):
        notes.append(
            "shared-memory carveout too small for the double buffer: "
            "cp.async degenerates to overhead-only (Takeaway 5)")
    l1_reference = gpu.l1_bytes(gpu.default_shared_mem_bytes)
    if mode.managed and gpu.l1_bytes(smem_carveout_bytes) < l1_reference // 2:
        notes.append(
            "carveout leaves too little L1: UVM prefetch streams will "
            "evict demand lines (Takeaway 5)")
    if not notes:
        notes.append("carveout is in the balanced band")
    return notes
