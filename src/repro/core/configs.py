"""The five data-transfer configurations under study (Sec. 3.1.3).

Each :class:`TransferMode` value decides three orthogonal properties:
how memory is allocated (explicit vs managed), whether a bulk prefetch
precedes the kernels, and whether kernels use the cp.async
global-to-shared pipeline.
"""

from __future__ import annotations

import enum

from ..sim.timing import ConfigFlags


class TransferMode(enum.Enum):
    """CUDA programming configurations compared throughout the paper."""

    STANDARD = "standard"
    ASYNC = "async"
    UVM = "uvm"
    UVM_PREFETCH = "uvm_prefetch"
    UVM_PREFETCH_ASYNC = "uvm_prefetch_async"

    @property
    def managed(self) -> bool:
        """Uses cudaMallocManaged (unified virtual memory)."""
        return self in (TransferMode.UVM, TransferMode.UVM_PREFETCH,
                        TransferMode.UVM_PREFETCH_ASYNC)

    @property
    def prefetch(self) -> bool:
        """Issues cudaMemPrefetchAsync before the kernels."""
        return self in (TransferMode.UVM_PREFETCH,
                        TransferMode.UVM_PREFETCH_ASYNC)

    @property
    def uses_async(self) -> bool:
        """Kernels stage global->shared data with cp.async."""
        return self in (TransferMode.ASYNC, TransferMode.UVM_PREFETCH_ASYNC)

    @property
    def label(self) -> str:
        return self.value

    def kernel_flags(self) -> ConfigFlags:
        """The per-kernel execution flags this mode implies."""
        return ConfigFlags(use_async=self.uses_async, managed=self.managed,
                           prefetched=self.prefetch)

    @classmethod
    def from_label(cls, label: str) -> "TransferMode":
        for mode in cls:
            if mode.value == label:
                return mode
        raise ValueError(
            f"unknown transfer mode {label!r}; expected one of "
            f"{[m.value for m in cls]}"
        )


ALL_MODES = tuple(TransferMode)
