"""Multi-GPU scaling extension.

Sec. 2.1 notes that UVM lets applications "easily leverage the combined
memory resources of multiple GPUs". This module extends the simulator
in that direction: a program's grid and buffers are sharded across N
devices, each with its own PCIe link and SM array, all fed by the one
host allocator thread. Useful for studying how the five transfer
configurations scale when the transfer pipeline is replicated.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..sim.calibration import Calibration, default_calibration
from ..sim.engine import Environment, Resource
from ..sim.hardware import SystemSpec, default_system
from ..sim.kernel import KernelDescriptor
from ..sim.program import BufferSpec, KernelPhase, Program
from ..sim.runtime import CudaRuntime
from .configs import TransferMode
from .execution import _explicit_process, _managed_process


def shard_descriptor(desc: KernelDescriptor, gpus: int) -> KernelDescriptor:
    """One device's 1/N share of a kernel launch.

    Blocks (and hence traffic, compute, and footprint) divide across
    devices; per-block behaviour is unchanged.
    """
    if gpus < 1:
        raise ValueError("gpus must be >= 1")
    blocks = max(1, math.ceil(desc.blocks / gpus))
    share = blocks / desc.blocks
    footprint = (None if desc.data_footprint_bytes is None
                 else max(1, int(desc.data_footprint_bytes * share)))
    return dataclasses.replace(
        desc,
        blocks=blocks,
        write_bytes=max(0, int(desc.write_bytes * share)),
        data_footprint_bytes=footprint,
    )


def shard_program(program: Program, gpus: int, shard: int) -> Program:
    """The sub-program one device executes."""
    if not 0 <= shard < gpus:
        raise ValueError(f"shard {shard} outside [0, {gpus})")
    buffers = tuple(
        dataclasses.replace(buf,
                            size_bytes=max(1, buf.size_bytes // gpus))
        for buf in program.buffers
    )
    phases = tuple(
        KernelPhase(shard_descriptor(phase.descriptor, gpus),
                    count=phase.count, fresh_data=phase.fresh_data,
                    host_sync_bytes=phase.host_sync_bytes // gpus)
        for phase in program.phases
    )
    return Program(name=f"{program.name}@gpu{shard}", buffers=buffers,
                   phases=phases)


@dataclass
class MultiGpuResult:
    """Outcome of one sharded run."""

    mode: TransferMode
    gpus: int
    wall_ns: float
    per_gpu_totals_ns: List[float] = field(default_factory=list)

    @property
    def max_gpu_total_ns(self) -> float:
        return max(self.per_gpu_totals_ns)


def run_multi_gpu(program: Program, mode: TransferMode, gpus: int = 2,
                  system: Optional[SystemSpec] = None,
                  calib: Optional[Calibration] = None,
                  seed: int = 0) -> MultiGpuResult:
    """Execute a program sharded across ``gpus`` devices concurrently.

    Each device has its own link and SM array; the host allocator
    thread is shared (allocations serialize on the CPU, which is what
    limits scaling for allocation-heavy configurations).
    """
    if gpus < 1:
        raise ValueError("gpus must be >= 1")
    system = system or default_system()
    calib = calib or default_calibration()
    env = Environment()
    host_cpu = Resource(env, capacity=1, name="host_cpu")

    runtimes: List[CudaRuntime] = []
    for shard in range(gpus):
        rng = np.random.default_rng(
            np.random.SeedSequence([seed, shard]))
        sub_program = shard_program(program, gpus, shard)
        rt = CudaRuntime(system, calib, rng,
                         footprint_bytes=sub_program.footprint_bytes,
                         env=env, host_cpu=host_cpu)
        if mode.managed:
            process = _managed_process(rt, sub_program, mode)
        else:
            process = _explicit_process(rt, sub_program, mode)
        env.process(process, name=f"gpu{shard}")
        runtimes.append(rt)

    env.run()
    per_gpu = [sum(rt.timeline.breakdown().values()) for rt in runtimes]
    wall = max((rt.timeline.span()[1] for rt in runtimes
                if rt.timeline.events), default=0.0)
    return MultiGpuResult(mode=mode, gpus=gpus, wall_ns=wall,
                          per_gpu_totals_ns=per_gpu)


def scaling_study(program: Program, mode: TransferMode,
                  gpu_counts=(1, 2, 4, 8),
                  system: Optional[SystemSpec] = None,
                  calib: Optional[Calibration] = None,
                  seed: int = 0) -> Dict[int, Dict[str, float]]:
    """Wall time and scaling efficiency across device counts."""
    results = {count: run_multi_gpu(program, mode, count, system=system,
                                    calib=calib, seed=seed)
               for count in gpu_counts}
    baseline = results[gpu_counts[0]].wall_ns * gpu_counts[0]
    return {
        count: {
            "wall_ns": result.wall_ns,
            "speedup": results[gpu_counts[0]].wall_ns / result.wall_ns,
            "efficiency": baseline / (count * result.wall_ns),
        }
        for count, result in results.items()
    }
