"""Statistics helpers used throughout the study.

The paper reports means of 30 runs, std/mean stability ratios
(Fig. 5), geometric means across workloads, and percentage
improvements over the standard configuration; these helpers implement
exactly those aggregations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean."""
    values = list(values)
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def std(values: Sequence[float]) -> float:
    """Sample standard deviation (ddof=1, matching the paper's 30-run plots)."""
    values = list(values)
    if len(values) < 2:
        return 0.0
    center = mean(values)
    return math.sqrt(sum((v - center) ** 2 for v in values) / (len(values) - 1))


def coefficient_of_variation(values: Sequence[float]) -> float:
    """std / mean - the stability metric of Fig. 5."""
    center = mean(values)
    if center == 0:
        raise ValueError("coefficient of variation undefined for zero mean")
    return std(values) / center


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (the paper's cross-workload aggregate)."""
    values = list(values)
    if not values:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile, q in [0, 100]."""
    if not 0.0 <= q <= 100.0:
        raise ValueError("percentile q outside [0, 100]")
    ordered = sorted(values)
    if not ordered:
        raise ValueError("percentile of empty sequence")
    if len(ordered) == 1:
        return ordered[0]
    position = (len(ordered) - 1) * q / 100.0
    low = int(math.floor(position))
    high = int(math.ceil(position))
    if low == high:
        return ordered[low]
    weight = position - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight


def speedup(baseline: float, candidate: float) -> float:
    """How many times faster ``candidate`` is than ``baseline``."""
    if candidate <= 0:
        raise ValueError("candidate time must be positive")
    return baseline / candidate


def improvement_pct(baseline: float, candidate: float) -> float:
    """Percent time saved vs the baseline (negative = slower)."""
    if baseline <= 0:
        raise ValueError("baseline time must be positive")
    return (baseline - candidate) / baseline * 100.0


def confidence_interval_95(values: Sequence[float]) -> Tuple[float, float]:
    """Normal-approximation 95 % CI of the mean."""
    center = mean(values)
    if len(values) < 2:
        return (center, center)
    half = 1.96 * std(values) / math.sqrt(len(values))
    return (center - half, center + half)


@dataclass(frozen=True)
class Summary:
    """Five-number summary of a run distribution."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    p50: float

    @classmethod
    def of(cls, values: Sequence[float]) -> "Summary":
        values = list(values)
        if not values:
            raise ValueError("summary of empty sequence")
        return cls(
            count=len(values),
            mean=mean(values),
            std=std(values),
            minimum=min(values),
            maximum=max(values),
            p50=percentile(values, 50.0),
        )

    @property
    def cv(self) -> float:
        return self.std / self.mean if self.mean else 0.0


def normalize_to(baseline: float, values: Iterable[float]) -> List[float]:
    """Express values as multiples of a baseline (the paper's bar charts)."""
    if baseline <= 0:
        raise ValueError("baseline must be positive")
    return [v / baseline for v in values]


@dataclass(frozen=True)
class SignificanceResult:
    """Outcome of a two-sample comparison between run distributions."""

    faster: bool           # candidate's median beats the baseline's
    significant: bool      # at the requested alpha
    p_value: float
    median_baseline: float
    median_candidate: float

    @property
    def median_speedup(self) -> float:
        return self.median_baseline / self.median_candidate


def significantly_faster(baseline: Sequence[float],
                         candidate: Sequence[float],
                         alpha: float = 0.05) -> SignificanceResult:
    """Is ``candidate`` reliably faster than ``baseline``?

    Uses the one-sided Mann-Whitney U test (run-time distributions are
    skewed, so a rank test beats a t-test here). With fewer than 3
    samples per side the comparison falls back to medians with
    ``significant=False``.
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError("alpha must be in (0, 1)")
    baseline = list(baseline)
    candidate = list(candidate)
    if not baseline or not candidate:
        raise ValueError("both samples must be non-empty")
    median_b = percentile(baseline, 50.0)
    median_c = percentile(candidate, 50.0)
    if len(baseline) < 3 or len(candidate) < 3:
        return SignificanceResult(
            faster=median_c < median_b, significant=False, p_value=1.0,
            median_baseline=median_b, median_candidate=median_c)
    from scipy import stats as scipy_stats
    outcome = scipy_stats.mannwhitneyu(candidate, baseline,
                                       alternative="less")
    return SignificanceResult(
        faster=median_c < median_b,
        significant=bool(outcome.pvalue < alpha),
        p_value=float(outcome.pvalue),
        median_baseline=median_b,
        median_candidate=median_c,
    )
