"""The hand-tuned streaming baseline: chunked copies + multi-stream overlap.

Before UVM and cp.async, programmers overlapped CPU-GPU transfer and
computation explicitly (the paper's references [8, 11]): split the
input into chunks, issue ``cudaMemcpyAsync`` per chunk on one stream,
and launch the kernel slice for chunk *i* as soon as its copy lands.
This module implements that pattern on the simulator so it can be
compared against the paper's five configurations - the "how much of
UVM-prefetch's win could a diligent programmer already get?" question.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..sim.calibration import Calibration, default_calibration
from ..sim.hardware import SystemSpec, default_system
from ..sim.kernel import KernelDescriptor
from ..sim.pcie import TransferKind
from ..sim.program import BufferDirection, Program
from ..sim.runtime import CudaRuntime
from ..sim.streams import CudaStream, device_synchronize
from ..sim.timing import ConfigFlags


@dataclass(frozen=True)
class StreamedResult:
    """Outcome of one chunked multi-stream run."""

    workload: str
    chunks: int
    alloc_ns: float
    memcpy_ns: float
    kernel_ns: float
    wall_ns: float

    @property
    def total_ns(self) -> float:
        """Paper-style sum-of-components accounting."""
        return self.alloc_ns + self.memcpy_ns + self.kernel_ns

    def breakdown(self) -> Dict[str, float]:
        return {"gpu_kernel": self.kernel_ns, "memcpy": self.memcpy_ns,
                "allocation": self.alloc_ns}


def slice_descriptor(desc: KernelDescriptor, chunks: int) -> KernelDescriptor:
    """The kernel launch covering one chunk's share of the grid."""
    if chunks < 1:
        raise ValueError("chunks must be >= 1")
    blocks = max(1, math.ceil(desc.blocks / chunks))
    share = blocks / desc.blocks
    footprint = (None if desc.data_footprint_bytes is None
                 else max(1, int(desc.data_footprint_bytes * share)))
    return dataclasses.replace(
        desc,
        blocks=blocks,
        write_bytes=max(0, int(desc.write_bytes * share)),
        data_footprint_bytes=footprint,
    )


def _streamed_process(rt: CudaRuntime, program: Program, chunks: int,
                      use_async: bool, pinned: bool):
    """allocate -> {per chunk: copy on stream0, kernel on stream1} -> drain."""
    flags = ConfigFlags(use_async=use_async)
    copy_stream = CudaStream(rt, "copy")
    compute_stream = CudaStream(rt, "compute")
    h2d_kind = TransferKind.H2D_PINNED if pinned else TransferKind.H2D
    d2h_kind = TransferKind.D2H_PINNED if pinned else TransferKind.D2H

    for buf in program.buffers:
        if buf.direction is not BufferDirection.SCRATCH:
            # cudaMemcpyAsync requires page-locked host memory.
            yield from rt.malloc_host(buf.name, buf.size_bytes,
                                      pinned=pinned)
    for buf in program.buffers:
        yield from rt.malloc_device(buf.name, buf.size_bytes)

    h2d_chunk = max(1, program.h2d_bytes // chunks)
    for phase in program.phases:
        kernel_slice = slice_descriptor(phase.descriptor, chunks)
        for _repeat in range(phase.count):
            for chunk in range(chunks):
                # Per-chunk buffer tokens: chunk i's copy and kernel
                # touch a disjoint slice, so the stream checker must
                # not see chunk j's kernel as racing with chunk i's
                # copy (only the matching pair shares a token, and that
                # pair is ordered by the `after=` event edge).
                token = f"{program.name}[chunk{chunk}]"
                copy = copy_stream.enqueue(
                    rt._transfer(f"chunk{chunk} H2D", h2d_kind,
                                 h2d_chunk),
                    label=f"chunk{chunk}:H2D", kind="copy",
                    writes=(token,))
                compute_stream.enqueue(
                    rt.launch(kernel_slice, flags, resident_fraction=1.0),
                    after=copy,
                    label=f"chunk{chunk}:{kernel_slice.name}",
                    kind="kernel", reads=(token,))
        yield from device_synchronize(rt, copy_stream, compute_stream)
        if phase.host_sync_bytes:
            yield from rt.memcpy_d2h(f"{phase.descriptor.name}:sync",
                                     phase.host_sync_bytes)

    for buf in program.buffers:
        if buf.direction.device_to_host:
            yield from rt._transfer(f"cudaMemcpy D2H:{buf.name}", d2h_kind,
                                    buf.size_bytes)
    for buf in program.buffers:
        yield from rt.free(buf.name, buf.size_bytes)


def execute_program_streamed(program: Program, *, chunks: int = 4,
                             use_async: bool = False,
                             pinned: bool = True,
                             system: Optional[SystemSpec] = None,
                             calib: Optional[Calibration] = None,
                             rng: Optional[np.random.Generator] = None,
                             seed: int = 0) -> StreamedResult:
    """Run a program with the explicit chunked-overlap pattern.

    Only the *first* phase's H2D copies overlap meaningfully (later
    phases find their data resident, as in the explicit baseline);
    kernels of chunk i start as soon as chunk i's copy completes.
    """
    if chunks < 1:
        raise ValueError("chunks must be >= 1")
    system = system or default_system()
    calib = calib or default_calibration()
    rng = rng if rng is not None else np.random.default_rng(seed)
    rt = CudaRuntime(system, calib, rng,
                     footprint_bytes=program.footprint_bytes)
    rt.run(_streamed_process(rt, program, chunks, use_async, pinned))
    timeline = rt.timeline
    return StreamedResult(
        workload=program.name,
        chunks=chunks,
        alloc_ns=timeline.category_time("allocation"),
        memcpy_ns=timeline.category_time("memcpy"),
        kernel_ns=timeline.category_time("gpu_kernel"),
        wall_ns=timeline.wall_ns(),
    )
