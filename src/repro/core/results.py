"""Result containers for runs and run distributions.

A :class:`RunResult` is one execution of one workload under one
configuration; a :class:`RunSet` is the 30-run distribution the paper
plots. Both expose the paper's accounting: overall time is the *sum*
of allocation, memcpy, and GPU-kernel time (Sec. 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..sim.counters import CounterReport
from .configs import TransferMode
from .stats import Summary, coefficient_of_variation, mean

BREAKDOWN_KEYS = ("gpu_kernel", "memcpy", "allocation")


@dataclass(frozen=True)
class RunResult:
    """One measured run of one workload under one configuration."""

    workload: str
    mode: TransferMode
    size: str
    seed: int
    alloc_ns: float
    memcpy_ns: float
    kernel_ns: float
    wall_ns: float
    counters: CounterReport
    occupancy: float = 0.0
    gpu_busy_fraction: float = 0.0

    def __post_init__(self) -> None:
        for name in ("alloc_ns", "memcpy_ns", "kernel_ns", "wall_ns"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")

    @classmethod
    def replayed(cls, fields: Dict[str, object]) -> "RunResult":
        """Construct from already-validated fields (batch-replay path).

        The frozen-dataclass ``__init__`` pays one guarded
        ``object.__setattr__`` per field plus the ``__post_init__``
        range checks — an order of magnitude more than the arithmetic
        a vectorized replay spends per run.  Batched replays validate
        the same invariants out-of-band (the caller range-checks the
        timing fields before calling), so this path installs the field
        dict directly.  ``fields`` must contain exactly the dataclass
        fields; it is adopted, not copied.
        """
        self = object.__new__(cls)
        self.__dict__.update(fields)
        return self

    @property
    def total_ns(self) -> float:
        """Paper-style overall execution time: sum of the components."""
        return self.alloc_ns + self.memcpy_ns + self.kernel_ns

    def breakdown(self) -> Dict[str, float]:
        return {
            "gpu_kernel": self.kernel_ns,
            "memcpy": self.memcpy_ns,
            "allocation": self.alloc_ns,
        }

    def share(self, component: str) -> float:
        """Fraction of overall time spent in one component."""
        value = self.breakdown()[component]
        total = self.total_ns
        return value / total if total else 0.0


@dataclass
class RunSet:
    """The distribution of repeated runs (the paper uses 30)."""

    workload: str
    mode: TransferMode
    size: str
    runs: List[RunResult] = field(default_factory=list)

    def add(self, run: RunResult) -> None:
        if run.workload != self.workload or run.mode != self.mode:
            raise ValueError("run does not belong to this RunSet")
        self.runs.append(run)

    def __len__(self) -> int:
        return len(self.runs)

    def totals(self) -> List[float]:
        return [run.total_ns for run in self.runs]

    def mean_total_ns(self) -> float:
        return mean(self.totals())

    def cv(self) -> float:
        """std / mean of overall time (Fig. 5's stability metric)."""
        return coefficient_of_variation(self.totals())

    def summary(self) -> Summary:
        return Summary.of(self.totals())

    def mean_breakdown(self) -> Dict[str, float]:
        if not self.runs:
            raise ValueError("empty RunSet")
        return {
            key: mean([run.breakdown()[key] for run in self.runs])
            for key in BREAKDOWN_KEYS
        }

    def mean_component(self, component: str) -> float:
        return self.mean_breakdown()[component]

    def mean_occupancy(self) -> float:
        if not self.runs:
            raise ValueError("empty RunSet")
        return mean([run.occupancy for run in self.runs])

    def mean_gpu_busy(self) -> float:
        if not self.runs:
            raise ValueError("empty RunSet")
        return mean([run.gpu_busy_fraction for run in self.runs])

    def representative_counters(self) -> CounterReport:
        """Counters are deterministic across runs; return the first."""
        if not self.runs:
            raise ValueError("empty RunSet")
        return self.runs[0].counters


@dataclass
class ModeComparison:
    """All five configurations of one workload at one size (one bar group)."""

    workload: str
    size: str
    by_mode: Dict[TransferMode, RunSet] = field(default_factory=dict)

    def add(self, runs: RunSet) -> None:
        self.by_mode[runs.mode] = runs

    def baseline(self) -> RunSet:
        try:
            return self.by_mode[TransferMode.STANDARD]
        except KeyError:
            raise ValueError("comparison lacks the standard baseline") from None

    def normalized_total(self, mode: TransferMode) -> float:
        """Mean overall time as a multiple of standard (Figs. 7/8)."""
        return self.by_mode[mode].mean_total_ns() / self.baseline().mean_total_ns()

    def normalized_breakdown(self, mode: TransferMode) -> Dict[str, float]:
        base_total = self.baseline().mean_total_ns()
        return {key: value / base_total
                for key, value in self.by_mode[mode].mean_breakdown().items()}

    def improvement_pct(self, mode: TransferMode) -> float:
        """Percent overall-time saving of ``mode`` vs standard."""
        return (1.0 - self.normalized_total(mode)) * 100.0

    def component_saving_pct(self, mode: TransferMode, component: str) -> float:
        base = self.baseline().mean_component(component)
        if base <= 0:
            return 0.0
        return (base - self.by_mode[mode].mean_component(component)) / base * 100.0

    def modes(self) -> Sequence[TransferMode]:
        return tuple(self.by_mode)
