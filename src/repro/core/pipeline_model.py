"""The inter-job data-transfer model of Section 6 (Fig. 14).

The paper observes that after UVM + Async Memcpy optimize the transfer
pipeline, *allocation* dominates and the GPU still idles most of the
time - and proposes overlapping jobs: while job 1's kernel runs on the
GPU, job 2 performs its (CPU-side) allocation; when job 1's kernel
finishes, job 2 launches while job 1 deallocates.

:func:`run_job_batch` executes a batch of identical jobs on one shared
simulated machine either back-to-back (today's model, Fig. 14 top) or
pipelined (the proposed model, Fig. 14 bottom). Resource correctness
is enforced by the simulator: one host allocator thread, FIFO PCIe
copy engines, one GPU compute queue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..sim.calibration import Calibration, default_calibration
from ..sim.engine import Event
from ..sim.hardware import SystemSpec, default_system
from ..sim.program import BufferDirection, Program
from ..sim.runtime import CudaRuntime
from .configs import TransferMode


@dataclass
class BatchResult:
    """Outcome of one job batch."""

    mode: TransferMode
    jobs: int
    overlapped: bool
    wall_ns: float
    breakdown: Dict[str, float]

    @property
    def mean_job_ns(self) -> float:
        return self.wall_ns / self.jobs


def _job_process(rt: CudaRuntime, program: Program, mode: TransferMode,
                 job_id: int, gate: Optional[Event],
                 kernel_started: Event):
    """One job: allocate, stage, compute, drain, free."""
    if gate is not None:
        yield gate
    flags = mode.kernel_flags()
    suffix = f"#{job_id}"

    if mode.managed:
        for buf in program.buffers:
            yield from rt.malloc_managed(
                buf.name + suffix, buf.size_bytes,
                host_populated=buf.direction.host_to_device)
        if mode.prefetch:
            for buf in program.buffers:
                if buf.direction.host_to_device:
                    yield from rt.uvm_prefetch(
                        buf.name + suffix,
                        fraction=buf.device_touched_fraction)
    else:
        for buf in program.buffers:
            if buf.direction is not BufferDirection.SCRATCH:
                yield from rt.malloc_host(buf.name + suffix, buf.size_bytes)
        for buf in program.buffers:
            yield from rt.malloc_device(buf.name + suffix, buf.size_bytes)
        for buf in program.buffers:
            if buf.direction.host_to_device:
                yield from rt.memcpy_h2d(buf.name + suffix, buf.size_bytes)

    if not kernel_started.triggered:
        kernel_started.succeed()

    first_touch = True
    for phase in program.phases:
        if mode.managed:
            resident_first = 1.0 if (mode.prefetch or not first_touch) else 0.0
            resident_rest = 0.0 if (phase.fresh_data and not mode.prefetch) \
                else 1.0
        else:
            resident_first = resident_rest = 1.0
        yield from rt.launch_repeated(phase.descriptor, flags, phase.count,
                                      resident_first=resident_first,
                                      resident_rest=resident_rest)
        first_touch = False
        if not mode.managed and phase.host_sync_bytes:
            yield from rt.memcpy_d2h(
                f"{phase.descriptor.name}{suffix}:sync",
                phase.host_sync_bytes)

    for buf in program.buffers:
        if buf.direction.device_to_host:
            if mode.managed:
                rt.managed.device_wrote(buf.name + suffix, fraction=1.0)
                yield from rt.uvm_host_read(buf.name + suffix,
                                            buf.host_read_fraction)
            else:
                yield from rt.memcpy_d2h(buf.name + suffix, buf.size_bytes)
    for buf in program.buffers:
        yield from rt.free(buf.name + suffix, buf.size_bytes,
                           managed=mode.managed)


def run_job_batch(program: Program, mode: TransferMode, jobs: int = 4,
                  overlapped: bool = False,
                  system: Optional[SystemSpec] = None,
                  calib: Optional[Calibration] = None,
                  seed: int = 0) -> BatchResult:
    """Execute ``jobs`` identical jobs; return wall time and breakdown.

    ``overlapped=False``: each job starts when its predecessor has fully
    completed (Fig. 14 top). ``overlapped=True``: each job starts its
    allocation as soon as the predecessor's first kernel is on the GPU
    (Fig. 14 bottom).
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    system = system or default_system()
    calib = calib or default_calibration()
    rng = np.random.default_rng(seed)
    rt = CudaRuntime(system, calib, rng,
                     footprint_bytes=program.footprint_bytes)

    processes: List = []
    previous_done: Optional[Event] = None
    previous_kernel_started: Optional[Event] = None
    for job_id in range(jobs):
        gate = (previous_kernel_started if overlapped else previous_done)
        kernel_started = rt.env.event(name=f"job{job_id}:kernel_started")
        process = rt.env.process(
            _job_process(rt, program, mode, job_id, gate, kernel_started),
            name=f"job{job_id}")
        processes.append(process)
        previous_done = process
        previous_kernel_started = kernel_started

    rt.env.run()
    for process in processes:
        if not process.processed:
            raise RuntimeError("job batch deadlocked")
    return BatchResult(
        mode=mode,
        jobs=jobs,
        overlapped=overlapped,
        wall_ns=rt.timeline.wall_ns(),
        breakdown=rt.breakdown(),
    )


def interjob_speedup(program: Program, mode: TransferMode, jobs: int = 4,
                     system: Optional[SystemSpec] = None,
                     calib: Optional[Calibration] = None,
                     seed: int = 0) -> Dict[str, float]:
    """Fig. 14 headline: wall-time gain of the proposed model."""
    sequential = run_job_batch(program, mode, jobs, overlapped=False,
                               system=system, calib=calib, seed=seed)
    pipelined = run_job_batch(program, mode, jobs, overlapped=True,
                              system=system, calib=calib, seed=seed)
    return {
        "sequential_wall_ns": sequential.wall_ns,
        "pipelined_wall_ns": pipelined.wall_ns,
        "speedup": sequential.wall_ns / pipelined.wall_ns,
        "improvement_pct": (1.0 - pipelined.wall_ns / sequential.wall_ns)
        * 100.0,
    }
