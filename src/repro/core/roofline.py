"""Roofline classification of the benchmark suite.

The paper's guidance hinges on whether a workload is bottlenecked by
CPU-DRAM -> global-memory transfer, global -> shared-memory staging, or
compute (Sec. 1's questions (a)-(c)). This module computes, per
workload, the modeled arithmetic intensity and the three candidate
bottleneck times, and names the binding stage - the quantitative
backing for the advisor's choices.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..sim.calibration import Calibration, default_calibration
from ..sim.hardware import SystemSpec, default_system
from ..sim.pcie import PcieLink, TransferKind
from ..sim.engine import Environment
from ..sim.program import Program
from ..sim.timing import ConfigFlags, simulate_kernel
from ..workloads.registry import all_workloads
from ..workloads.sizes import SizeClass
from .configs import TransferMode


class Bottleneck(enum.Enum):
    """The pipeline stage that binds a workload end-to-end."""

    HOST_TRANSFER = "host_transfer"    # U1: CPU DRAM -> global memory
    STAGING = "staging"                # A2.1: global -> shared memory
    COMPUTE = "compute"                # A2.2 + math
    ALLOCATION = "allocation"          # cudaMalloc/cudaFree


@dataclass(frozen=True)
class RooflinePoint:
    """One workload's position against the machine's rooflines."""

    workload: str
    arithmetic_intensity: float    # useful flops per staged byte
    host_transfer_ns: float
    staging_ns: float
    compute_ns: float
    allocation_ns: float
    bottleneck: Bottleneck

    @property
    def total_ns(self) -> float:
        # Host transfer and staging overlap at best; the dominant
        # transfer term plus compute bounds the optimized pipeline.
        return max(self.host_transfer_ns, self.staging_ns,
                   self.compute_ns) + self.allocation_ns

    def recommendation_hint(self) -> str:
        return {
            Bottleneck.HOST_TRANSFER:
                "bound by CPU-GPU transfer: UVM prefetch attacks this "
                "stage (U1)",
            Bottleneck.STAGING:
                "bound by global->shared staging: Async Memcpy attacks "
                "this stage (A2.1)",
            Bottleneck.COMPUTE:
                "compute-bound: transfer configuration moves little",
            Bottleneck.ALLOCATION:
                "allocation-bound: only the Sec. 6 inter-job pipeline "
                "helps",
        }[self.bottleneck]


def roofline_point(program: Program,
                   system: Optional[SystemSpec] = None,
                   calib: Optional[Calibration] = None) -> RooflinePoint:
    """Classify one program against the pipeline-stage rooflines."""
    system = system or default_system()
    calib = calib or default_calibration()

    link = PcieLink(Environment(), system, calib)
    host_ns = (link.duration_ns(TransferKind.H2D, program.h2d_bytes)
               + link.duration_ns(TransferKind.D2H, program.d2h_bytes))

    staging_ns = 0.0
    compute_ns = 0.0
    flops = 0.0
    staged_bytes = 0.0
    for phase in program.phases:
        execution = simulate_kernel(
            phase.descriptor, ConfigFlags(), system, calib,
            smem_carveout_bytes=system.gpu.default_shared_mem_bytes,
            resident_fraction=1.0)
        staging_ns += execution.load_ns * phase.count
        compute_ns += execution.compute_ns * phase.count
        flops += phase.descriptor.compute_cycles * 128.0 * phase.count
        staged_bytes += phase.descriptor.load_bytes * phase.count

    alloc = calib.alloc
    allocation_ns = sum(
        alloc.device_base_ns + alloc.device_per_byte_ns * buf.size_bytes
        + alloc.free_base_ns + alloc.free_per_byte_ns * buf.size_bytes
        for buf in program.buffers)

    stages = {
        Bottleneck.HOST_TRANSFER: host_ns,
        Bottleneck.STAGING: staging_ns,
        Bottleneck.COMPUTE: compute_ns,
        Bottleneck.ALLOCATION: allocation_ns,
    }
    bottleneck = max(stages, key=stages.get)
    return RooflinePoint(
        workload=program.name,
        arithmetic_intensity=flops / max(staged_bytes, 1.0),
        host_transfer_ns=host_ns,
        staging_ns=staging_ns,
        compute_ns=compute_ns,
        allocation_ns=allocation_ns,
        bottleneck=bottleneck,
    )


def suite_roofline(size: SizeClass = SizeClass.SUPER,
                   names: Optional[Sequence[str]] = None,
                   system: Optional[SystemSpec] = None,
                   calib: Optional[Calibration] = None
                   ) -> Dict[str, RooflinePoint]:
    """Roofline points for (a subset of) the whole suite."""
    workloads = all_workloads()
    if names is not None:
        wanted = set(names)
        workloads = [w for w in workloads if w.name in wanted]
    return {
        workload.name: roofline_point(workload.program(size),
                                      system=system, calib=calib)
        for workload in workloads
    }


def render_roofline(points: Dict[str, RooflinePoint]) -> str:
    """ASCII table of roofline points with their binding stages."""
    from ..harness.report import render_table
    rows = []
    for name, point in points.items():
        rows.append((
            name,
            f"{point.arithmetic_intensity:.2f}",
            f"{point.host_transfer_ns / 1e6:.1f}",
            f"{point.staging_ns / 1e6:.1f}",
            f"{point.compute_ns / 1e6:.1f}",
            f"{point.allocation_ns / 1e6:.1f}",
            point.bottleneck.value,
        ))
    return render_table(
        ("workload", "flops/byte", "host xfer (ms)", "staging (ms)",
         "compute (ms)", "allocation (ms)", "bottleneck"), rows,
        title="Pipeline-stage roofline (Sec. 1 questions a-c)")
