"""repro: reproduction of "Performance Implications of Async Memcpy and
UVM: A Tale of Two Data Transfer Modes" (IISWC 2023).

The package has four layers:

* :mod:`repro.sim` - a discrete-event simulator of the CPU-GPU
  heterogeneous system (the substitute for the paper's A100 testbed).
* :mod:`repro.workloads` - the 21-benchmark suite of Table 2, each with
  a functional NumPy implementation and a kernel characterization.
* :mod:`repro.core` - the study framework: the five transfer
  configurations, experiment runner, statistics, the Sec. 6 inter-job
  pipeline model, and the configuration advisor.
* :mod:`repro.harness` - regenerators for every table and figure.
* :mod:`repro.analysis` - static validation: the model linter
  (``repro lint``) and the stream/event-graph race checker.

Quickstart::

    from repro import compare_workload, SizeClass
    comparison = compare_workload("vector_seq", SizeClass.SUPER,
                                  iterations=10)
    for mode in comparison.modes():
        print(mode.value, comparison.normalized_total(mode))
"""

from .analysis import (LintError, LintReport, StreamGraph, lint_program,
                       lint_registry, validate_program)
from .core import (ALL_MODES, Experiment, ModeComparison, Recommendation,
                   RunResult, RunSet, TransferMode, compare_workload,
                   execute_program, interjob_speedup, recommend_mode,
                   run_job_batch, run_workload, section6_shares)
from .harness.executor import (ResultCache, RunSpec, SweepExecutor,
                               expand_grid)
from .sim import (AccessPattern, Calibration, CudaRuntime, KernelDescriptor,
                  Program, SystemSpec, default_calibration, default_system)
from .workloads.registry import (ALL_NAMES, APP_NAMES, MICRO_NAMES,
                                 all_workloads, app_workloads, get_workload,
                                 micro_workloads, workloads_by_suite)
from .workloads.sizes import STABLE_SIZES, SizeClass

__version__ = "1.0.0"

__all__ = [
    "ALL_MODES", "ALL_NAMES", "APP_NAMES", "AccessPattern", "Calibration",
    "CudaRuntime", "Experiment", "KernelDescriptor", "LintError",
    "LintReport", "MICRO_NAMES", "ModeComparison", "Program",
    "Recommendation", "ResultCache", "RunResult", "RunSet", "RunSpec",
    "STABLE_SIZES", "SizeClass",
    "StreamGraph", "SweepExecutor", "SystemSpec", "TransferMode",
    "all_workloads", "expand_grid",
    "app_workloads", "compare_workload", "default_calibration",
    "default_system", "execute_program", "get_workload",
    "interjob_speedup", "lint_program", "lint_registry",
    "micro_workloads", "recommend_mode", "run_job_batch", "run_workload",
    "section6_shares", "validate_program", "workloads_by_suite",
    "__version__",
]
