"""Data generators for the paper's figures 4-10.

Each ``figN_*`` function runs the experiments behind one figure and
returns plain data structures (dicts keyed by workload / mode / size),
plus a ``render_*`` helper that prints the same rows/series the figure
shows. Benchmarks under ``benchmarks/`` call these.

Partial sweeps: every generator goes through
:meth:`SweepExecutor.run_outcomes`, so with a non-strict executor a
failed cell becomes a *gap* rather than an exception — renderers print
``-`` for missing cells and the CLI appends the executor's failure
summary (exit code 3). A strict executor restores fail-fast.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.configs import ALL_MODES, TransferMode
from ..core.results import ModeComparison
from ..core.stats import coefficient_of_variation, geomean, mean
from ..workloads.registry import APP_NAMES, MICRO_NAMES
from ..workloads.sizes import SizeClass
from .executor import (SweepExecutor, collect_comparisons, collect_runsets,
                       ensure_executor, expand_grid)
from .report import render_table

COUNTER_WORKLOADS = ("gemm", "lud", "yolov3")

#: Placeholder renderers print for cells a partial sweep is missing.
GAP = "-"


def _run_partial(executor: Optional[SweepExecutor], specs):
    """Run specs through the resilience layer; ``None`` marks gaps.

    Returns results in spec order. With a strict executor this raises
    at the first permanent failure (fail-fast); otherwise failed /
    timed-out / skipped cells come back as ``None`` and the caller
    renders them as annotated gaps.
    """
    return ensure_executor(executor).run_outcomes(specs).results


# ----------------------------------------------------------------------
# Fig. 4 / Fig. 5: execution-time distributions vs input size
# ----------------------------------------------------------------------
def fig4_distributions(iterations: int = 30,
                       sizes: Sequence[SizeClass] = SizeClass.ordered(),
                       workloads: Sequence[str] = MICRO_NAMES,
                       modes: Sequence[TransferMode] = ALL_MODES,
                       base_seed: int = 1234,
                       executor: Optional[SweepExecutor] = None) -> Dict:
    """30-run total-time distributions per size/workload/mode (Fig. 4).

    Workloads that decline a size class (`Workload.supports`) — the
    explicit-mode Mega allocations that exceed HBM — are skipped for
    that size, exactly as the paper's sweep omits those cells. The
    whole grid goes through one :class:`SweepExecutor` pass, so
    ``--jobs``/caching apply across every cell at once.
    """
    specs = expand_grid(workloads, sizes, modes, iterations=iterations,
                        base_seed=base_seed, skip_unsupported=True)
    results = _run_partial(executor, specs)
    runsets = collect_runsets(run for run in results if run is not None)
    data: Dict = {size.label: {} for size in sizes}
    for (name, size_label, mode), runs in runsets.items():
        data[size_label].setdefault(name, {})[mode.value] = runs.totals()
    return data


def fig5_stability(distributions: Dict) -> Dict[str, Dict[str, float]]:
    """std/mean per workload per size, averaged over the 5 setups (Fig. 5).

    Adds a ``Geo-mean`` pseudo-workload row, as the paper plots. The
    grid may be ragged — a workload missing at a size (e.g. gemm at
    Mega, where explicit allocation exceeds HBM) simply has no cell
    there, and the Geo-mean for that size covers the present workloads.
    """
    stability: Dict[str, Dict[str, float]] = {}
    sizes = list(distributions)
    workloads: List[str] = []
    for by_workload in distributions.values():
        for name in by_workload:
            if name not in workloads:
                workloads.append(name)
    for name in workloads:
        stability[name] = {}
        for size in sizes:
            if name not in distributions[size]:
                continue
            cvs = [coefficient_of_variation(totals)
                   for totals in distributions[size][name].values()]
            stability[name][size] = mean(cvs)
    stability["Geo-mean"] = {
        size: geomean([stability[name][size] for name in workloads
                       if size in stability[name]])
        for size in sizes
    }
    return stability


def render_fig5(stability: Dict[str, Dict[str, float]]) -> str:
    """Figure 5's std/mean-per-size table ("-" marks skipped cells)."""
    sizes: List[str] = []
    for by_size in stability.values():
        for size in by_size:
            if size not in sizes:
                sizes.append(size)
    rows = [(name, *(f"{stability[name][size]:.4f}"
                     if size in stability[name] else "-"
                     for size in sizes))
            for name in stability]
    return render_table(("workload", *sizes), rows,
                        title="Fig. 5: std/mean of 30 runs per input size")


# ----------------------------------------------------------------------
# Fig. 6: Mega-input breakdown instability
# ----------------------------------------------------------------------
def fig6_mega_breakdown(iterations: int = 30, workload: str = "vector_seq",
                        mode: TransferMode = TransferMode.STANDARD,
                        base_seed: int = 1234,
                        executor: Optional[SweepExecutor] = None
                        ) -> List[Optional[Dict[str, float]]]:
    """Per-run breakdown for the Mega input (Fig. 6).

    Positional: entry *i* is run *i*'s breakdown, or ``None`` if that
    run failed in a partial (non-strict) sweep.
    """
    specs = expand_grid((workload,), (SizeClass.MEGA,), (mode,),
                        iterations=iterations, base_seed=base_seed,
                        skip_unsupported=False)
    runs = _run_partial(executor, specs)
    return [run.breakdown() if run is not None else None for run in runs]


def render_fig6(breakdowns: List[Optional[Dict[str, float]]]) -> str:
    """Figure 6's per-run Mega breakdown table (``-`` marks failed runs)."""
    rows = [(index, f"{b['gpu_kernel'] / 1e6:.1f}",
             f"{b['allocation'] / 1e6:.1f}", f"{b['memcpy'] / 1e6:.1f}")
            if b is not None else (index, GAP, GAP, GAP)
            for index, b in enumerate(breakdowns)]
    return render_table(("run", "gpu_kernel (ms)", "allocation (ms)",
                         "memcpy (ms)"), rows,
                        title="Fig. 6: Mega-input breakdown per run")


# ----------------------------------------------------------------------
# Fig. 7 / Fig. 8: normalized comparisons
# ----------------------------------------------------------------------
def comparison_sweep(workloads: Sequence[str], size: SizeClass,
                     iterations: int = 30,
                     base_seed: int = 1234,
                     executor: Optional[SweepExecutor] = None
                     ) -> Dict[str, ModeComparison]:
    """Five-config comparison for each named workload at one size.

    Partial sweeps: a workload whose cells all failed is absent from
    the returned dict; one with some surviving modes appears with the
    modes it has (renderers print ``-`` where normalization is
    impossible).
    """
    specs = expand_grid(workloads, (size,), ALL_MODES,
                        iterations=iterations, base_seed=base_seed,
                        skip_unsupported=False)
    results = _run_partial(executor, specs)
    comparisons = collect_comparisons(r for r in results if r is not None)
    return {name: comparisons[(name, size.label)] for name in workloads
            if (name, size.label) in comparisons}


def fig7_micro(size: SizeClass = SizeClass.SUPER, iterations: int = 30,
               base_seed: int = 1234,
               executor: Optional[SweepExecutor] = None
               ) -> Dict[str, ModeComparison]:
    """Micro comparison at one stable size (Fig. 7a = Large, 7b = Super)."""
    return comparison_sweep(MICRO_NAMES, size, iterations, base_seed,
                            executor=executor)


def fig8_apps(iterations: int = 30,
              base_seed: int = 1234,
              executor: Optional[SweepExecutor] = None
              ) -> Dict[str, ModeComparison]:
    """Real-world application comparison at Super (Fig. 8)."""
    return comparison_sweep(APP_NAMES, SizeClass.SUPER, iterations,
                            base_seed, executor=executor)


def _maybe_normalized(comparison: ModeComparison,
                      mode: TransferMode) -> Optional[float]:
    """``normalized_total`` or ``None`` when the cell/baseline is a gap."""
    try:
        return comparison.normalized_total(mode)
    except (KeyError, ValueError, ZeroDivisionError):
        return None


def render_comparison(comparisons: Dict[str, ModeComparison],
                      title: str) -> str:
    """Figure 7/8-style normalized-total table with a geo-mean row.

    Cells a partial sweep could not produce (missing mode, or missing
    standard baseline) render as ``-`` and are excluded from the
    geo-mean, which covers whatever survived.
    """
    headers = ["workload"] + [m.value for m in ALL_MODES]
    rows = []
    for name, comparison in comparisons.items():
        values = [_maybe_normalized(comparison, m) for m in ALL_MODES]
        rows.append((name, *(f"{v:.3f}" if v is not None else GAP
                             for v in values)))
    geo_cells = []
    for mode in ALL_MODES:
        values = [v for v in (_maybe_normalized(c, mode)
                              for c in comparisons.values())
                  if v is not None]
        geo_cells.append(f"{geomean(values):.3f}" if values else GAP)
    rows.append(("geo-mean", *geo_cells))
    return render_table(headers, rows, title=title)


def geomean_improvements(comparisons: Dict[str, ModeComparison]) -> Dict[str, float]:
    """Percent overall-time improvement over standard, geomean'd.

    Partial sweeps: each mode's geomean covers the comparisons that
    have both the mode and the baseline; a mode with no surviving
    cells is omitted from the result.
    """
    out = {}
    for mode in ALL_MODES:
        values = [v for v in (_maybe_normalized(c, mode)
                              for c in comparisons.values())
                  if v is not None]
        if values:
            out[mode.value] = (1.0 - geomean(values)) * 100.0
    return out


# ----------------------------------------------------------------------
# Fig. 9 / Fig. 10: performance counters
# ----------------------------------------------------------------------
def counter_sweep(workloads: Sequence[str] = COUNTER_WORKLOADS,
                  size: SizeClass = SizeClass.SUPER,
                  base_seed: int = 1234,
                  executor: Optional[SweepExecutor] = None
                  ) -> Dict[str, Dict[str, Dict]]:
    """One run per mode per workload; counters are deterministic.

    The cache persists per-kernel counters (store schema's optional
    ``counters`` field), so warm replays reproduce Figs. 9/10 exactly.
    """
    specs = expand_grid(workloads, (size,), ALL_MODES, iterations=1,
                        base_seed=base_seed, skip_unsupported=False)
    results = [run for run in _run_partial(executor, specs)
               if run is not None]
    data: Dict[str, Dict[str, Dict]] = {name: {} for name in workloads}
    for run in results:
        mix = run.counters.instructions
        misses = run.counters.mean_miss_rates()
        data[run.workload][run.mode.value] = {
            "control": mix.control,
            "integer": mix.integer,
            "fp": mix.fp,
            "memory": mix.memory,
            "load_miss": misses.load,
            "store_miss": misses.store,
        }
    return data


def fig9_instruction_mix(**kwargs) -> Dict[str, Dict[str, Dict]]:
    """Control / integer instruction counts (Fig. 9)."""
    return counter_sweep(**kwargs)


def fig10_cache_miss(**kwargs) -> Dict[str, Dict[str, Dict]]:
    """Unified-L1 global load/store miss rates (Fig. 10)."""
    return counter_sweep(**kwargs)


def render_counters(data: Dict[str, Dict[str, Dict]], keys: Sequence[str],
                    title: str) -> str:
    """Figure 9/10-style counter table for the selected counter keys."""
    headers = ["workload", "mode", *keys]
    rows = []
    for name, by_mode in data.items():
        for mode, counters in by_mode.items():
            rows.append((name, mode,
                         *(f"{counters[key]:.4g}" for key in keys)))
    return render_table(headers, rows, title=title)
