"""Persistent result store for long-running studies.

The paper's protocol (30 iterations x 21 workloads x 5 configs x
several sweeps) takes hours on real hardware; losing measurements to a
crash is expensive. This store appends every run to a JSON-lines file
and reloads them into the same result types the rest of the library
consumes, so studies can be resumed, merged, and re-analyzed offline.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Union

from ..core.configs import TransferMode
from ..core.results import ModeComparison, RunResult, RunSet
from ..sim.cache import MissRates
from ..sim.counters import CounterReport, KernelCounters
from ..sim.kernel import InstructionMix

SCHEMA_VERSION = 1


def _counters_to_record(counters: CounterReport) -> List[Dict]:
    """Serialize per-kernel counters (the Fig. 9/10 payload)."""
    return [
        {
            "kernel": entry.kernel_name,
            "inst": [entry.instructions.memory, entry.instructions.fp,
                     entry.instructions.integer, entry.instructions.control],
            "l1": [entry.l1.load, entry.l1.store],
            "dram_load_bytes": entry.dram_load_bytes,
            "dram_store_bytes": entry.dram_store_bytes,
            "occupancy": entry.occupancy,
        }
        for entry in counters.kernels
    ]


def _counters_from_record(entries: List[Dict]) -> CounterReport:
    report = CounterReport()
    for entry in entries:
        memory, fp, integer, control = entry["inst"]
        load, store = entry["l1"]
        report.add(KernelCounters(
            kernel_name=entry["kernel"],
            instructions=InstructionMix(memory=memory, fp=fp,
                                        integer=integer, control=control),
            l1=MissRates(load=load, store=store),
            dram_load_bytes=entry["dram_load_bytes"],
            dram_store_bytes=entry["dram_store_bytes"],
            occupancy=entry["occupancy"],
        ))
    return report


def run_to_record(run: RunResult, with_counters: bool = False) -> Dict:
    """Serialize one run to the store's JSON record schema.

    ``occupancy``, ``gpu_busy_fraction`` and ``counters`` are optional
    on read (older stores lack them); ``with_counters=True`` persists
    the per-kernel counter report too - the result cache uses this so
    counter sweeps (Figs. 9/10) replay exactly from cache.
    """
    record = {
        "v": SCHEMA_VERSION,
        "workload": run.workload,
        "mode": run.mode.value,
        "size": run.size,
        "seed": run.seed,
        "alloc_ns": run.alloc_ns,
        "memcpy_ns": run.memcpy_ns,
        "kernel_ns": run.kernel_ns,
        "wall_ns": run.wall_ns,
        "occupancy": run.occupancy,
        "gpu_busy_fraction": run.gpu_busy_fraction,
    }
    if with_counters:
        record["counters"] = _counters_to_record(run.counters)
    return record


def record_to_run(record: Dict) -> RunResult:
    """Rebuild a :class:`RunResult` from a store record.

    Optional fields (``occupancy``, ``gpu_busy_fraction``,
    ``counters``) default to empty when missing, so records written by
    older schema-1 stores still load.
    """
    if record.get("v") != SCHEMA_VERSION:
        raise ValueError(f"unsupported record version {record.get('v')!r}")
    counters = record.get("counters")
    return RunResult(
        workload=record["workload"],
        mode=TransferMode.from_label(record["mode"]),
        size=record["size"],
        seed=record["seed"],
        alloc_ns=record["alloc_ns"],
        memcpy_ns=record["memcpy_ns"],
        kernel_ns=record["kernel_ns"],
        wall_ns=record["wall_ns"],
        counters=(_counters_from_record(counters)
                  if counters is not None else CounterReport()),
        occupancy=record.get("occupancy", 0.0),
        gpu_busy_fraction=record.get("gpu_busy_fraction", 0.0),
    )


# Backwards-compatible private aliases (pre-executor callers).
_run_to_record = run_to_record
_record_to_run = record_to_run


class ResultStore:
    """Append-only JSON-lines store of :class:`RunResult` records.

    Reading is strict by default (a corrupt line raises, naming the
    file and line). Long-running studies that were killed mid-append
    can instead salvage everything readable with
    ``iter_runs(skip_corrupt=True)``; the number of lines dropped by
    the most recent tolerant read is kept in ``last_skipped``.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self.last_skipped = 0

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def append(self, run: RunResult) -> None:
        with self.path.open("a") as stream:
            stream.write(json.dumps(_run_to_record(run)) + "\n")

    def append_many(self, runs: Iterable[RunResult]) -> int:
        count = 0
        with self.path.open("a") as stream:
            for run in runs:
                stream.write(json.dumps(_run_to_record(run)) + "\n")
                count += 1
        return count

    def append_runset(self, runs: RunSet) -> int:
        return self.append_many(runs.runs)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[RunResult]:
        return self.iter_runs(skip_corrupt=False)

    def iter_runs(self, skip_corrupt: bool = False) -> Iterator[RunResult]:
        """Yield stored runs; optionally skip unreadable lines.

        ``skip_corrupt=True`` drops lines that fail to parse or
        deserialize (counting them in ``last_skipped``) instead of
        raising — the salvage path for stores torn by a crash or an
        interrupted append.
        """
        self.last_skipped = 0
        if not self.path.exists():
            return
        with self.path.open() as stream:
            for line_number, line in enumerate(stream, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    run = _record_to_run(record)
                except (json.JSONDecodeError, ValueError, KeyError,
                        TypeError) as error:
                    if skip_corrupt:
                        self.last_skipped += 1
                        continue
                    raise ValueError(
                        f"{self.path}:{line_number}: corrupt record "
                        f"({error})") from error
                yield run

    def __len__(self) -> int:
        return sum(1 for _ in self)

    def query(self, workload: Optional[str] = None,
              mode: Optional[TransferMode] = None,
              size: Optional[str] = None) -> List[RunResult]:
        """All stored runs matching the given filters."""
        matches = []
        for run in self:
            if workload is not None and run.workload != workload:
                continue
            if mode is not None and run.mode is not mode:
                continue
            if size is not None and run.size != size:
                continue
            matches.append(run)
        return matches

    def load_runset(self, workload: str, mode: TransferMode,
                    size: str) -> RunSet:
        runs = RunSet(workload=workload, mode=mode, size=size)
        for run in self.query(workload=workload, mode=mode, size=size):
            runs.add(run)
        return runs

    def load_comparison(self, workload: str, size: str) -> ModeComparison:
        """Rebuild a five-config comparison from stored runs."""
        comparison = ModeComparison(workload=workload, size=size)
        for mode in TransferMode:
            runs = self.load_runset(workload, mode, size)
            if len(runs):
                comparison.add(runs)
        return comparison

    def workloads(self) -> List[str]:
        return sorted({run.workload for run in self})
