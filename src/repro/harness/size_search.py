"""Input-size search (Sec. 3.3's methodology, as a reusable tool).

The paper spends Sec. 3.3 choosing input sizes: large enough to
amortize the constant system overhead and capture config differences,
small enough to avoid host DRAM-chip spill noise. This module runs
that search for any workload: sweep the size classes, measure
stability and the config spread, and recommend the usable band.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.configs import ALL_MODES
from ..core.stats import geomean
from ..workloads.registry import get_workload
from ..workloads.sizes import SizeClass
from .executor import (SweepExecutor, collect_comparisons, ensure_executor,
                       expand_grid)
from .report import render_table

# Sec. 3.3's working criteria.
MAX_STABLE_CV = 0.05          # run-to-run noise budget
MIN_CONFIG_SPREAD = 0.05      # configs must differ by >= 5 % to study


@dataclass(frozen=True)
class SizeAssessment:
    """One size class's suitability for the characterization study.

    ``complete=False`` marks a size whose sweep lost cells to failures
    (partial, non-strict executor): its metrics are NaN, it is never
    usable, and the renderer annotates it instead of hiding it.
    """

    size: str
    mean_total_ns: float
    cv: float
    config_spread: float       # (max - min) / min across the five configs
    stable: bool
    discriminative: bool
    complete: bool = True

    @property
    def usable(self) -> bool:
        return self.complete and self.stable and self.discriminative

    @classmethod
    def incomplete(cls, size: str) -> "SizeAssessment":
        nan = float("nan")
        return cls(size=size, mean_total_ns=nan, cv=nan, config_spread=nan,
                   stable=False, discriminative=False, complete=False)


def assess_sizes(workload: str,
                 sizes: Sequence[SizeClass] = SizeClass.ordered(),
                 iterations: int = 10,
                 base_seed: int = 1234,
                 executor: Optional[SweepExecutor] = None
                 ) -> List[SizeAssessment]:
    """Run the Sec. 3.3 search for one workload.

    Sizes the workload declines (`Workload.supports`, e.g. gemm at
    Mega where explicit allocation exceeds HBM) are skipped. All
    (size x mode x iteration) cells go through one executor pass.
    """
    subject = get_workload(workload)
    supported = [size for size in sizes if subject.supports(size)]
    specs = expand_grid((workload,), supported, ALL_MODES,
                        iterations=iterations, base_seed=base_seed)
    results = ensure_executor(executor).run_outcomes(specs).results
    comparisons = collect_comparisons(r for r in results if r is not None)
    assessments = []
    for size in supported:
        comparison = comparisons.get((workload, size.label))
        if comparison is None or any(
                mode not in comparison.by_mode
                or len(comparison.by_mode[mode]) < iterations
                for mode in ALL_MODES):
            # A partial sweep lost cells here: the stability and spread
            # criteria would be computed over a biased subsample, so
            # mark the size as an annotated gap instead.
            assessments.append(SizeAssessment.incomplete(size.label))
            continue
        cvs = [runs.cv() for runs in comparison.by_mode.values()]
        totals = [runs.mean_total_ns()
                  for runs in comparison.by_mode.values()]
        spread = (max(totals) - min(totals)) / min(totals)
        cv = geomean([max(value, 1e-9) for value in cvs])
        assessments.append(SizeAssessment(
            size=size.label,
            mean_total_ns=comparison.baseline().mean_total_ns(),
            cv=cv,
            config_spread=spread,
            stable=cv <= MAX_STABLE_CV,
            discriminative=spread >= MIN_CONFIG_SPREAD,
        ))
    return assessments


def recommend_sizes(assessments: Sequence[SizeAssessment]) -> List[str]:
    """The usable band (the paper lands on Large and Super)."""
    return [a.size for a in assessments if a.usable]


def render_size_search(workload: str,
                       assessments: Sequence[SizeAssessment]) -> str:
    """ASCII table of the size search plus the recommended band."""
    rows = []
    for a in assessments:
        if not a.complete:
            rows.append((a.size, "-", "-", "-", "no data (failed runs)"))
            continue
        verdict = "usable" if a.usable else (
            "noisy" if not a.stable else "indiscriminate")
        rows.append((a.size, f"{a.mean_total_ns / 1e6:.1f}",
                     f"{a.cv:.4f}", f"{a.config_spread:.3f}", verdict))
    text = render_table(
        ("size", "standard mean (ms)", "std/mean", "config spread",
         "verdict"), rows,
        title=f"Sec. 3.3 input-size search: {workload}")
    usable = recommend_sizes(assessments)
    text += "\nrecommended band: " + (", ".join(usable) if usable
                                      else "(none)")
    return text
