"""Parallel sweep executor with a content-addressed result cache.

Every figure of the paper re-runs a (workload x size x mode x
iteration) grid. Because each run is seeded purely from its
coordinates (:func:`repro.core.experiment.run_seed`), the grid is
*embarrassingly pure*: any cell can run anywhere, in any order, and
produce bit-identical results. This module exploits that:

* :class:`RunSpec` - one grid cell as a small, picklable value object;
* :func:`expand_grid` - flatten a figure sweep into a spec list;
* :class:`ResultCache` - a content-addressed, on-disk memo of finished
  runs (key = stable hash of spec + program structure + hardware model
  + calibration + code-version salt), reusing the
  :mod:`repro.harness.store` record schema;
* :class:`SweepExecutor` - fans specs out over a thread/process pool
  and fills cache hits without re-simulating, preserving input order.

Determinism contract: for any spec list, ``SweepExecutor(jobs=1)``,
``SweepExecutor(jobs=N)`` (either backend) and a warm-cache replay all
return byte-identical serialized :class:`~repro.core.results.RunResult`
sequences. ``tests/harness/test_executor.py`` pins this down.

Resilience contract (:mod:`repro.harness.resilience`): one raising,
hanging, or crashing spec never takes the sweep down. Each spec
resolves to a :class:`~repro.harness.resilience.SpecOutcome`; failures
retry per :class:`~repro.harness.resilience.RetryPolicy` with
deterministic backoff; hung process workers are timed out and their
pool rebuilt; ``BrokenProcessPool`` requeues survivors and quarantines
poison specs; terminal outcomes checkpoint to a
:class:`~repro.harness.resilience.SweepJournal` so interrupted sweeps
resume. ``tests/harness/test_resilience.py`` proves all of this with
the deterministic fault plans of :mod:`repro.harness.faults`.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import signal
import threading
import time
import traceback as traceback_module
from concurrent.futures import (FIRST_COMPLETED, BrokenExecutor,
                                ProcessPoolExecutor, ThreadPoolExecutor)
from concurrent.futures import wait as futures_wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import (Callable, Dict, Iterable, List, Optional, Sequence,
                    Tuple, Union)

import numpy as np

from ..core.configs import ALL_MODES, TransferMode
from ..core.execution import ENGINES, execute_program
from ..core.experiment import run_seed
from ..core.results import ModeComparison, RunResult, RunSet
from ..sim.calibration import Calibration, default_calibration
from ..sim.hardware import SystemSpec, default_system
from ..workloads.sizes import SizeClass
from . import faults
from .resilience import (DEFAULT_RETRY_POLICY, RetryPolicy, SpecOutcome,
                         SpecStatus, SweepFailure, SweepInterrupted,
                         SweepJournal, SweepOutcome)
from .store import record_to_run, run_to_record

#: Bump when the simulator's semantics change in ways the hashed inputs
#: (program structure, hardware spec, calibration constants) cannot
#: see, to invalidate every previously cached result.
CODE_VERSION = "executor-v1"

#: Environment knobs picked up as defaults (CI's parallel leg sets
#: ``REPRO_JOBS=2`` so the whole tier-1 suite exercises the pool path).
JOBS_ENV = "REPRO_JOBS"
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

Backend = str  # "thread" | "process"
_BACKENDS = ("thread", "process")


def default_jobs() -> int:
    """Worker count: the ``REPRO_JOBS`` env var, else 1 (serial).

    Invalid values (non-integers, zero, negatives) raise a clear
    :class:`ValueError` instead of silently falling back to serial — a
    CI leg that typos ``REPRO_JOBS=two`` should fail loudly, not
    quietly stop exercising the pool path.
    """
    raw = os.environ.get(JOBS_ENV)
    if raw is None or not raw.strip():
        return 1
    try:
        jobs = int(raw)
    except ValueError:
        raise ValueError(
            f"{JOBS_ENV} must be a positive integer, got {raw!r}") from None
    if jobs < 1:
        raise ValueError(f"{JOBS_ENV} must be >= 1, got {jobs}")
    return jobs


def default_cache_dir() -> Path:
    """``REPRO_CACHE_DIR`` if set, else ``~/.cache/repro/results``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro" / "results"


# ----------------------------------------------------------------------
# RunSpec: one pure grid cell
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunSpec:
    """One simulated run, identified purely by its coordinates.

    A spec carries everything needed to reproduce the run bit-exactly:
    grid coordinates (workload, size, mode, iteration), the sweep's
    base seed, and the optional launch-geometry / shared-memory
    overrides the sensitivity studies use. ``seed_salt`` is appended
    to the workload token of the per-run seed so that geometry sweeps
    keep their historical seed stream (``"<name>:sweep"``).
    """

    workload: str
    size: str
    mode: TransferMode
    iteration: int = 0
    base_seed: int = 1234
    blocks: Optional[int] = None
    threads: Optional[int] = None
    smem_carveout_bytes: Optional[int] = None
    seed_salt: str = ""

    def __post_init__(self) -> None:
        if self.iteration < 0:
            raise ValueError("iteration must be >= 0")
        SizeClass.from_label(self.size)  # validates the label
        if isinstance(self.mode, str):  # tolerate labels
            object.__setattr__(self, "mode",
                               TransferMode.from_label(self.mode))

    @property
    def size_class(self) -> SizeClass:
        return SizeClass.from_label(self.size)

    @property
    def has_geometry(self) -> bool:
        return self.blocks is not None or self.threads is not None

    def seed_sequence(self) -> np.random.SeedSequence:
        """Same seed stream as :class:`~repro.core.experiment.Experiment`."""
        return run_seed(self.base_seed, self.workload + self.seed_salt,
                        self.size, self.mode, self.iteration)

    def build_program(self):
        """The (immutable) device program this spec runs."""
        from ..workloads.registry import get_workload
        subject = get_workload(self.workload)
        if self.has_geometry:
            builder = getattr(subject, "program_with_geometry", None)
            if builder is None:
                raise ValueError(
                    f"workload {self.workload!r} does not support launch-"
                    "geometry overrides (no program_with_geometry)")
            return builder(self.size_class, blocks=self.blocks,
                           threads=self.threads)
        return subject.program(self.size_class)

    def supported(self) -> bool:
        from ..workloads.registry import get_workload
        return get_workload(self.workload).supports(self.size_class)


def expand_grid(workloads: Sequence[str],
                sizes: Sequence[Union[SizeClass, str]],
                modes: Sequence[TransferMode] = ALL_MODES,
                iterations: int = 1,
                base_seed: int = 1234,
                skip_unsupported: bool = True,
                **overrides) -> List[RunSpec]:
    """Flatten a sweep into specs, in deterministic nested order.

    Order is size-major, then workload, mode, iteration - the order
    the serial figure loops have always used. Workloads that decline a
    size (:meth:`Workload.supports`) are skipped when
    ``skip_unsupported`` (the paper's omitted Mega cells); otherwise
    the executor will raise when the cell runs.
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    specs: List[RunSpec] = []
    for size in sizes:
        label = size.label if isinstance(size, SizeClass) else \
            SizeClass.from_label(size).label
        for name in workloads:
            spec0 = RunSpec(workload=name, size=label, mode=modes[0],
                            base_seed=base_seed, **overrides)
            if skip_unsupported and not spec0.supported():
                continue
            for mode in modes:
                for iteration in range(iterations):
                    specs.append(dataclasses.replace(
                        spec0, mode=mode, iteration=iteration))
    return specs


# ----------------------------------------------------------------------
# Content-addressed cache keys
# ----------------------------------------------------------------------
def canonical(obj):
    """Recursively normalize a value into a JSON-stable structure.

    Dataclasses become ``{"__type__": name, fields...}`` so that two
    different spec types with the same field values cannot collide;
    enums become their value; dicts are sorted by stringified key.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        out = {"__type__": type(obj).__name__}
        for f in dataclasses.fields(obj):
            out[f.name] = canonical(getattr(obj, f.name))
        return out
    if isinstance(obj, enum.Enum):
        return canonical(obj.value)
    if isinstance(obj, dict):
        return {str(canonical(key)): canonical(value)
                for key, value in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if isinstance(obj, (list, tuple)):
        return [canonical(item) for item in obj]
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(f"cannot canonicalize {type(obj).__name__}")


def fingerprint(obj) -> str:
    """Stable SHA-256 hex digest of a canonicalized value."""
    payload = json.dumps(canonical(obj), sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# Program structure changes rarely relative to sweep width; memoize its
# fingerprint per coordinates so warm-cache lookups stay O(file read).
_PROGRAM_FP_CACHE: Dict[Tuple, str] = {}

# Programs themselves are immutable (frozen dataclasses all the way
# down), so the *objects* memoize too: within a sweep, every iteration
# of the same coordinates shares one build.  Bounded because darknet
# programs are large; FIFO eviction is fine at this population.
_PROGRAM_MEMO: Dict[Tuple, object] = {}
_PROGRAM_MEMO_CAP = 256


def spec_coords(spec: RunSpec) -> Tuple:
    """The coordinates that determine a spec's program (not its seed)."""
    return (spec.workload, spec.size, spec.blocks, spec.threads)


def program_for(spec: RunSpec):
    """The (immutable, shared) program for a spec's coordinates.

    One :meth:`RunSpec.build_program` per distinct coordinates per
    process — iterations and modes reuse the same object, which is safe
    because programs are frozen and the runtime never mutates them.
    """
    coords = spec_coords(spec)
    program = _PROGRAM_MEMO.get(coords)
    if program is None:
        program = spec.build_program()
        if len(_PROGRAM_MEMO) >= _PROGRAM_MEMO_CAP:
            _PROGRAM_MEMO.pop(next(iter(_PROGRAM_MEMO)))
        _PROGRAM_MEMO[coords] = program
    return program


def clear_program_memo() -> None:
    """Drop memoized programs (tests that count build_program calls)."""
    _PROGRAM_MEMO.clear()


def program_fingerprint(spec: RunSpec) -> str:
    """Fingerprint of the program the spec runs (descriptor + buffers).

    Editing any workload descriptor (kernel geometry, tile sizes,
    instruction mix, buffer directions...) changes this digest, which
    invalidates every cached result for the workload - rule 2 of
    docs/EXECUTOR.md.
    """
    coords = spec_coords(spec)
    cached = _PROGRAM_FP_CACHE.get(coords)
    if cached is None:
        cached = fingerprint(program_for(spec))
        _PROGRAM_FP_CACHE[coords] = cached
    return cached


def cache_key(spec: RunSpec,
              system: Optional[SystemSpec] = None,
              calib: Optional[Calibration] = None,
              env_fingerprint: Optional[str] = None) -> str:
    """Content-addressed key for one run.

    The key covers everything the result depends on: the full spec,
    the structure of the program it executes, the hardware model, the
    calibration constants, and a code-version salt. Any perturbation
    of any field produces a different key (property-tested in
    ``tests/harness/test_cache_key.py``), and keys are stable across
    processes and interpreter restarts (no ``hash()`` anywhere).
    """
    if env_fingerprint is None:
        env_fingerprint = environment_fingerprint(system, calib)
    payload = {
        "code": CODE_VERSION,
        "spec": canonical(spec),
        "program": program_fingerprint(spec),
        "environment": env_fingerprint,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def environment_fingerprint(system: Optional[SystemSpec] = None,
                            calib: Optional[Calibration] = None) -> str:
    """One digest for the (hardware model, calibration) pair."""
    return fingerprint({
        "system": system or default_system(),
        "calib": calib or default_calibration(),
    })


# ----------------------------------------------------------------------
# Result cache
# ----------------------------------------------------------------------
@dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`ResultCache`.

    ``corrupt`` counts entries that *existed* but failed to parse —
    each such entry is also a miss, and its file is quarantined to
    ``<key>.corrupt`` (see :meth:`ResultCache.get`) so the same broken
    record can never be re-counted on every lookup forever.

    ``duplicates`` counts :meth:`ResultCache.put` calls that lost the
    first-commit-wins race: another writer (a concurrent sweep thread,
    a fabric worker, a fenced zombie) published the entry first, so
    this write committed nothing and is *not* a store.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0
    duplicates: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def reset(self) -> None:
        self.hits = self.misses = self.stores = 0
        self.corrupt = self.duplicates = 0


class ResultCache:
    """Content-addressed on-disk memo of completed runs.

    Layout: ``<root>/<key[:2]>/<key>.json``, one store-schema record
    per file (the :mod:`repro.harness.store` JSON-lines schema, with
    counters persisted so figure 9/10 sweeps replay exactly). Files
    are written atomically (temp + rename) so concurrent workers and
    interrupted sweeps can never publish a torn record; corrupt or
    unreadable entries degrade to cache misses and are overwritten.
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.stats = CacheStats()

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[RunResult]:
        path = self.path_for(key)
        try:
            text = path.read_text()
        except OSError:
            self.stats.misses += 1
            return None
        try:
            record = json.loads(text)
            run = record_to_run(record)
        except (ValueError, KeyError, TypeError):
            # The entry exists but cannot be parsed (torn write, stale
            # schema, bit rot): quarantine it to <key>.corrupt so the
            # re-executed run can publish a clean record, and count it
            # separately from ordinary misses. Two readers can race to
            # quarantine the same entry; only the one whose rename wins
            # counts it, so a shared cache tallies each corruption once.
            if self._quarantine(path):
                self.stats.corrupt += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return run

    def _quarantine(self, path: Path) -> bool:
        """Move a corrupt entry aside (best effort) as ``<key>.corrupt``.

        Returns whether *this* process performed the quarantine. A
        concurrent reader of the same corrupt entry may win the rename
        first; the loser's ``FileNotFoundError`` is the expected race
        outcome, not an error — it reports ``False`` so callers don't
        double-count the corruption.
        """
        try:
            path.replace(path.with_suffix(".corrupt"))
            return True
        except FileNotFoundError:
            return False  # a concurrent reader already quarantined it
        except OSError:  # pragma: no cover - cross-device/permission edge
            try:
                path.unlink()
                return True
            except FileNotFoundError:
                return False
            except OSError:
                return False

    def put(self, key: str, run: RunResult) -> bool:
        """Publish one record; first commit wins.

        Two workers finishing the same spec concurrently (fabric
        speculative re-dispatch, or plain thread races) must yield
        exactly one committed entry and one accounting: the record is
        written to a private temp file and *linked* into place —
        ``os.link`` fails with ``EEXIST`` when another writer already
        committed, so the loser counts a ``duplicate``, not a store,
        and never rewrites the winner's bytes (results are
        bit-identical anyway, but mtime churn and double-counted
        ``stores`` are how the old rename-overwrite path lied).
        Returns whether *this* call committed the entry.

        Filesystems without hard links degrade to the historical
        atomic rename (still torn-write-safe, last writer wins).
        """
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        record = run_to_record(run, with_counters=True)
        tmp = path.with_name(
            f".{path.name}.{os.getpid()}.{threading.get_ident()}.tmp")
        tmp.write_text(json.dumps(record))
        committed = True
        try:
            os.link(tmp, path)  # atomic publish; EEXIST = lost the race
        except FileExistsError:
            committed = False
        except OSError:  # pragma: no cover - no-hardlink filesystem
            tmp.replace(path)
            tmp = None
        if tmp is not None:
            tmp.unlink(missing_ok=True)
        if committed:
            self.stats.stores += 1
        else:
            self.stats.duplicates += 1
        return committed

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def clear(self) -> int:
        """Delete every cached record; returns how many were removed."""
        removed = 0
        for path in self.root.glob("*/*.json"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
# SeedSequence construction (entropy hashing over the five coordinate
# words) costs ~20us — more than an entire vector-engine replay — yet
# is a pure function of the spec's seed coordinates.  Two memo tiers:
# the *SeedSequence objects* (building a Generator from a reused
# sequence is deterministic — generate_state is pure), and, for the
# axis-fused family replay, the derived PCG64 *state dicts* —
# restoring a saved state onto one shared bit generator is ~3x cheaper
# than constructing a fresh ``Generator(PCG64(seq))`` per spec and
# yields the bit-identical stream.
_SEED_SEQ_MEMO: Dict[Tuple, np.random.SeedSequence] = {}
_SEED_SEQ_MEMO_CAP = 65536
_RNG_STATE_MEMO: Dict[Tuple, dict] = {}


def _seed_key(spec: RunSpec) -> Tuple:
    return (spec.base_seed, spec.workload, spec.seed_salt, spec.size,
            spec.mode.value, spec.iteration)


def rng_for_spec(spec: RunSpec) -> np.random.Generator:
    """A fresh, deterministic :class:`~numpy.random.Generator` for a spec.

    Bit-identical stream to ``np.random.default_rng(spec.seed_sequence())``
    on every call — the memo only skips re-deriving the entropy pool.
    """
    key = _seed_key(spec)
    seq = _SEED_SEQ_MEMO.get(key)
    if seq is None:
        if len(_SEED_SEQ_MEMO) >= _SEED_SEQ_MEMO_CAP:
            _SEED_SEQ_MEMO.clear()
        seq = spec.seed_sequence()
        _SEED_SEQ_MEMO[key] = seq
    return np.random.default_rng(seq)


def rng_state_for_spec(spec: RunSpec) -> dict:
    """The PCG64 state behind :func:`rng_for_spec`'s generator.

    Restoring this dict onto any PCG64 bit generator reproduces the
    spec's stream bit-identically.  The fused family replay restores
    it onto one *shared* generator per family instead of constructing
    a ``Generator`` object per spec — same draws, a fraction of the
    setup cost.  The memoized dicts are never mutated by restoration
    (``bit_generator.state`` copies on both get and set).
    """
    key = _seed_key(spec)
    state = _RNG_STATE_MEMO.get(key)
    if state is None:
        if len(_RNG_STATE_MEMO) >= _SEED_SEQ_MEMO_CAP:
            _RNG_STATE_MEMO.clear()
        seq = _SEED_SEQ_MEMO.get(key)
        if seq is None:
            if len(_SEED_SEQ_MEMO) >= _SEED_SEQ_MEMO_CAP:
                _SEED_SEQ_MEMO.clear()
            seq = spec.seed_sequence()
            _SEED_SEQ_MEMO[key] = seq
        state = np.random.PCG64(seq).state
        _RNG_STATE_MEMO[key] = state
    return state


def execute_spec(spec: RunSpec,
                 system: Optional[SystemSpec] = None,
                 calib: Optional[Calibration] = None,
                 attempt: int = 1,
                 engine: str = "reference") -> RunResult:
    """Run one spec cold. Bit-identical to ``Experiment.run_one``.

    ``attempt`` (1-based) only feeds the test-only fault-injection
    hook (:func:`repro.harness.faults.maybe_fire`); the simulation
    itself is seeded purely from the spec, so retried attempts produce
    byte-identical results.

    ``engine`` selects the simulation engine (:data:`ENGINES`).
    Engines flagged ``uses_phase_memo`` additionally bind the
    process-local kernel-phase memo
    (:func:`repro.sim.phasecache.phase_memo_for`) — neither leg can
    change results (the differential battery in
    ``tests/harness/test_differential.py`` pins this).
    """
    faults.maybe_fire(spec, attempt)
    program = program_for(spec)
    rng = rng_for_spec(spec)
    system = system or default_system()
    calib = calib or default_calibration()
    phase_memo = None
    info = ENGINES.get(engine)
    if info is not None and info.uses_phase_memo:
        from ..sim.phasecache import phase_memo_for
        phase_memo = phase_memo_for(system, calib)
    return execute_program(
        program, spec.mode,
        system=system,
        calib=calib,
        rng=rng,
        seed=spec.iteration,
        smem_carveout_bytes=spec.smem_carveout_bytes,
        size_label=spec.size,
        engine=engine,
        phase_memo=phase_memo,
    )


def _execute_entry(entry: Tuple) -> RunResult:
    """Module-level worker so ProcessPoolExecutor can pickle it.

    ``entry`` is ``(spec, system, calib, attempt[, engine])`` — the
    engine element is optional for compatibility with callers of the
    historical 4-tuple shape.
    """
    spec, system, calib, attempt = entry[:4]
    engine = entry[4] if len(entry) > 4 else "reference"
    return execute_spec(spec, system=system, calib=calib, attempt=attempt,
                        engine=engine)


@dataclass
class SweepStats:
    """Accounting for the most recent :meth:`SweepExecutor.run`."""

    total: int = 0
    cache_hits: int = 0
    executed: int = 0
    elapsed_s: float = 0.0
    jobs: int = 1
    backend: Backend = "thread"
    failed: int = 0
    timed_out: int = 0
    skipped: int = 0
    retries: int = 0
    crashes: int = 0
    engine: str = "reference"
    phase_hits: int = 0
    phase_misses: int = 0
    grid_groups: int = 0
    grid_specs: int = 0
    families_fused: int = 0
    families_rerouted: int = 0
    #: reroute counts keyed by the classifier rule that fired
    #: (``FamilyRerouted.rule``), plus ``"contention"`` for per-spec
    #: ``ContentionDetected`` bails and ``"residual-guard"`` for fused
    #: rows whose per-spec guards failed.
    reroute_rules: Dict[str, int] = field(default_factory=dict)

    @property
    def phase_lookups(self) -> int:
        return self.phase_hits + self.phase_misses

    @property
    def phase_hit_rate(self) -> float:
        return self.phase_hits / self.phase_lookups if self.phase_lookups \
            else 0.0

    def summary(self) -> str:
        parts = [f"{self.total} runs", f"{self.cache_hits} cache hits",
                 f"{self.executed} executed in {self.elapsed_s:.2f}s"]
        if self.engine != "reference":
            parts.append(f"{self.engine} engine")
        if self.phase_lookups:
            parts.append(
                f"phase memo {self.phase_hits}/{self.phase_lookups} hits "
                f"({self.phase_hit_rate:.0%})")
        if self.grid_specs:
            parts.append(f"{self.grid_specs} grid-replayed "
                         f"({self.grid_groups} compiled groups)")
        if self.families_fused:
            parts.append(f"{self.families_fused} families fused")
        if self.families_rerouted or self.reroute_rules:
            rules = ", ".join(f"{rule}:{count}" for rule, count
                              in sorted(self.reroute_rules.items()))
            label = f"{self.families_rerouted} families rerouted"
            parts.append(f"{label} ({rules})" if rules else label)
        if self.executed and self.jobs > 1:
            parts.append(f"{self.jobs} {self.backend} workers")
        for label, count in (("failed", self.failed),
                             ("timed out", self.timed_out),
                             ("skipped", self.skipped),
                             ("retries", self.retries),
                             ("worker crashes", self.crashes)):
            if count:
                parts.append(f"{count} {label}")
        return "[sweep] " + ", ".join(parts)


ProgressFn = Callable[[int, int, RunSpec], None]


def _axis_split(cell_map: Dict[Tuple, List["RunSpec"]]) -> List[List[Tuple]]:
    """Partition one family's coordinate cells into one-axis runs.

    ``cell_map`` maps ``(coords, mode, carveout)`` group keys to their
    member specs; all cells already share ``(workload, mode,
    base_seed, seed_salt)``.  A fusable *axis run* varies along at
    most one of the four sensitivity axes (size, blocks, threads,
    carveout) — the shape of every figure sweep.  When several axes
    vary (a full-factorial grid), the most-varying axis fuses and the
    remaining coordinates split the family, so each run is still a
    single sensitivity axis.
    """
    def axes_of(group_key: Tuple) -> Tuple:
        (coords, _mode, carveout) = group_key
        return (coords[1], coords[2], coords[3], carveout)

    items = list(cell_map.items())
    distinct: List[set] = [set(), set(), set(), set()]
    for group_key, _ in items:
        for axis, value in enumerate(axes_of(group_key)):
            distinct[axis].add(value)
    varying = [axis for axis, values in enumerate(distinct)
               if len(values) > 1]
    if len(varying) <= 1:
        return [items]
    fused = max(varying, key=lambda axis: len(distinct[axis]))
    runs: Dict[Tuple, List[Tuple]] = {}
    for group_key, members in items:
        axes = axes_of(group_key)
        rest = tuple(value for axis, value in enumerate(axes)
                     if axis != fused)
        runs.setdefault(rest, []).append((group_key, members))
    return list(runs.values())


class SweepExecutor:
    """Runs spec lists, in parallel, through the result cache.

    * ``jobs=1`` executes inline (no pool, no pickling) - the
      reference serial order.
    * ``jobs>1`` fans cache misses out over a
      :class:`ThreadPoolExecutor` (default; the NumPy-heavy simulator
      releases little of the GIL, but threads cost nothing to spawn)
      or a :class:`ProcessPoolExecutor` (``backend="process"``; true
      parallelism, requires picklable specs - which RunSpecs are).

    Results always come back in spec order regardless of completion
    order, so downstream grouping never depends on scheduling.

    Resilience: :meth:`run_outcomes` isolates every spec behind a
    :class:`SpecOutcome` (retrying/timing out per ``retry``), journals
    terminal outcomes when a ``journal`` is attached, skips journaled
    permanent failures when ``resume`` is set, and — unless ``strict``
    — returns partial sweeps instead of raising. :meth:`run` is the
    historical strict facade: all-or-raise, in spec order.
    """

    def __init__(self, jobs: Optional[int] = None,
                 cache: Optional[ResultCache] = None,
                 system: Optional[SystemSpec] = None,
                 calib: Optional[Calibration] = None,
                 backend: Backend = "thread",
                 progress: Optional[ProgressFn] = None,
                 retry: Optional[RetryPolicy] = None,
                 journal: Optional[SweepJournal] = None,
                 resume: bool = False,
                 strict: bool = False,
                 engine: str = "reference",
                 isolate: bool = False,
                 fuse: bool = True):
        if backend not in _BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {_BACKENDS}")
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; expected one of "
                f"{', '.join(ENGINES)}")
        if jobs is None:
            jobs = default_jobs()
        else:
            jobs = int(jobs)
            if jobs < 1:
                raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache
        self.system = system
        self.calib = calib
        self.backend = backend
        self.progress = progress
        self.retry = retry if retry is not None else DEFAULT_RETRY_POLICY
        self.journal = journal
        self.resume = resume
        self.strict = strict
        self.engine = engine
        # ``isolate`` forces the pool path even for a single pending
        # spec, so a crash fault (SIGKILL) can never take down the
        # coordinating process — the containment contract a long-lived
        # server (repro.service) needs for every batch it dispatches.
        self.isolate = isolate
        # ``fuse`` selects the axis-fused family replay inside the
        # grid precompute (analytic engines only); ``fuse=False`` keeps
        # PR 7's per-cell replay — the A/B leg the axis-speedup perf
        # gate measures against.  Either way results are bit-identical.
        self.fuse = fuse
        self.last = SweepStats()
        self.last_outcome: Optional[SweepOutcome] = None
        self._env_fp: Optional[str] = None
        # RunSpecs are frozen/hashable and the environment is fixed
        # per executor, so keys memoize safely; warm replays of the
        # same grid then skip re-canonicalizing every spec.
        self._key_memo: Dict[RunSpec, str] = {}
        self._done = 0
        self._retries = 0
        self._crashes = 0
        self._phase_memo = None
        self._memo_before = (0, 0)
        # Grid-precomputed results for the sweep in flight (vector
        # engine, in-process backends): spec -> RunResult.
        self._grid: Dict[RunSpec, RunResult] = {}
        self._grid_groups = 0
        self._families_fused = 0
        self._families_rerouted = 0
        self._reroute_rules: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def key_for(self, spec: RunSpec) -> str:
        key = self._key_memo.get(spec)
        if key is None:
            if self._env_fp is None:
                self._env_fp = environment_fingerprint(self.system,
                                                       self.calib)
            key = cache_key(spec, self.system, self.calib,
                            env_fingerprint=self._env_fp)
            self._key_memo[spec] = key
        return key

    def _batch_keys(self, specs: Sequence[RunSpec]) -> None:
        """Pre-fill the key memo for a sweep, amortizing hashing work.

        Specs of one family differ only in ``iteration``, so their
        :func:`cache_key` payloads differ in exactly one JSON field.
        Canonicalize one template per family and substitute the
        iteration per member instead of re-walking the spec dataclass
        and re-fingerprinting the program for every spec.  Produces
        byte-identical keys to :func:`cache_key` (pinned by
        ``tests/harness/test_cache_key.py``).
        """
        if self._env_fp is None:
            self._env_fp = environment_fingerprint(self.system, self.calib)
        families: Dict[RunSpec, List[RunSpec]] = {}
        for spec in specs:
            if spec in self._key_memo:
                continue
            families.setdefault(dataclasses.replace(spec, iteration=0),
                                []).append(spec)
        for members in families.values():
            template = canonical(members[0])
            payload = {
                "code": CODE_VERSION,
                "spec": template,
                "program": program_fingerprint(members[0]),
                "environment": self._env_fp,
            }
            for spec in members:
                template["iteration"] = spec.iteration
                blob = json.dumps(payload, sort_keys=True,
                                  separators=(",", ":"))
                self._key_memo[spec] = hashlib.sha256(
                    blob.encode("utf-8")).hexdigest()

    def _tick(self, done: int, total: int, spec: RunSpec) -> None:
        if self.progress is not None:
            self.progress(done, total, spec)

    #: Extra read attempts absorbed before a flaky cache read degrades
    #: to a miss (the entry is then recomputed, never served torn).
    CACHE_READ_RETRIES = 2

    def _cache_get(self, spec: RunSpec, key: str) -> Optional[RunResult]:
        """One cache lookup, resilient to transient read errors.

        A read that raises :class:`OSError` (real filesystem flake or
        an injected ``flaky_io`` fault) is retried up to
        :data:`CACHE_READ_RETRIES` times, then degrades to a miss — a
        flaky disk can cost a re-simulation but can never fail a spec
        or surface a partial record.
        """
        for _ in range(self.CACHE_READ_RETRIES + 1):
            try:
                faults.maybe_flaky_io(spec)
                return self.cache.get(key)
            except OSError:
                continue
        self.cache.stats.misses += 1
        return None

    def prewarm(self, specs: Sequence[RunSpec]) -> int:
        """Hoist per-spec setup shared across the sweep.

        Builds each distinct program once (via :func:`program_for`),
        fills its fingerprint, and resolves the environment fingerprint
        — so the per-spec loop never rebuilds a program that another
        coordinate already built (``tests/harness/test_executor.py``
        asserts no redundant ``build_program`` calls).  Returns the
        number of distinct program coordinates seen.
        """
        if self._env_fp is None and (self.cache is not None
                                     or self.journal is not None):
            self._env_fp = environment_fingerprint(self.system, self.calib)
        seen = set()
        for spec in specs:
            coords = spec_coords(spec)
            if coords in seen:
                continue
            seen.add(coords)
            if self.cache is not None or self.journal is not None:
                program_fingerprint(spec)  # builds + fingerprints once
            else:
                program_for(spec)  # builds once; no digest needed
        return len(seen)

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------
    def run(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        """Execute every spec; order-preserving; cache-aware.

        The historical all-or-nothing facade: any permanently failed
        spec raises :class:`SweepFailure` (chaining the worker's
        exception), after retries per ``self.retry``. Callers that can
        use partial grids should call :meth:`run_outcomes` instead.
        """
        return self.run_outcomes(specs, strict=True).results  # type: ignore[return-value]

    def run_outcomes(self, specs: Sequence[RunSpec],
                     strict: Optional[bool] = None,
                     fresh: bool = True) -> SweepOutcome:
        """Execute every spec through the resilience layer.

        Returns a :class:`SweepOutcome` in spec order; failed,
        timed-out and skipped specs appear as non-``ok`` outcomes (with
        exception text + traceback) instead of raising. Under
        ``strict`` (argument, else ``self.strict``) the first
        *permanent* failure raises :class:`SweepFailure`. Ctrl-C and
        SIGTERM checkpoint the journal and raise
        :class:`SweepInterrupted` carrying the partial outcome.

        ``fresh=False`` keeps the attached journal's existing records
        (no clear-on-start): :meth:`run_dag` executes one DAG layer at
        a time through this method, and all layers of one sweep share
        one checkpoint.
        """
        specs = list(specs)
        strict = self.strict if strict is None else strict
        started = time.perf_counter()
        total = len(specs)
        outcomes: List[Optional[SpecOutcome]] = [None] * total
        self._done = 0
        self._retries = 0
        self._crashes = 0
        self.prewarm(specs)
        self._phase_memo = None
        self._memo_before = (0, 0)
        self._grid = {}
        self._grid_groups = 0
        self._families_fused = 0
        self._families_rerouted = 0
        self._reroute_rules = {}
        if ENGINES[self.engine].uses_phase_memo:
            # Bind the coordinator-side memo so serial and thread
            # sweeps report hit/miss deltas in the summary (process
            # workers keep private memos the coordinator cannot see).
            from ..sim.phasecache import phase_memo_for
            self._phase_memo = phase_memo_for(
                self.system or default_system(),
                self.calib or default_calibration())
            self._memo_before = self._phase_memo.stats()

        need_keys = self.cache is not None or self.journal is not None
        if need_keys:
            self._batch_keys(specs)  # key_for below then only memo-hits
            keys: List[Optional[str]] = [self.key_for(spec)
                                         for spec in specs]
        else:
            keys = [None] * total

        restore = self._install_sigterm_handler()
        try:
            # Resume pass: skip specs the journal marks permanently
            # failed; completed specs are already covered by the cache.
            if self.journal is not None and self.resume:
                journaled = self.journal.failed_keys()
                for index, spec in enumerate(specs):
                    status = journaled.get(keys[index] or "")
                    if status is not None:
                        self._settle(SpecOutcome(
                            spec=spec, index=index,
                            status=SpecStatus.SKIPPED,
                            error=f"skipped on resume (journaled {status})",
                            key=keys[index]), outcomes, total, strict,
                            journal=False, store=False)
            elif self.journal is not None and fresh:
                self.journal.clear()  # fresh sweep, fresh checkpoint

            # Cache pass.
            if self.cache is not None:
                for index, spec in enumerate(specs):
                    if outcomes[index] is not None:
                        continue
                    hit = self._cache_get(spec, keys[index])
                    if hit is not None:
                        self._settle(SpecOutcome(
                            spec=spec, index=index, status=SpecStatus.OK,
                            result=hit, from_cache=True, key=keys[index]),
                            outcomes, total, strict,
                            journal=False, store=False)

            pending = [(index, spec, keys[index])
                       for index, spec in enumerate(specs)
                       if outcomes[index] is None]
            use_pool = bool(pending) and (
                self.isolate or (self.jobs > 1 and len(pending) > 1))
            if (pending and ENGINES[self.engine].analytic
                    and (not use_pool or self.backend == "thread")):
                # Grid-level batching *before* spec fan-out: compile
                # each distinct program structure once, batch-warm the
                # phase memo across every group in one array program,
                # and replay all cache-miss specs analytically.  Only
                # in-process backends can serve from the coordinator's
                # dict; process workers keep the per-spec path.
                self._precompute_grid([spec for _, spec, _ in pending])
            if (pending and self._grid and self.fuse and not use_pool
                    and faults.active_plan() is None):
                # Bulk-settle: with no fault plan installed, a grid hit
                # cannot raise inside ``_execute_local``, so the
                # per-spec retry loop is pure overhead for precomputed
                # results — publish them directly (same order, same
                # journal/cache writes) and leave only the misses to
                # the serial path.  Rides the ``fuse`` switch so
                # ``fuse=False`` stays the exact PR 7 execution path
                # for the axis-speedup A/B measurement.
                remaining = []
                grid_get = self._grid.get
                # With no cache, journal or progress sink attached,
                # _settle reduces to the outcomes[] assignment and the
                # done counter — skip the per-spec call.
                plain = (self.cache is None and self.journal is None
                         and self.progress is None)
                settled_ok = SpecOutcome.settled_ok
                settled = 0
                for index, spec, key in pending:
                    hit = grid_get(spec)
                    if hit is None:
                        remaining.append((index, spec, key))
                        continue
                    if plain:
                        outcomes[index] = settled_ok(spec, index, hit, key)
                        settled += 1
                    else:
                        self._settle(SpecOutcome(
                            spec=spec, index=index, status=SpecStatus.OK,
                            result=hit, attempts=1, key=key),
                            outcomes, total, strict)
                self._done += settled
                pending = remaining
            if pending:
                if use_pool:
                    self._run_pool(pending, outcomes, total, strict)
                else:
                    self._run_serial(pending, outcomes, total, strict)
        except SweepFailure as failure:
            failure.partial = self._finalize(specs, outcomes, started,
                                             "aborted by strict mode")
            raise
        except KeyboardInterrupt:
            partial = self._finalize(specs, outcomes, started, "interrupted")
            raise SweepInterrupted(partial) from None
        finally:
            if restore is not None:
                try:
                    signal.signal(signal.SIGTERM, restore)
                except (ValueError, OSError):  # pragma: no cover
                    pass
        return self._finalize(specs, outcomes, started, "not scheduled")

    def run_dag(self, dag, strict: Optional[bool] = None) -> SweepOutcome:
        """Execute a compiled :class:`repro.fabric.SpecDAG` in-process.

        This is the *serial reference semantics* of the distributed
        fabric: nodes run layer by layer in the DAG's deterministic
        topological order, a node never starting before every parent
        finished. Prewarm nodes execute inline (program build + phase
        memo batch-warm for their group); run nodes go through the
        normal cache/retry/journal machinery. The returned
        :class:`SweepOutcome` is ordered by the DAG's *run nodes* —
        for a flat grid compiled with
        :func:`repro.fabric.compile_grid`, that is node-for-node the
        same sweep (and byte-identical results) as calling
        :meth:`run_outcomes` on the original spec list.
        """
        dag.validate()
        layers = dag.layers()
        merged: List[Optional[SpecOutcome]] = [None] * dag.run_count
        stats: List[SweepStats] = []
        succeeded: set = set()  # node ids whose work committed
        first = True
        for layer in layers:
            run_nodes = []
            for node in layer:
                if not node.is_run:
                    self.prewarm([s for s in (node.prewarm_specs or ())])
                    succeeded.add(node.node_id)
                elif all(parent in succeeded for parent in node.parents):
                    run_nodes.append(node)
                else:
                    # Same policy as the distributed fabric: a node
                    # whose parent never committed is never dispatched
                    # (a failed size-search probe does not fan out its
                    # mode grid).
                    merged[node.run_index] = SpecOutcome(
                        spec=node.spec, index=node.run_index,
                        status=SpecStatus.SKIPPED,
                        error="skipped: parent node failed")
            if not run_nodes:
                continue
            outcome = self.run_outcomes([node.spec for node in run_nodes],
                                        strict=strict, fresh=first)
            first = False
            stats.append(self.last)
            for node, spec_outcome in zip(run_nodes, outcome.outcomes):
                if spec_outcome.ok:
                    succeeded.add(node.node_id)
                merged[node.run_index] = dataclasses.replace(
                    spec_outcome, index=node.run_index)
        filled = [outcome if outcome is not None else SpecOutcome(
                      spec=dag.nodes[0].spec, index=position,
                      status=SpecStatus.SKIPPED, error="not scheduled")
                  for position, outcome in enumerate(merged)]
        sweep = SweepOutcome(outcomes=filled)
        if len(stats) > 1:
            # Collapse the per-layer stats into one sweep's accounting.
            total = SweepStats(jobs=self.jobs, backend=self.backend,
                               engine=self.engine)
            for layer_stats in stats:
                total.total += layer_stats.total
                total.cache_hits += layer_stats.cache_hits
                total.executed += layer_stats.executed
                total.elapsed_s += layer_stats.elapsed_s
                total.failed += layer_stats.failed
                total.timed_out += layer_stats.timed_out
                total.skipped += layer_stats.skipped
                total.retries += layer_stats.retries
                total.crashes += layer_stats.crashes
                total.phase_hits += layer_stats.phase_hits
                total.phase_misses += layer_stats.phase_misses
                total.grid_groups += layer_stats.grid_groups
                total.grid_specs += layer_stats.grid_specs
                total.families_fused += layer_stats.families_fused
                total.families_rerouted += layer_stats.families_rerouted
                for rule, count in layer_stats.reroute_rules.items():
                    total.reroute_rules[rule] = (
                        total.reroute_rules.get(rule, 0) + count)
            self.last = total
        self.last_outcome = sweep
        return sweep

    def summary(self) -> str:
        return self.last.summary()

    # ------------------------------------------------------------------
    # Shared per-spec finalization
    # ------------------------------------------------------------------
    def _settle(self, outcome: SpecOutcome,
                outcomes: List[Optional[SpecOutcome]], total: int,
                strict: bool, journal: bool = True,
                store: bool = True) -> None:
        """Publish one terminal outcome: cache, journal, tick, strict."""
        outcomes[outcome.index] = outcome
        if (store and outcome.ok and not outcome.from_cache
                and self.cache is not None and outcome.key is not None
                and outcome.result is not None):
            self.cache.put(outcome.key, outcome.result)
            if faults.should_corrupt_cache(outcome.spec):
                # Chaos hook: tear the freshly written record in place,
                # as a crash between write and rename would.
                self.cache.path_for(outcome.key).write_text('{"torn":')
        if (journal and self.journal is not None
                and outcome.key is not None and not outcome.from_cache
                and outcome.status is not SpecStatus.SKIPPED):
            self.journal.record(outcome.key, outcome.status,
                                spec=outcome.spec,
                                attempts=outcome.attempts,
                                error=outcome.error)
        self._done += 1
        self._tick(self._done, total, outcome.spec)
        if strict and outcome.status in (SpecStatus.FAILED,
                                         SpecStatus.TIMED_OUT):
            raise SweepFailure(outcome)

    def _after_failure(self, index: int, spec: RunSpec, key: Optional[str],
                       attempt: int, error: BaseException, queue: List,
                       outcomes: List[Optional[SpecOutcome]], total: int,
                       strict: bool) -> None:
        """One attempt raised: schedule a retry or settle FAILED."""
        if attempt < self.retry.max_attempts:
            self._retries += 1
            delay = self.retry.delay_s(spec, attempt)
            queue.append((index, spec, key, attempt + 1,
                          time.monotonic() + delay))
            return
        self._settle(SpecOutcome(
            spec=spec, index=index, status=SpecStatus.FAILED,
            error=f"{type(error).__name__}: {error}",
            traceback=self._format_traceback(error),
            attempts=attempt, key=key), outcomes, total, strict)

    @staticmethod
    def _format_traceback(error: BaseException) -> str:
        return "".join(traceback_module.format_exception(
            type(error), error, error.__traceback__))

    def _finalize(self, specs: Sequence[RunSpec],
                  outcomes: List[Optional[SpecOutcome]], started: float,
                  gap_reason: str) -> SweepOutcome:
        filled: List[SpecOutcome] = []
        for index, spec in enumerate(specs):
            outcome = outcomes[index]
            if outcome is None:
                outcome = SpecOutcome(spec=spec, index=index,
                                      status=SpecStatus.SKIPPED,
                                      error=gap_reason)
            filled.append(outcome)
        sweep = SweepOutcome(outcomes=filled)
        counts = sweep.counts()
        hits = sum(1 for outcome in filled if outcome.from_cache)
        phase_hits = phase_misses = 0
        if self._phase_memo is not None:
            phase_hits = self._phase_memo.hits - self._memo_before[0]
            phase_misses = self._phase_memo.misses - self._memo_before[1]
        self.last = SweepStats(
            total=len(filled), cache_hits=hits,
            executed=len(filled) - hits - counts["skipped"],
            elapsed_s=time.perf_counter() - started,
            jobs=self.jobs, backend=self.backend,
            failed=counts["failed"], timed_out=counts["timed_out"],
            skipped=counts["skipped"], retries=self._retries,
            crashes=self._crashes, engine=self.engine,
            phase_hits=phase_hits, phase_misses=phase_misses,
            grid_groups=self._grid_groups, grid_specs=len(self._grid),
            families_fused=self._families_fused,
            families_rerouted=self._families_rerouted,
            reroute_rules=dict(self._reroute_rules))
        self.last_outcome = sweep
        return sweep

    def _install_sigterm_handler(self):
        """SIGTERM -> KeyboardInterrupt for the sweep's duration, so
        ``kill <pid>`` checkpoints exactly like Ctrl-C. Main thread
        only (``signal.signal`` raises elsewhere)."""
        if threading.current_thread() is not threading.main_thread():
            return None
        owner_pid = os.getpid()

        def _handler(signum, frame):  # pragma: no cover - signal path
            if os.getpid() != owner_pid:
                # A forked worker inherited this handler; when the
                # coordinator terminates it, die quietly like SIG_DFL
                # instead of raising KeyboardInterrupt into the worker.
                os._exit(143)
            raise KeyboardInterrupt

        try:
            return signal.signal(signal.SIGTERM, _handler)
        except (ValueError, OSError):  # pragma: no cover - exotic host
            return None

    # ------------------------------------------------------------------
    # Whole-grid precompute (vector engine, in-process backends)
    # ------------------------------------------------------------------
    def _precompute_grid(self, specs: Sequence[RunSpec]) -> None:
        """Compile each program structure once and replay every spec.

        Two tiers of batching feed ``self._grid``:

        * **Coordinate groups** (PR 7): specs sharing ``(coords, mode,
          carveout)`` share one compiled tape; the phase memo is
          batch-warmed across every group in one array program before
          any compile runs.
        * **Families** (axis fusion, ``fuse=True``): coordinate groups
          sharing ``(workload, mode, base_seed, seed_salt)`` and
          varying along at most one sensitivity axis fuse into a
          single 2-D array program — one compile per cell (siblings
          derived from the head cell's tape when the program structure
          matches), one classifier proof and one vectorized replay for
          the whole family (:func:`repro.sim.vecgrid.replay_family`).

        Anything that cannot be precomputed — a classifier reroute, a
        contention bail, a compile error, an unsupported structure —
        falls back a tier (family -> per-cell -> per-spec path), so
        this method can only accelerate, never change, a sweep's
        results.  Reroutes are tallied into ``self._reroute_rules``
        for the ``[sweep]`` summary.
        """
        from ..core.execution import (compile_program, derive_compiled,
                                      iter_phase_cells,
                                      program_structure_key)
        from ..sim.vecgrid import (FamilyRerouted, compile_family,
                                   prewarm_phase_memo)
        system = self.system or default_system()
        calib = self.calib or default_calibration()
        memo = self._phase_memo
        kernel_sim = memo.simulate if memo is not None else None
        groups: Dict[Tuple, List[RunSpec]] = {}
        for spec in specs:
            group_key = (spec_coords(spec), spec.mode,
                         spec.smem_carveout_bytes)
            groups.setdefault(group_key, []).append(spec)
        try:
            if memo is not None:
                # One cross-group batch: every phase cell the whole
                # sweep will request, evaluated in a single vectorized
                # pass before any compile runs.
                cells: List[Tuple] = []
                for (_, mode, carveout), members in groups.items():
                    cells.extend(iter_phase_cells(program_for(members[0]),
                                                  mode, carveout, system))
                prewarm_phase_memo(memo, cells)
            if not self.fuse:
                for (_, mode, carveout), members in groups.items():
                    program = program_for(members[0])
                    try:
                        compiled = compile_program(
                            program, mode, system, calib,
                            smem_carveout_bytes=carveout,
                            kernel_sim=kernel_sim)
                    except Exception:
                        continue  # per-spec path handles this group
                    self._grid_groups += 1
                    self._replay_cells(compiled, members, system, calib)
                return
            families: Dict[Tuple, Dict[Tuple, List[RunSpec]]] = {}
            for group_key, members in groups.items():
                spec0 = members[0]
                fam_key = (spec0.workload, spec0.mode, spec0.base_seed,
                           spec0.seed_salt)
                families.setdefault(fam_key, {})[group_key] = members
            for cell_map in families.values():
                for run in _axis_split(cell_map):
                    # Compile every cell of the axis run; siblings with
                    # the head's program structure derive their tape
                    # instead of re-driving the process generators.
                    fused_cells = []  # (group_key, members, compiled)
                    head = None       # (compiled, structure_key)
                    for group_key, members in run:
                        (_, mode, carveout) = group_key
                        program = program_for(members[0])
                        compiled = None
                        try:
                            if (head is not None
                                    and program_structure_key(program)
                                    == head[1]):
                                compiled = derive_compiled(
                                    head[0], program, system, calib,
                                    smem_carveout_bytes=carveout,
                                    kernel_sim=kernel_sim)
                            if compiled is None:
                                compiled = compile_program(
                                    program, mode, system, calib,
                                    smem_carveout_bytes=carveout,
                                    kernel_sim=kernel_sim)
                                if head is None:
                                    head = (compiled,
                                            program_structure_key(program))
                        except Exception:
                            continue  # per-spec path handles this cell
                        self._grid_groups += 1
                        fused_cells.append((group_key, members, compiled))
                    if not fused_cells:
                        continue
                    fam = None
                    if sum(len(m) for _, m, _ in fused_cells) > 1:
                        try:
                            fam = compile_family(
                                [c for _, _, c in fused_cells], calib)
                        except FamilyRerouted as rerouted:
                            self._families_rerouted += 1
                            self._count_reroute(rerouted.rule)
                    if fam is None:
                        for _, members, compiled in fused_cells:
                            self._replay_cells(compiled, members,
                                               system, calib)
                        continue
                    self._families_fused += 1
                    self._replay_fused(fam, fused_cells, system, calib)
        except Exception:  # pragma: no cover - defensive
            # A broken precompute must never take the sweep down; the
            # per-spec path recomputes anything missing or partial.
            self._grid.clear()
            self._grid_groups = 0

    def _count_reroute(self, rule: str, count: int = 1) -> None:
        self._reroute_rules[rule] = self._reroute_rules.get(rule, 0) + count

    def _replay_cells(self, compiled, members: Sequence[RunSpec],
                      system, calib) -> None:
        """Per-cell replay (the PR 7 path): one scalar replay per spec
        from its coordinate group's compiled tape."""
        from ..core.execution import replay_result
        from ..sim.vecgrid import ContentionDetected
        for spec in members:
            rng = rng_for_spec(spec)
            try:
                self._grid[spec] = replay_result(
                    compiled, spec.mode, rng, system, calib,
                    spec.size, spec.iteration)
            except ContentionDetected:
                # Per-spec path re-routes to the event engine; make
                # the reroute visible in the sweep summary.
                self._count_reroute("contention")

    def _replay_fused(self, fam, fused_cells, system, calib) -> None:
        """One vectorized replay for a whole family's specs.

        Mirrors the scalar draw order exactly: per draw stream,
        restore the memoized PCG64 state onto one shared generator,
        draw the host placement, then fill that stream's row of the
        standard-normal matrix (``standard_normal(n)`` is
        prefix-stable, so ``cols`` draws match the head of the scalar
        path's ``draws`` batch).  The per-spec seed key does not
        include the fused axis, so specs that differ only along it
        share an identical stream — each distinct ``(size, iteration,
        spill footprint)`` is drawn once and gathered onto its rows.
        Rows whose per-spec residual guards fail fall back to the
        scalar per-cell replay.
        """
        from ..sim.hostmem import place_host_data
        from ..sim.vecgrid import replay_family
        noise = calib.noise
        cpu = system.cpu
        chip_bytes = cpu.dram_chip_bytes
        headroom = noise.spill_threshold
        cols = fam.cols
        count = sum(len(members) for _, members, _ in fused_cells)
        cell_index = np.repeat(
            np.arange(len(fused_cells), dtype=np.intp),
            [len(members) for _, members, _ in fused_cells])
        # Below the spill threshold the placement is deterministic
        # (multiplier 1.0, zero RNG consumption); above it the stream
        # depends on the footprint.  Same float predicate as
        # place_host_data.
        cell_fp = []
        for _, _, compiled in fused_cells:
            footprint = compiled.footprint_bytes
            spills = not (footprint / chip_bytes <= headroom)
            cell_fp.append((spills, footprint,
                            footprint if spills else None))
        # When neither the size nor the spill class varies across
        # cells, the stream key collapses to the iteration alone.
        uniform = (len({fp for _, _, fp in cell_fp}) == 1
                   and len({m[0].size for _, m, _ in fused_cells}) == 1)
        draw_index: Dict = {}
        draws: List[Tuple[RunSpec, bool, int]] = []  # (spec, spills, fp)
        gather = np.empty(count, dtype=np.intp)
        row = 0
        for cell_pos, (_, members, _) in enumerate(fused_cells):
            spills, footprint, fp_key = cell_fp[cell_pos]
            for spec in members:
                key = (spec.iteration if uniform
                       else (spec.size, spec.iteration, fp_key))
                index = draw_index.get(key)
                if index is None:
                    index = len(draws)
                    draw_index[key] = index
                    draws.append((spec, spills, footprint))
                gather[row] = index
                row += 1
        mult = np.ones(len(draws), dtype=np.float64)
        z = np.empty((len(draws), cols), dtype=np.float64)
        shared = np.random.Generator(np.random.PCG64())
        bitgen = shared.bit_generator
        for index, (spec, spills, footprint) in enumerate(draws):
            if cols or spills:
                bitgen.state = rng_state_for_spec(spec)
            if spills:
                mult[index] = place_host_data(
                    footprint, cpu, noise, shared).time_multiplier
            if cols:
                shared.standard_normal(out=z[index])
        rep = replay_family(fam, cell_index, mult[gather], z[gather])
        valid = rep.valid.tolist()
        alloc = rep.alloc_ns.tolist()
        memcpy = rep.memcpy_ns.tolist()
        kernel = rep.kernel_ns.tolist()
        wall = rep.wall_ns.tolist()
        busy = rep.gpu_busy.tolist()
        # The range checks stand in for RunResult's __post_init__ (see
        # RunResult.replayed); a negative component re-routes like any
        # other guard failure.  One vectorized precheck skips the
        # per-row tests on the (overwhelmingly common) clean replay.
        checks = not (rep.valid.all()
                      and not (rep.alloc_ns < 0.0).any()
                      and not (rep.memcpy_ns < 0.0).any()
                      and not (rep.kernel_ns < 0.0).any()
                      and not (rep.wall_ns < 0.0).any())
        grid = self._grid
        replayed = RunResult.replayed
        invalid = 0
        row = 0
        for _, members, compiled in fused_cells:
            name = compiled.name
            counters = compiled.counters
            occupancy = compiled.occupancy
            for spec in members:
                i = row
                row += 1
                a = alloc[i]
                m = memcpy[i]
                k = kernel[i]
                w = wall[i]
                if checks and (not valid[i] or a < 0.0 or m < 0.0
                               or k < 0.0 or w < 0.0):
                    invalid += 1
                    self._replay_cells(compiled, (spec,), system, calib)
                    continue
                grid[spec] = replayed({
                    "workload": name, "mode": spec.mode,
                    "size": spec.size, "seed": spec.iteration,
                    "alloc_ns": a, "memcpy_ns": m, "kernel_ns": k,
                    "wall_ns": w, "counters": counters,
                    "occupancy": occupancy, "gpu_busy_fraction": busy[i]})
        if invalid:
            self._count_reroute("residual-guard", invalid)

    def _execute_local(self, spec: RunSpec, attempt: int) -> RunResult:
        """One in-process attempt: grid-precomputed result, else cold.

        The fault-injection hook still fires first so resilience tests
        exercise retry/timeout paths identically on every engine.
        """
        hit = self._grid.get(spec)
        if hit is not None:
            faults.maybe_fire(spec, attempt)
            return hit
        # Late module-level lookup, not a direct execute_spec call:
        # tests monkeypatch _execute_entry as the serial choke point.
        return _execute_entry((spec, self.system, self.calib, attempt,
                               self.engine))

    # ------------------------------------------------------------------
    # Serial (jobs=1) execution with retry/backoff
    # ------------------------------------------------------------------
    def _run_serial(self, pending: List[Tuple[int, RunSpec, Optional[str]]],
                    outcomes: List[Optional[SpecOutcome]], total: int,
                    strict: bool) -> None:
        policy = self.retry
        for index, spec, key in pending:
            attempt = 0
            while True:
                attempt += 1
                try:
                    run = self._execute_local(spec, attempt)
                except KeyboardInterrupt:
                    raise
                except Exception as error:
                    if attempt < policy.max_attempts:
                        self._retries += 1
                        delay = policy.delay_s(spec, attempt)
                        if delay > 0:
                            time.sleep(delay)
                        continue
                    self._settle(SpecOutcome(
                        spec=spec, index=index, status=SpecStatus.FAILED,
                        error=f"{type(error).__name__}: {error}",
                        traceback=self._format_traceback(error),
                        attempts=attempt, key=key), outcomes, total, strict)
                    break
                else:
                    self._settle(SpecOutcome(
                        spec=spec, index=index, status=SpecStatus.OK,
                        result=run, attempts=attempt, key=key),
                        outcomes, total, strict)
                    break

    # ------------------------------------------------------------------
    # Pooled execution: submit/wait with failure isolation
    # ------------------------------------------------------------------
    def _new_pool(self, workers: int):
        pool_cls = (ProcessPoolExecutor if self.backend == "process"
                    else ThreadPoolExecutor)
        return pool_cls(max_workers=workers)

    @staticmethod
    def _hard_shutdown(pool) -> None:
        """Tear a pool down without joining: cancel queued work and
        terminate worker processes (a hung worker never joins)."""
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - defensive
            pass
        processes = getattr(pool, "_processes", None)
        if processes:
            for process in list(processes.values()):
                try:
                    process.terminate()
                except Exception:  # pragma: no cover - already gone
                    pass

    def _run_pool(self, pending: List[Tuple[int, RunSpec, Optional[str]]],
                  outcomes: List[Optional[SpecOutcome]], total: int,
                  strict: bool) -> None:
        """submit()/wait() loop with per-spec isolation.

        Unlike the old ``pool.map``, every spec gets its own future, so
        one raising spec cannot poison its chunk-mates; per-future
        deadlines (process backend) time out hung workers; and
        ``BrokenProcessPool`` rebuilds the pool, requeues survivors,
        and quarantines poison specs after ``retry.max_crashes``
        crashes. Results still land in spec order via ``outcomes``.

        Poison identification: the first pool break cannot tell which
        in-flight spec killed the worker, so every victim gets one
        crash credit and becomes a *suspect*. Suspects then run in
        isolation — at most one in flight at a time — and a later
        break with a suspect in flight credits only that suspect, so
        an innocent bystander can never accumulate enough credits to
        be quarantined alongside the real poison.
        """
        policy = self.retry
        workers = min(self.jobs, len(pending))
        use_deadline = (self.backend == "process"
                        and policy.timeout_s is not None)
        # queue items: (index, spec, key, attempt, not_before)
        queue: List[Tuple[int, RunSpec, Optional[str], int, float]] = [
            (index, spec, key, 1, 0.0) for index, spec, key in pending]
        crashes: Dict[int, int] = {}
        in_flight: Dict = {}
        pool = self._new_pool(workers)
        try:
            while queue or in_flight:
                now = time.monotonic()
                victims: List[Tuple] = []

                # 1. Fill free slots with eligible (not backing-off) work.
                # Suspects (specs with crash credit) run one at a time.
                while len(in_flight) < workers and not victims:
                    suspect_in_flight = any(meta[0] in crashes
                                            for meta in in_flight.values())
                    slot = next((position for position, item
                                 in enumerate(queue)
                                 if item[4] <= now
                                 and (item[0] not in crashes
                                      or not suspect_in_flight)),
                                None)
                    if slot is None:
                        break
                    index, spec, key, attempt, _ = queue.pop(slot)
                    try:
                        if self.backend == "process":
                            future = pool.submit(
                                _execute_entry,
                                (spec, self.system, self.calib, attempt,
                                 self.engine))
                        else:
                            # Threads share the coordinator's memory, so
                            # they can serve grid-precomputed results.
                            future = pool.submit(self._execute_local,
                                                 spec, attempt)
                    except BrokenExecutor:
                        victims.append((index, spec, key, attempt))
                        break
                    deadline = (now + policy.timeout_s
                                if use_deadline else None)
                    in_flight[future] = (index, spec, key, attempt, deadline)

                if victims:
                    pool = self._rebuild_after_crash(
                        pool, workers, victims, in_flight, queue, crashes,
                        outcomes, total, strict)
                    continue

                if not in_flight:
                    # Everything queued is backing off; sleep to the
                    # soonest eligibility.
                    soonest = min(item[4] for item in queue)
                    time.sleep(max(0.0, soonest - time.monotonic()))
                    continue

                # 2. Wait for a completion, the nearest deadline, or the
                # next backoff eligibility — whichever comes first.
                # (Only *schedulable* queue items count toward the
                # eligibility wait: a suspect blocked behind another
                # in-flight suspect must not spin the loop hot.)
                wait_s = None
                deadlines = [meta[4] for meta in in_flight.values()
                             if meta[4] is not None]
                if deadlines:
                    wait_s = max(0.0, min(deadlines) - now)
                if queue and len(in_flight) < workers:
                    suspect_in_flight = any(meta[0] in crashes
                                            for meta in in_flight.values())
                    etas = [item[4] for item in queue
                            if item[0] not in crashes
                            or not suspect_in_flight]
                    if etas:
                        eta = max(0.0, min(etas) - now)
                        wait_s = eta if wait_s is None else min(wait_s, eta)
                done, _ = futures_wait(set(in_flight), timeout=wait_s,
                                       return_when=FIRST_COMPLETED)

                # 3. Harvest completions; collect crash victims.
                for future in done:
                    index, spec, key, attempt, _ = in_flight.pop(future)
                    error = future.exception()
                    if isinstance(error, BrokenExecutor):
                        victims.append((index, spec, key, attempt))
                    elif error is not None:
                        self._after_failure(index, spec, key, attempt,
                                            error, queue, outcomes, total,
                                            strict)
                    else:
                        # Completing exonerates a suspect: it leaves
                        # isolation scheduling.
                        survived = crashes.pop(index, 0)
                        self._settle(SpecOutcome(
                            spec=spec, index=index, status=SpecStatus.OK,
                            result=future.result(), attempts=attempt,
                            crashes=survived, key=key),
                            outcomes, total, strict)

                if victims:
                    pool = self._rebuild_after_crash(
                        pool, workers, victims, in_flight, queue, crashes,
                        outcomes, total, strict)
                    continue

                # 4. Expire hung workers (process backend only).
                if use_deadline:
                    now = time.monotonic()
                    expired = [future for future, meta in in_flight.items()
                               if meta[4] is not None and now >= meta[4]
                               and not future.done()]
                    if expired:
                        pool = self._expire_and_rebuild(
                            pool, workers, expired, in_flight, queue,
                            outcomes, total, strict)
        except BaseException:
            self._hard_shutdown(pool)
            raise
        else:
            pool.shutdown(wait=True)

    def _rebuild_after_crash(self, pool, workers: int,
                             victims: List[Tuple], in_flight: Dict,
                             queue: List, crashes: Dict[int, int],
                             outcomes: List[Optional[SpecOutcome]],
                             total: int, strict: bool):
        """A worker process died (``BrokenProcessPool``): salvage any
        futures that finished before the crash, requeue the rest,
        credit the likeliest culprits, quarantine specs that crossed
        ``max_crashes``, and hand back a fresh pool.

        Crediting: if a known suspect (prior crash credit) was in
        flight, only suspects are credited — the scheduler runs at
        most one suspect at a time, so the blame is precise and
        innocent co-victims are requeued free. On a first break (no
        suspects yet) every victim is credited; they all become
        suspects and are subsequently isolated.
        """
        self._crashes += 1
        for future, meta in list(in_flight.items()):
            index, spec, key, attempt, _ = meta
            del in_flight[future]
            error = (future.exception() if future.done() else
                     BrokenExecutor("in flight at pool crash"))
            if error is None:  # finished before the pool broke
                self._settle(SpecOutcome(
                    spec=spec, index=index, status=SpecStatus.OK,
                    result=future.result(), attempts=attempt, key=key),
                    outcomes, total, strict)
            elif isinstance(error, BrokenExecutor):
                victims.append((index, spec, key, attempt))
            else:
                self._after_failure(index, spec, key, attempt, error,
                                    queue, outcomes, total, strict)
        self._hard_shutdown(pool)
        now = time.monotonic()
        suspects_present = any(index in crashes
                               for index, _, _, _ in victims)
        for index, spec, key, attempt in victims:
            if suspects_present and index not in crashes:
                # An identified suspect was in flight; this innocent
                # bystander is requeued without a crash credit.
                queue.append((index, spec, key, attempt, now))
                continue
            crashes[index] = crashes.get(index, 0) + 1
            if crashes[index] >= self.retry.max_crashes:
                self._settle(SpecOutcome(
                    spec=spec, index=index, status=SpecStatus.FAILED,
                    error=("worker process crashed; quarantined as poison "
                           f"after {crashes[index]} pool crash(es)"),
                    attempts=attempt, crashes=crashes[index], key=key),
                    outcomes, total, strict)
            else:
                # A crash is not a failed *attempt* — the spec never
                # finished running — so requeue at the same attempt.
                queue.append((index, spec, key, attempt, now))
        return self._new_pool(workers)

    def _expire_and_rebuild(self, pool, workers: int, expired: List,
                            in_flight: Dict, queue: List,
                            outcomes: List[Optional[SpecOutcome]],
                            total: int, strict: bool):
        """Per-spec deadlines tripped: the workers running them are
        stuck, so retry/fail the hung specs, salvage finished futures,
        requeue the innocent in-flight ones, and rebuild the pool
        (terminating the stuck workers)."""
        policy = self.retry
        now = time.monotonic()
        for future in expired:
            index, spec, key, attempt, _ = in_flight.pop(future)
            if attempt < policy.max_attempts:
                self._retries += 1
                delay = policy.delay_s(spec, attempt)
                queue.append((index, spec, key, attempt + 1, now + delay))
            else:
                self._settle(SpecOutcome(
                    spec=spec, index=index, status=SpecStatus.TIMED_OUT,
                    error=(f"exceeded {policy.timeout_s:g}s wall-clock "
                           f"budget on attempt {attempt}"),
                    attempts=attempt, key=key), outcomes, total, strict)
        for future, meta in list(in_flight.items()):
            index, spec, key, attempt, _ = meta
            del in_flight[future]
            if future.done() and not isinstance(future.exception(),
                                                BrokenExecutor):
                error = future.exception()
                if error is not None:
                    self._after_failure(index, spec, key, attempt, error,
                                        queue, outcomes, total, strict)
                else:
                    self._settle(SpecOutcome(
                        spec=spec, index=index, status=SpecStatus.OK,
                        result=future.result(), attempts=attempt, key=key),
                        outcomes, total, strict)
            else:
                queue.append((index, spec, key, attempt, now))
        self._hard_shutdown(pool)
        return self._new_pool(workers)


# ----------------------------------------------------------------------
# Regrouping executor output into the classic result containers
# ----------------------------------------------------------------------
def collect_runsets(results: Iterable[RunResult]
                    ) -> Dict[Tuple[str, str, TransferMode], RunSet]:
    """Group flat results into RunSets keyed (workload, size, mode).

    Insertion order follows first appearance, so a grid expanded with
    :func:`expand_grid` regroups into the same iteration order the
    serial loops produced.
    """
    grouped: Dict[Tuple[str, str, TransferMode], RunSet] = {}
    for run in results:
        key = (run.workload, run.size, run.mode)
        if key not in grouped:
            grouped[key] = RunSet(workload=run.workload, mode=run.mode,
                                  size=run.size)
        grouped[key].add(run)
    return grouped


def collect_comparisons(results: Iterable[RunResult]
                        ) -> Dict[Tuple[str, str], ModeComparison]:
    """Group flat results into ModeComparisons keyed (workload, size)."""
    comparisons: Dict[Tuple[str, str], ModeComparison] = {}
    for key, runs in collect_runsets(results).items():
        workload, size, _ = key
        if (workload, size) not in comparisons:
            comparisons[(workload, size)] = ModeComparison(
                workload=workload, size=size)
        comparisons[(workload, size)].add(runs)
    return comparisons


def ensure_executor(executor: Optional[SweepExecutor]) -> SweepExecutor:
    """The caller's executor, or a fresh default (serial, no cache,
    ``REPRO_JOBS`` honored)."""
    return executor if executor is not None else SweepExecutor()
