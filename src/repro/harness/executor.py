"""Parallel sweep executor with a content-addressed result cache.

Every figure of the paper re-runs a (workload x size x mode x
iteration) grid. Because each run is seeded purely from its
coordinates (:func:`repro.core.experiment.run_seed`), the grid is
*embarrassingly pure*: any cell can run anywhere, in any order, and
produce bit-identical results. This module exploits that:

* :class:`RunSpec` - one grid cell as a small, picklable value object;
* :func:`expand_grid` - flatten a figure sweep into a spec list;
* :class:`ResultCache` - a content-addressed, on-disk memo of finished
  runs (key = stable hash of spec + program structure + hardware model
  + calibration + code-version salt), reusing the
  :mod:`repro.harness.store` record schema;
* :class:`SweepExecutor` - fans specs out over a thread/process pool
  and fills cache hits without re-simulating, preserving input order.

Determinism contract: for any spec list, ``SweepExecutor(jobs=1)``,
``SweepExecutor(jobs=N)`` (either backend) and a warm-cache replay all
return byte-identical serialized :class:`~repro.core.results.RunResult`
sequences. ``tests/harness/test_executor.py`` pins this down.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import (Callable, Dict, Iterable, List, Optional, Sequence,
                    Tuple, Union)

import numpy as np

from ..core.configs import ALL_MODES, TransferMode
from ..core.execution import execute_program
from ..core.experiment import run_seed
from ..core.results import ModeComparison, RunResult, RunSet
from ..sim.calibration import Calibration, default_calibration
from ..sim.hardware import SystemSpec, default_system
from ..workloads.sizes import SizeClass
from .store import record_to_run, run_to_record

#: Bump when the simulator's semantics change in ways the hashed inputs
#: (program structure, hardware spec, calibration constants) cannot
#: see, to invalidate every previously cached result.
CODE_VERSION = "executor-v1"

#: Environment knobs picked up as defaults (CI's parallel leg sets
#: ``REPRO_JOBS=2`` so the whole tier-1 suite exercises the pool path).
JOBS_ENV = "REPRO_JOBS"
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

Backend = str  # "thread" | "process"
_BACKENDS = ("thread", "process")


def default_jobs() -> int:
    """Worker count: the ``REPRO_JOBS`` env var, else 1 (serial)."""
    try:
        return max(1, int(os.environ.get(JOBS_ENV, "1")))
    except ValueError:
        return 1


def default_cache_dir() -> Path:
    """``REPRO_CACHE_DIR`` if set, else ``~/.cache/repro/results``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro" / "results"


# ----------------------------------------------------------------------
# RunSpec: one pure grid cell
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunSpec:
    """One simulated run, identified purely by its coordinates.

    A spec carries everything needed to reproduce the run bit-exactly:
    grid coordinates (workload, size, mode, iteration), the sweep's
    base seed, and the optional launch-geometry / shared-memory
    overrides the sensitivity studies use. ``seed_salt`` is appended
    to the workload token of the per-run seed so that geometry sweeps
    keep their historical seed stream (``"<name>:sweep"``).
    """

    workload: str
    size: str
    mode: TransferMode
    iteration: int = 0
    base_seed: int = 1234
    blocks: Optional[int] = None
    threads: Optional[int] = None
    smem_carveout_bytes: Optional[int] = None
    seed_salt: str = ""

    def __post_init__(self) -> None:
        if self.iteration < 0:
            raise ValueError("iteration must be >= 0")
        SizeClass.from_label(self.size)  # validates the label
        if isinstance(self.mode, str):  # tolerate labels
            object.__setattr__(self, "mode",
                               TransferMode.from_label(self.mode))

    @property
    def size_class(self) -> SizeClass:
        return SizeClass.from_label(self.size)

    @property
    def has_geometry(self) -> bool:
        return self.blocks is not None or self.threads is not None

    def seed_sequence(self) -> np.random.SeedSequence:
        """Same seed stream as :class:`~repro.core.experiment.Experiment`."""
        return run_seed(self.base_seed, self.workload + self.seed_salt,
                        self.size, self.mode, self.iteration)

    def build_program(self):
        """The (immutable) device program this spec runs."""
        from ..workloads.registry import get_workload
        subject = get_workload(self.workload)
        if self.has_geometry:
            builder = getattr(subject, "program_with_geometry", None)
            if builder is None:
                raise ValueError(
                    f"workload {self.workload!r} does not support launch-"
                    "geometry overrides (no program_with_geometry)")
            return builder(self.size_class, blocks=self.blocks,
                           threads=self.threads)
        return subject.program(self.size_class)

    def supported(self) -> bool:
        from ..workloads.registry import get_workload
        return get_workload(self.workload).supports(self.size_class)


def expand_grid(workloads: Sequence[str],
                sizes: Sequence[Union[SizeClass, str]],
                modes: Sequence[TransferMode] = ALL_MODES,
                iterations: int = 1,
                base_seed: int = 1234,
                skip_unsupported: bool = True,
                **overrides) -> List[RunSpec]:
    """Flatten a sweep into specs, in deterministic nested order.

    Order is size-major, then workload, mode, iteration - the order
    the serial figure loops have always used. Workloads that decline a
    size (:meth:`Workload.supports`) are skipped when
    ``skip_unsupported`` (the paper's omitted Mega cells); otherwise
    the executor will raise when the cell runs.
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    specs: List[RunSpec] = []
    for size in sizes:
        label = size.label if isinstance(size, SizeClass) else \
            SizeClass.from_label(size).label
        for name in workloads:
            spec0 = RunSpec(workload=name, size=label, mode=modes[0],
                            base_seed=base_seed, **overrides)
            if skip_unsupported and not spec0.supported():
                continue
            for mode in modes:
                for iteration in range(iterations):
                    specs.append(dataclasses.replace(
                        spec0, mode=mode, iteration=iteration))
    return specs


# ----------------------------------------------------------------------
# Content-addressed cache keys
# ----------------------------------------------------------------------
def canonical(obj):
    """Recursively normalize a value into a JSON-stable structure.

    Dataclasses become ``{"__type__": name, fields...}`` so that two
    different spec types with the same field values cannot collide;
    enums become their value; dicts are sorted by stringified key.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        out = {"__type__": type(obj).__name__}
        for f in dataclasses.fields(obj):
            out[f.name] = canonical(getattr(obj, f.name))
        return out
    if isinstance(obj, enum.Enum):
        return canonical(obj.value)
    if isinstance(obj, dict):
        return {str(canonical(key)): canonical(value)
                for key, value in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if isinstance(obj, (list, tuple)):
        return [canonical(item) for item in obj]
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(f"cannot canonicalize {type(obj).__name__}")


def fingerprint(obj) -> str:
    """Stable SHA-256 hex digest of a canonicalized value."""
    payload = json.dumps(canonical(obj), sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# Program structure changes rarely relative to sweep width; memoize its
# fingerprint per coordinates so warm-cache lookups stay O(file read).
_PROGRAM_FP_CACHE: Dict[Tuple, str] = {}


def program_fingerprint(spec: RunSpec) -> str:
    """Fingerprint of the program the spec runs (descriptor + buffers).

    Editing any workload descriptor (kernel geometry, tile sizes,
    instruction mix, buffer directions...) changes this digest, which
    invalidates every cached result for the workload - rule 2 of
    docs/EXECUTOR.md.
    """
    coords = (spec.workload, spec.size, spec.blocks, spec.threads)
    cached = _PROGRAM_FP_CACHE.get(coords)
    if cached is None:
        cached = fingerprint(spec.build_program())
        _PROGRAM_FP_CACHE[coords] = cached
    return cached


def cache_key(spec: RunSpec,
              system: Optional[SystemSpec] = None,
              calib: Optional[Calibration] = None,
              env_fingerprint: Optional[str] = None) -> str:
    """Content-addressed key for one run.

    The key covers everything the result depends on: the full spec,
    the structure of the program it executes, the hardware model, the
    calibration constants, and a code-version salt. Any perturbation
    of any field produces a different key (property-tested in
    ``tests/harness/test_cache_key.py``), and keys are stable across
    processes and interpreter restarts (no ``hash()`` anywhere).
    """
    if env_fingerprint is None:
        env_fingerprint = environment_fingerprint(system, calib)
    payload = {
        "code": CODE_VERSION,
        "spec": canonical(spec),
        "program": program_fingerprint(spec),
        "environment": env_fingerprint,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def environment_fingerprint(system: Optional[SystemSpec] = None,
                            calib: Optional[Calibration] = None) -> str:
    """One digest for the (hardware model, calibration) pair."""
    return fingerprint({
        "system": system or default_system(),
        "calib": calib or default_calibration(),
    })


# ----------------------------------------------------------------------
# Result cache
# ----------------------------------------------------------------------
@dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`ResultCache`."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def reset(self) -> None:
        self.hits = self.misses = self.stores = 0


class ResultCache:
    """Content-addressed on-disk memo of completed runs.

    Layout: ``<root>/<key[:2]>/<key>.json``, one store-schema record
    per file (the :mod:`repro.harness.store` JSON-lines schema, with
    counters persisted so figure 9/10 sweeps replay exactly). Files
    are written atomically (temp + rename) so concurrent workers and
    interrupted sweeps can never publish a torn record; corrupt or
    unreadable entries degrade to cache misses and are overwritten.
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.stats = CacheStats()

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[RunResult]:
        path = self.path_for(key)
        try:
            record = json.loads(path.read_text())
            run = record_to_run(record)
        except (OSError, ValueError, KeyError):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return run

    def put(self, key: str, run: RunResult) -> None:
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        record = run_to_record(run, with_counters=True)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(record))
        tmp.replace(path)  # atomic on POSIX
        self.stats.stores += 1

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def clear(self) -> int:
        """Delete every cached record; returns how many were removed."""
        removed = 0
        for path in self.root.glob("*/*.json"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def execute_spec(spec: RunSpec,
                 system: Optional[SystemSpec] = None,
                 calib: Optional[Calibration] = None) -> RunResult:
    """Run one spec cold. Bit-identical to ``Experiment.run_one``."""
    program = spec.build_program()
    rng = np.random.default_rng(spec.seed_sequence())
    return execute_program(
        program, spec.mode,
        system=system or default_system(),
        calib=calib or default_calibration(),
        rng=rng,
        seed=spec.iteration,
        smem_carveout_bytes=spec.smem_carveout_bytes,
        size_label=spec.size,
    )


def _execute_entry(entry: Tuple[RunSpec, Optional[SystemSpec],
                                Optional[Calibration]]) -> RunResult:
    """Module-level worker so ProcessPoolExecutor can pickle it."""
    spec, system, calib = entry
    return execute_spec(spec, system=system, calib=calib)


@dataclass
class SweepStats:
    """Accounting for the most recent :meth:`SweepExecutor.run`."""

    total: int = 0
    cache_hits: int = 0
    executed: int = 0
    elapsed_s: float = 0.0
    jobs: int = 1
    backend: Backend = "thread"

    def summary(self) -> str:
        parts = [f"{self.total} runs", f"{self.cache_hits} cache hits",
                 f"{self.executed} executed in {self.elapsed_s:.2f}s"]
        if self.executed and self.jobs > 1:
            parts.append(f"{self.jobs} {self.backend} workers")
        return "[sweep] " + ", ".join(parts)


ProgressFn = Callable[[int, int, RunSpec], None]


class SweepExecutor:
    """Runs spec lists, in parallel, through the result cache.

    * ``jobs=1`` executes inline (no pool, no pickling) - the
      reference serial order.
    * ``jobs>1`` fans cache misses out over a
      :class:`ThreadPoolExecutor` (default; the NumPy-heavy simulator
      releases little of the GIL, but threads cost nothing to spawn)
      or a :class:`ProcessPoolExecutor` (``backend="process"``; true
      parallelism, requires picklable specs - which RunSpecs are).

    Results always come back in spec order regardless of completion
    order, so downstream grouping never depends on scheduling.
    """

    def __init__(self, jobs: Optional[int] = None,
                 cache: Optional[ResultCache] = None,
                 system: Optional[SystemSpec] = None,
                 calib: Optional[Calibration] = None,
                 backend: Backend = "thread",
                 progress: Optional[ProgressFn] = None):
        if backend not in _BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {_BACKENDS}")
        self.jobs = default_jobs() if jobs is None else max(1, int(jobs))
        self.cache = cache
        self.system = system
        self.calib = calib
        self.backend = backend
        self.progress = progress
        self.last = SweepStats()
        self._env_fp: Optional[str] = None
        # RunSpecs are frozen/hashable and the environment is fixed
        # per executor, so keys memoize safely; warm replays of the
        # same grid then skip re-canonicalizing every spec.
        self._key_memo: Dict[RunSpec, str] = {}

    # ------------------------------------------------------------------
    def key_for(self, spec: RunSpec) -> str:
        key = self._key_memo.get(spec)
        if key is None:
            if self._env_fp is None:
                self._env_fp = environment_fingerprint(self.system,
                                                       self.calib)
            key = cache_key(spec, self.system, self.calib,
                            env_fingerprint=self._env_fp)
            self._key_memo[spec] = key
        return key

    def _tick(self, done: int, total: int, spec: RunSpec) -> None:
        if self.progress is not None:
            self.progress(done, total, spec)

    def _execute_batch(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        entries = [(spec, self.system, self.calib) for spec in specs]
        if self.jobs == 1 or len(specs) <= 1:
            return [_execute_entry(entry) for entry in entries]
        pool_cls = (ProcessPoolExecutor if self.backend == "process"
                    else ThreadPoolExecutor)
        workers = min(self.jobs, len(specs))
        with pool_cls(max_workers=workers) as pool:
            # map() preserves submission order.
            return list(pool.map(_execute_entry, entries))

    def run(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        """Execute every spec; order-preserving; cache-aware."""
        specs = list(specs)
        started = time.perf_counter()
        total = len(specs)
        results: List[Optional[RunResult]] = [None] * total
        pending: List[Tuple[int, RunSpec]] = []
        keys: Dict[int, str] = {}
        done = 0
        if self.cache is not None:
            for index, spec in enumerate(specs):
                key = self.key_for(spec)
                keys[index] = key
                hit = self.cache.get(key)
                if hit is None:
                    pending.append((index, spec))
                else:
                    results[index] = hit
                    done += 1
                    self._tick(done, total, spec)
        else:
            pending = list(enumerate(specs))

        hits = total - len(pending)
        executed = self._execute_batch([spec for _, spec in pending])
        for (index, spec), run in zip(pending, executed):
            results[index] = run
            if self.cache is not None:
                self.cache.put(keys[index], run)
            done += 1
            self._tick(done, total, spec)

        self.last = SweepStats(
            total=total, cache_hits=hits, executed=len(pending),
            elapsed_s=time.perf_counter() - started,
            jobs=self.jobs, backend=self.backend,
        )
        return results  # type: ignore[return-value]

    def summary(self) -> str:
        return self.last.summary()


# ----------------------------------------------------------------------
# Regrouping executor output into the classic result containers
# ----------------------------------------------------------------------
def collect_runsets(results: Iterable[RunResult]
                    ) -> Dict[Tuple[str, str, TransferMode], RunSet]:
    """Group flat results into RunSets keyed (workload, size, mode).

    Insertion order follows first appearance, so a grid expanded with
    :func:`expand_grid` regroups into the same iteration order the
    serial loops produced.
    """
    grouped: Dict[Tuple[str, str, TransferMode], RunSet] = {}
    for run in results:
        key = (run.workload, run.size, run.mode)
        if key not in grouped:
            grouped[key] = RunSet(workload=run.workload, mode=run.mode,
                                  size=run.size)
        grouped[key].add(run)
    return grouped


def collect_comparisons(results: Iterable[RunResult]
                        ) -> Dict[Tuple[str, str], ModeComparison]:
    """Group flat results into ModeComparisons keyed (workload, size)."""
    comparisons: Dict[Tuple[str, str], ModeComparison] = {}
    for key, runs in collect_runsets(results).items():
        workload, size, _ = key
        if (workload, size) not in comparisons:
            comparisons[(workload, size)] = ModeComparison(
                workload=workload, size=size)
        comparisons[(workload, size)].add(runs)
    return comparisons


def ensure_executor(executor: Optional[SweepExecutor]) -> SweepExecutor:
    """The caller's executor, or a fresh default (serial, no cache,
    ``REPRO_JOBS`` honored)."""
    return executor if executor is not None else SweepExecutor()
