"""Regression snapshots: calibration metrics and perf trajectories.

Two families of snapshot live here:

* **Calibration snapshots** (:func:`save_snapshot` /
  :func:`compare_to_snapshot`): re-tuning a constant in
  ``repro.sim.calibration`` can silently move a figure, so the
  headline metrics (geomean improvements, anomaly orderings, counter
  deltas) snapshot to JSON and later runs compare against them with
  per-metric tolerances.

* **Perf trajectories** (``repro bench``): schema'd ``BENCH_*.json``
  snapshots of per-engine cold/warm grid timings in
  ``benchmarks/results/``, compared *statistically* — bootstrap
  confidence intervals on the mean of each (engine, phase) timing
  series; a regression is a non-overlapping CI pair where the current
  run is slower.  Every perf PR lands on a tracked trajectory instead
  of a single hand-run ``engine_speedup.txt`` number.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.configs import ALL_MODES, TransferMode
from ..workloads.sizes import SizeClass
from .figures import comparison_sweep, counter_sweep, geomean_improvements
from ..workloads.registry import APP_NAMES, MICRO_NAMES

SNAPSHOT_VERSION = 1

# Percentage-point tolerance for geomean improvements; relative
# tolerance for counter ratios.
DEFAULT_TOLERANCE_PTS = 3.0
DEFAULT_TOLERANCE_REL = 0.10


def collect_headline_metrics(iterations: int = 5,
                             base_seed: int = 1234) -> Dict:
    """The numbers EXPERIMENTS.md quotes, as one flat dict."""
    micro = comparison_sweep(MICRO_NAMES, SizeClass.SUPER,
                             iterations=iterations, base_seed=base_seed)
    apps = comparison_sweep(APP_NAMES, SizeClass.SUPER,
                            iterations=max(2, iterations // 2),
                            base_seed=base_seed)
    counters = counter_sweep(base_seed=base_seed)

    metrics: Dict[str, float] = {}
    for label, sweep in (("micro", micro), ("apps", apps)):
        for mode, value in geomean_improvements(sweep).items():
            metrics[f"{label}.improvement.{mode}"] = value
    for name in ("lud", "nw", "yolov3"):
        for mode in TransferMode:
            metrics[f"anomaly.{name}.{mode.value}"] = \
                apps[name].normalized_total(mode)
    gemm = counters["gemm"]
    metrics["counters.gemm.async_control_ratio"] = \
        gemm["async"]["control"] / gemm["standard"]["control"]
    lud = counters["lud"]
    metrics["counters.lud.async_load_miss_ratio"] = \
        lud["async"]["load_miss"] / lud["standard"]["load_miss"]
    metrics["counters.lud.async_store_miss_ratio"] = \
        lud["async"]["store_miss"] / lud["standard"]["store_miss"]
    return metrics


def save_snapshot(path: Union[str, Path], metrics: Optional[Dict] = None,
                  iterations: int = 5) -> Path:
    """Write the current headline metrics to ``path``."""
    path = Path(path)
    metrics = metrics if metrics is not None \
        else collect_headline_metrics(iterations=iterations)
    payload = {"version": SNAPSHOT_VERSION, "metrics": metrics}
    path.write_text(json.dumps(payload, indent=1, sort_keys=True))
    return path


@dataclass
class RegressionReport:
    """Outcome of comparing current metrics to a snapshot."""

    passed: bool
    violations: List[str] = field(default_factory=list)
    compared: int = 0

    def render(self) -> str:
        if self.passed:
            return (f"calibration regression check: {self.compared} "
                    "metrics within tolerance")
        lines = [f"calibration regression check FAILED "
                 f"({len(self.violations)} of {self.compared}):"]
        lines += [f"  {violation}" for violation in self.violations]
        return "\n".join(lines)


def compare_to_snapshot(path: Union[str, Path],
                        metrics: Optional[Dict] = None,
                        iterations: int = 5,
                        tolerance_pts: float = DEFAULT_TOLERANCE_PTS,
                        tolerance_rel: float = DEFAULT_TOLERANCE_REL
                        ) -> RegressionReport:
    """Compare current metrics against a saved snapshot.

    Improvement metrics (percent) compare within ``tolerance_pts``
    points; ratio metrics within ``tolerance_rel`` relative.
    """
    payload = json.loads(Path(path).read_text())
    if payload.get("version") != SNAPSHOT_VERSION:
        raise ValueError(
            f"snapshot version {payload.get('version')!r} != "
            f"{SNAPSHOT_VERSION}")
    reference: Dict[str, float] = payload["metrics"]
    metrics = metrics if metrics is not None \
        else collect_headline_metrics(iterations=iterations)

    violations: List[str] = []
    compared = 0
    for key, expected in reference.items():
        if key not in metrics:
            violations.append(f"{key}: missing from current run")
            continue
        actual = metrics[key]
        compared += 1
        if ".improvement." in key:
            if abs(actual - expected) > tolerance_pts:
                violations.append(
                    f"{key}: {actual:.2f} vs snapshot {expected:.2f} "
                    f"(> {tolerance_pts} pts)")
        else:
            scale = max(abs(expected), 1e-9)
            if abs(actual - expected) / scale > tolerance_rel:
                violations.append(
                    f"{key}: {actual:.4f} vs snapshot {expected:.4f} "
                    f"(> {tolerance_rel:.0%})")
    return RegressionReport(passed=not violations,
                            violations=violations, compared=compared)


# ======================================================================
# Perf-trajectory benchmarking (``repro bench``)
# ======================================================================
BENCH_VERSION = 1
BENCH_PREFIX = "BENCH_"
#: Default engines on the trajectory; ``reference`` is opt-in (slow).
DEFAULT_BENCH_ENGINES: Tuple[str, ...] = ("fast", "vector")
DEFAULT_BENCH_REPEATS = 5
DEFAULT_BENCH_ITERATIONS = 10
#: Where snapshots land, relative to the invocation root.
DEFAULT_RESULTS_DIR = Path("benchmarks") / "results"
#: Bootstrap resamples for the CI comparison.
DEFAULT_BOOTSTRAP_DRAWS = 4000
BOOTSTRAP_SEED = 20260807


#: Sensitivity grids the trajectory can measure; ``fig12`` is the
#: canonical default every committed snapshot uses.
BENCH_GRIDS: Tuple[str, ...] = ("fig12", "fig11", "fig13")
DEFAULT_BENCH_GRID = "fig12"


def _bench_grid_points(grid: str) -> Tuple[str, List[Dict]]:
    """Per-grid sweep points as ``expand_grid`` override dicts.

    Returns ``(figure_label, points)``; each point dict carries the
    coordinate that varies along that figure's sensitivity axis, with
    the paper's fixed coordinates for the others.
    """
    from .sensitivity import (BLOCK_SWEEP, CARVEOUT_SWEEP_KB,
                              THREAD_SWEEP, THREAD_SWEEP_BLOCKS)
    if grid == "fig12":
        return "fig12-threads", [
            {"blocks": THREAD_SWEEP_BLOCKS, "threads": threads}
            for threads in THREAD_SWEEP]
    if grid == "fig11":
        return "fig11-blocks", [
            {"blocks": blocks, "threads": 256} for blocks in BLOCK_SWEEP]
    if grid == "fig13":
        return "fig13-carveout", [
            {"smem_carveout_bytes": kb * 1024} for kb in CARVEOUT_SWEEP_KB]
    raise ValueError(f"unknown bench grid {grid!r}; "
                     f"choose from {BENCH_GRIDS}")


def bench_grid_specs(iterations: int = DEFAULT_BENCH_ITERATIONS,
                     base_seed: int = 1234,
                     grid: str = DEFAULT_BENCH_GRID) -> List:
    """One sensitivity-figure grid as an executor spec list.

    The default is the canonical bench grid — the Fig. 12 threads
    sweep: ``vector_seq`` @ large, 64 blocks, threads swept over the
    paper's six points, all five transfer modes — the same specs
    :func:`repro.harness.sensitivity.threads_sensitivity` runs, so the
    trajectory measures exactly what the figure CLIs pay for.
    ``grid`` selects the Fig. 11 blocks sweep or the Fig. 13 carveout
    sweep instead (``repro bench --grid``).
    """
    from .executor import expand_grid
    from .sensitivity import SWEEP_SEED_SALT, SWEEP_WORKLOAD
    _, points = _bench_grid_points(grid)
    specs = []
    for overrides in points:
        specs.extend(expand_grid(
            [SWEEP_WORKLOAD], [SizeClass.LARGE], ALL_MODES,
            iterations=iterations, base_seed=base_seed,
            seed_salt=SWEEP_SEED_SALT, **overrides))
    return specs


def _clear_sim_caches() -> None:
    """Reset every simulation-level cache a cold measurement must pay.

    The SeedSequence memo intentionally survives: it caches pure
    seeding *arithmetic*, not simulation state, and both engines are
    measured under the identical protocol.
    """
    from .executor import clear_program_memo
    from ..sim.phasecache import clear_phase_memos
    clear_phase_memos()
    clear_program_memo()


def measure_engine(engine: str, specs: Sequence,
                   repeats: int = DEFAULT_BENCH_REPEATS,
                   fuse: bool = True) -> Dict:
    """Cold/warm wall-time samples for one engine over one spec list.

    Protocol: one untimed warm-up sweep (imports, allocator churn, the
    seed memo), then ``repeats`` x (clear sim caches -> timed cold
    sweep -> timed warm sweep).  No result cache and no journal: the
    samples time simulation, not disk.

    ``fuse=False`` measures the vector engine with axis fusion
    disabled — the per-cell replay leg of the axis-speedup gate.

    Besides the timing series, the sample dict carries a ``fusion``
    section (family fused/reroute counts, per-rule reroute tallies)
    from the executor's last cold sweep, so every ``BENCH_*.json``
    records *how* the vector engine earned its timings.
    """
    from .executor import SweepExecutor
    executor = SweepExecutor(jobs=1, engine=engine, fuse=fuse)
    _clear_sim_caches()
    executor.run(specs)  # warm-up, untimed
    cold: List[float] = []
    warm: List[float] = []
    for _ in range(repeats):
        _clear_sim_caches()
        started = time.perf_counter()
        executor.run(specs)
        cold.append(time.perf_counter() - started)
        stats = executor.last  # cold-sweep fusion accounting
        started = time.perf_counter()
        executor.run(specs)
        warm.append(time.perf_counter() - started)
    return {"cold_s": cold, "warm_s": warm,
            "fusion": {"families_fused": stats.families_fused,
                       "families_rerouted": stats.families_rerouted,
                       "reroute_rules": dict(stats.reroute_rules)}}


def bench_environment() -> Dict:
    """The environment fingerprint a trajectory is only comparable within."""
    from .executor import environment_fingerprint
    return {
        "fingerprint": environment_fingerprint(None, None),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
    }


def collect_bench(engines: Sequence[str] = DEFAULT_BENCH_ENGINES,
                  repeats: int = DEFAULT_BENCH_REPEATS,
                  iterations: int = DEFAULT_BENCH_ITERATIONS,
                  base_seed: int = 1234,
                  grid: str = DEFAULT_BENCH_GRID) -> Dict:
    """Measure one bench grid on every engine; return one snapshot payload."""
    from .sensitivity import SWEEP_WORKLOAD
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    figure, points = _bench_grid_points(grid)
    specs = bench_grid_specs(iterations=iterations, base_seed=base_seed,
                             grid=grid)
    # The swept coordinate, flattened for the snapshot: fig12 varies
    # threads, fig11 blocks, fig13 the carveout.
    axis_key = ("threads" if grid == "fig12" else
                "blocks" if grid == "fig11" else "smem_carveout_bytes")
    payload: Dict = {
        "version": BENCH_VERSION,
        "kind": "perf-trajectory",
        "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "grid": {
            "figure": figure,
            "workload": SWEEP_WORKLOAD,
            "size": SizeClass.LARGE.label,
            "axis": axis_key,
            "points": [point[axis_key] for point in points],
            "modes": [mode.value for mode in ALL_MODES],
            "iterations": iterations,
            "base_seed": base_seed,
            "specs": len(specs),
        },
        "protocol": {"repeats": repeats, "warmup_runs": 1,
                     "timer": "time.perf_counter"},
        "environment": bench_environment(),
        "engines": {},
    }
    for engine in engines:
        payload["engines"][engine] = measure_engine(engine, specs,
                                                    repeats=repeats)
    if "fast" in payload["engines"] and "vector" in payload["engines"]:
        fast = payload["engines"]["fast"]
        vector = payload["engines"]["vector"]
        payload["derived"] = {
            "vector_speedup_cold":
                _mean(fast["cold_s"]) / _mean(vector["cold_s"]),
            "vector_speedup_warm":
                _mean(fast["warm_s"]) / _mean(vector["warm_s"]),
        }
    return payload


# ----------------------------------------------------------------------
# Axis-fusion speedup (the `repro bench` A/B the perf gate checks)
# ----------------------------------------------------------------------
#: The axis gate measures the paper's actual 30-run distributions:
#: fixed costs (phase prewarm, family compiles) dominate shorter
#: grids, while the per-spec marginal cost is what fusion changes.
AXIS_GATE_ITERATIONS = 30
AXIS_GATE_FLOOR = 3.0


@dataclass
class AxisSpeedup:
    """Fused vs per-cell vector-engine timings on one grid."""

    grid: str
    specs: int
    iterations: int
    repeats: int
    fused_s: List[float]
    unfused_s: List[float]
    fusion: Dict

    @property
    def best_fused_s(self) -> float:
        return min(self.fused_s)

    @property
    def best_unfused_s(self) -> float:
        return min(self.unfused_s)

    @property
    def speedup(self) -> float:
        """min/min cold ratio: scheduler noise only slows a leg down."""
        return self.best_unfused_s / self.best_fused_s

    def render(self) -> str:
        per_spec_us = 1e6 / self.specs
        fused = self.best_fused_s
        unfused = self.best_unfused_s
        return "\n".join([
            f"axis-fusion speedup gate (cold {self.grid} grid, vector "
            "engine:",
            f"fused family replay vs per-cell replay; {self.specs} specs,",
            f"{self.iterations} iterations; best of {self.repeats}; "
            "jobs=1, no cache)",
            "",
            f"specs:            {self.specs}",
            f"families fused:   {self.fusion.get('families_fused', 0)}"
            f" ({self.fusion.get('families_rerouted', 0)} rerouted)",
            f"per-cell replay:  {unfused:.4f}s  "
            f"({unfused * per_spec_us:.0f}us/spec)",
            f"fused replay:     {fused:.4f}s  "
            f"({fused * per_spec_us:.0f}us/spec)",
            f"speedup:          {self.speedup:.2f}x  "
            f"(gate: >= {AXIS_GATE_FLOOR:.0f}x)",
        ])


def measure_axis_speedup(iterations: int = AXIS_GATE_ITERATIONS,
                         repeats: int = DEFAULT_BENCH_REPEATS,
                         base_seed: int = 1234,
                         grid: str = DEFAULT_BENCH_GRID) -> AxisSpeedup:
    """A/B the vector engine against itself with fusion disabled.

    Both legs run the identical cold protocol
    (:func:`measure_engine`); the only difference is the executor's
    ``fuse`` flag, so the ratio isolates exactly what axis fusion
    buys over PR 7's per-cell replay.  Results are bit-identical
    between the legs (pinned by the differential battery), so this is
    a pure perf comparison.
    """
    specs = bench_grid_specs(iterations=iterations, base_seed=base_seed,
                             grid=grid)
    fused = measure_engine("vector", specs, repeats=repeats, fuse=True)
    unfused = measure_engine("vector", specs, repeats=repeats, fuse=False)
    return AxisSpeedup(grid=grid, specs=len(specs), iterations=iterations,
                       repeats=repeats, fused_s=fused["cold_s"],
                       unfused_s=unfused["cold_s"],
                       fusion=fused["fusion"])


def validate_bench(payload: Dict) -> None:
    """Schema check; raises ``ValueError`` with the offending path."""
    if payload.get("version") != BENCH_VERSION:
        raise ValueError(f"bench version {payload.get('version')!r} != "
                         f"{BENCH_VERSION}")
    if payload.get("kind") != "perf-trajectory":
        raise ValueError(f"bench kind {payload.get('kind')!r}")
    for section in ("grid", "protocol", "environment", "engines"):
        if not isinstance(payload.get(section), dict):
            raise ValueError(f"bench snapshot missing section {section!r}")
    if not payload["engines"]:
        raise ValueError("bench snapshot has no engine samples")
    for engine, samples in payload["engines"].items():
        for phase in ("cold_s", "warm_s"):
            series = samples.get(phase)
            if (not isinstance(series, list) or not series
                    or not all(isinstance(value, (int, float))
                               and value > 0 for value in series)):
                raise ValueError(
                    f"engines.{engine}.{phase} must be a non-empty list "
                    "of positive seconds")


def save_bench(payload: Dict,
               results_dir: Union[str, Path] = DEFAULT_RESULTS_DIR) -> Path:
    """Write one validated snapshot as the next ``BENCH_NNNN_*.json``.

    Names are ``BENCH_<seq>_<envhash>.json``: the sequence number keeps
    the trajectory totally ordered even across clock skew; the short
    environment hash makes cross-machine mixing visible at a glance.
    """
    validate_bench(payload)
    results_dir = Path(results_dir)
    results_dir.mkdir(parents=True, exist_ok=True)
    sequence = 0
    for existing in results_dir.glob(f"{BENCH_PREFIX}*.json"):
        token = existing.name[len(BENCH_PREFIX):].split("_", 1)[0]
        if token.isdigit():
            sequence = max(sequence, int(token))
    env_hash = payload["environment"].get("fingerprint", "")[:8] or "unknown"
    path = results_dir / f"{BENCH_PREFIX}{sequence + 1:04d}_{env_hash}.json"
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return path


def load_bench(path: Union[str, Path]) -> Dict:
    payload = json.loads(Path(path).read_text())
    validate_bench(payload)
    return payload


def latest_bench(results_dir: Union[str, Path] = DEFAULT_RESULTS_DIR
                 ) -> Optional[Path]:
    """The newest snapshot on the trajectory (by sequence number)."""
    results_dir = Path(results_dir)
    if not results_dir.is_dir():
        return None
    best: Optional[Tuple[int, str, Path]] = None
    for path in results_dir.glob(f"{BENCH_PREFIX}*.json"):
        token = path.name[len(BENCH_PREFIX):].split("_", 1)[0]
        if not token.isdigit():
            continue
        candidate = (int(token), path.name, path)
        if best is None or candidate > best:
            best = candidate
    return best[2] if best else None


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values)


def bootstrap_mean_ci(samples: Sequence[float],
                      draws: int = DEFAULT_BOOTSTRAP_DRAWS,
                      seed: int = BOOTSTRAP_SEED,
                      confidence: float = 0.95) -> Tuple[float, float]:
    """Seeded bootstrap CI for the mean of a small timing series.

    Percentile bootstrap: resample with replacement ``draws`` times,
    take the means, return the (lower, upper) percentile band.  With a
    single sample the CI degenerates to that point — the comparison
    then only fails on a literal ordering inversion.
    """
    values = np.asarray(list(samples), dtype=float)
    if values.size == 0:
        raise ValueError("cannot bootstrap an empty series")
    if values.size == 1:
        return float(values[0]), float(values[0])
    rng = np.random.default_rng(seed)
    resamples = rng.integers(0, values.size, size=(draws, values.size))
    means = values[resamples].mean(axis=1)
    tail = (1.0 - confidence) / 2.0
    lower, upper = np.quantile(means, (tail, 1.0 - tail))
    return float(lower), float(upper)


@dataclass
class BenchComparison:
    """One (engine, phase) leg of a trajectory comparison."""

    engine: str
    phase: str                 # "cold" or "warm"
    baseline_mean: float
    current_mean: float
    baseline_ci: Tuple[float, float]
    current_ci: Tuple[float, float]

    @property
    def overlap(self) -> bool:
        return (self.current_ci[0] <= self.baseline_ci[1]
                and self.baseline_ci[0] <= self.current_ci[1])

    @property
    def regressed(self) -> bool:
        """Statistically slower: CIs disjoint *and* current is worse."""
        return not self.overlap and self.current_mean > self.baseline_mean

    @property
    def improved(self) -> bool:
        return not self.overlap and self.current_mean < self.baseline_mean

    def render(self) -> str:
        verdict = ("REGRESSED" if self.regressed
                   else "improved" if self.improved else "ok")
        ratio = self.current_mean / self.baseline_mean
        return (f"{self.engine}/{self.phase}: {self.current_mean * 1e3:.1f}ms"
                f" vs baseline {self.baseline_mean * 1e3:.1f}ms"
                f" (x{ratio:.2f}, CI [{self.current_ci[0] * 1e3:.1f},"
                f" {self.current_ci[1] * 1e3:.1f}]ms vs"
                f" [{self.baseline_ci[0] * 1e3:.1f},"
                f" {self.baseline_ci[1] * 1e3:.1f}]ms) {verdict}")


@dataclass
class BenchReport:
    """Outcome of ``repro bench --check``."""

    comparisons: List[BenchComparison] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not any(entry.regressed for entry in self.comparisons)

    def render(self) -> str:
        lines = [entry.render() for entry in self.comparisons]
        lines.extend(self.notes)
        regressed = sum(1 for c in self.comparisons if c.regressed)
        if not self.comparisons:
            lines.append("perf trajectory: nothing comparable")
        elif regressed:
            lines.append(f"perf trajectory: {regressed} of "
                         f"{len(self.comparisons)} legs REGRESSED")
        else:
            lines.append(f"perf trajectory: {len(self.comparisons)} legs "
                         "within statistical noise or improved")
        return "\n".join(lines)


def compare_bench(current: Dict, baseline: Dict,
                  draws: int = DEFAULT_BOOTSTRAP_DRAWS,
                  seed: int = BOOTSTRAP_SEED) -> BenchReport:
    """Statistically compare two snapshots, engine by engine.

    A leg regresses when the bootstrap CIs of its mean timing do not
    overlap *and* the current mean is slower — simple noise widens the
    CIs and keeps the gate quiet; a genuine slowdown separates them.
    Environment mismatches don't fail the gate (CI machines vary) but
    are surfaced as notes.
    """
    validate_bench(current)
    validate_bench(baseline)
    report = BenchReport()
    if (current["environment"].get("fingerprint")
            != baseline["environment"].get("fingerprint")):
        report.notes.append(
            "note: environment fingerprints differ; comparison is "
            "advisory only on a changed simulation model")
    if current["grid"] != baseline["grid"]:
        report.notes.append(
            "note: bench grids differ; legs compare only where both "
            "snapshots measured the same engine")
    for engine, samples in sorted(current["engines"].items()):
        reference = baseline["engines"].get(engine)
        if reference is None:
            report.notes.append(f"note: engine {engine!r} has no "
                                "baseline samples; skipped")
            continue
        for phase in ("cold", "warm"):
            series = samples[f"{phase}_s"]
            base_series = reference[f"{phase}_s"]
            report.comparisons.append(BenchComparison(
                engine=engine, phase=phase,
                baseline_mean=_mean(base_series),
                current_mean=_mean(series),
                baseline_ci=bootstrap_mean_ci(base_series, draws=draws,
                                              seed=seed),
                current_ci=bootstrap_mean_ci(series, draws=draws,
                                             seed=seed)))
    return report


def render_bench(payload: Dict) -> str:
    """Human summary of one snapshot (the non-``--check`` output)."""
    grid = payload["grid"]
    lines = [f"bench grid: {grid['figure']} ({grid['specs']} specs, "
             f"{grid['iterations']} iterations, "
             f"{payload['protocol']['repeats']} repeats)"]
    for engine, samples in sorted(payload["engines"].items()):
        line = (
            f"  {engine:<9} cold {_mean(samples['cold_s']) * 1e3:8.1f}ms"
            f"   warm {_mean(samples['warm_s']) * 1e3:8.1f}ms")
        fusion = samples.get("fusion") or {}
        if fusion.get("families_fused") or fusion.get("families_rerouted"):
            rules = ", ".join(
                f"{rule}:{count}" for rule, count
                in sorted(fusion.get("reroute_rules", {}).items()))
            line += (f"   [{fusion['families_fused']} families fused, "
                     f"{fusion['families_rerouted']} rerouted"
                     + (f" ({rules})" if rules else "") + "]")
        lines.append(line)
    derived = payload.get("derived")
    if derived:
        lines.append(f"  vector speedup vs fast: "
                     f"{derived['vector_speedup_cold']:.1f}x cold, "
                     f"{derived['vector_speedup_warm']:.1f}x warm")
    return "\n".join(lines)
