"""Reference-result snapshots for calibration regression checks.

Re-tuning a constant in ``repro.sim.calibration`` can silently move a
figure. This module snapshots the headline metrics (geomean
improvements, anomaly orderings, counter deltas) to JSON and compares
later runs against the snapshot with per-metric tolerances - the same
idea as the test suite's shape checks, but against *your own* last
accepted numbers rather than the paper's bands.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..core.configs import TransferMode
from ..workloads.sizes import SizeClass
from .figures import comparison_sweep, counter_sweep, geomean_improvements
from ..workloads.registry import APP_NAMES, MICRO_NAMES

SNAPSHOT_VERSION = 1

# Percentage-point tolerance for geomean improvements; relative
# tolerance for counter ratios.
DEFAULT_TOLERANCE_PTS = 3.0
DEFAULT_TOLERANCE_REL = 0.10


def collect_headline_metrics(iterations: int = 5,
                             base_seed: int = 1234) -> Dict:
    """The numbers EXPERIMENTS.md quotes, as one flat dict."""
    micro = comparison_sweep(MICRO_NAMES, SizeClass.SUPER,
                             iterations=iterations, base_seed=base_seed)
    apps = comparison_sweep(APP_NAMES, SizeClass.SUPER,
                            iterations=max(2, iterations // 2),
                            base_seed=base_seed)
    counters = counter_sweep(base_seed=base_seed)

    metrics: Dict[str, float] = {}
    for label, sweep in (("micro", micro), ("apps", apps)):
        for mode, value in geomean_improvements(sweep).items():
            metrics[f"{label}.improvement.{mode}"] = value
    for name in ("lud", "nw", "yolov3"):
        for mode in TransferMode:
            metrics[f"anomaly.{name}.{mode.value}"] = \
                apps[name].normalized_total(mode)
    gemm = counters["gemm"]
    metrics["counters.gemm.async_control_ratio"] = \
        gemm["async"]["control"] / gemm["standard"]["control"]
    lud = counters["lud"]
    metrics["counters.lud.async_load_miss_ratio"] = \
        lud["async"]["load_miss"] / lud["standard"]["load_miss"]
    metrics["counters.lud.async_store_miss_ratio"] = \
        lud["async"]["store_miss"] / lud["standard"]["store_miss"]
    return metrics


def save_snapshot(path: Union[str, Path], metrics: Optional[Dict] = None,
                  iterations: int = 5) -> Path:
    """Write the current headline metrics to ``path``."""
    path = Path(path)
    metrics = metrics if metrics is not None \
        else collect_headline_metrics(iterations=iterations)
    payload = {"version": SNAPSHOT_VERSION, "metrics": metrics}
    path.write_text(json.dumps(payload, indent=1, sort_keys=True))
    return path


@dataclass
class RegressionReport:
    """Outcome of comparing current metrics to a snapshot."""

    passed: bool
    violations: List[str] = field(default_factory=list)
    compared: int = 0

    def render(self) -> str:
        if self.passed:
            return (f"calibration regression check: {self.compared} "
                    "metrics within tolerance")
        lines = [f"calibration regression check FAILED "
                 f"({len(self.violations)} of {self.compared}):"]
        lines += [f"  {violation}" for violation in self.violations]
        return "\n".join(lines)


def compare_to_snapshot(path: Union[str, Path],
                        metrics: Optional[Dict] = None,
                        iterations: int = 5,
                        tolerance_pts: float = DEFAULT_TOLERANCE_PTS,
                        tolerance_rel: float = DEFAULT_TOLERANCE_REL
                        ) -> RegressionReport:
    """Compare current metrics against a saved snapshot.

    Improvement metrics (percent) compare within ``tolerance_pts``
    points; ratio metrics within ``tolerance_rel`` relative.
    """
    payload = json.loads(Path(path).read_text())
    if payload.get("version") != SNAPSHOT_VERSION:
        raise ValueError(
            f"snapshot version {payload.get('version')!r} != "
            f"{SNAPSHOT_VERSION}")
    reference: Dict[str, float] = payload["metrics"]
    metrics = metrics if metrics is not None \
        else collect_headline_metrics(iterations=iterations)

    violations: List[str] = []
    compared = 0
    for key, expected in reference.items():
        if key not in metrics:
            violations.append(f"{key}: missing from current run")
            continue
        actual = metrics[key]
        compared += 1
        if ".improvement." in key:
            if abs(actual - expected) > tolerance_pts:
                violations.append(
                    f"{key}: {actual:.2f} vs snapshot {expected:.2f} "
                    f"(> {tolerance_pts} pts)")
        else:
            scale = max(abs(expected), 1e-9)
            if abs(actual - expected) / scale > tolerance_rel:
                violations.append(
                    f"{key}: {actual:.4f} vs snapshot {expected:.4f} "
                    f"(> {tolerance_rel:.0%})")
    return RegressionReport(passed=not violations,
                            violations=violations, compared=compared)
