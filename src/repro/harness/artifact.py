"""The paper's artifact-appendix workflow, reproduced.

The IISWC artifact ships ``run_micro_all.py``, ``run_micro_perf.py``,
``run_real_all.py``, ``run_real_perf.py``, ``run_micro_sensitivity.py``
and ``run_micro_shared.py``, each regenerating a subset of the figures
(Appendix Secs. 5-6). This module provides the same entry points on
top of the simulator, with the same ``-i`` iteration knob:

=====================  =======================================
artifact script        figures (per the appendix)
=====================  =======================================
run_micro_all          Fig. 4, Fig. 5, Fig. 6, Fig. 7
run_real_all           Fig. 8
process_perf           Fig. 9, Fig. 10
run_micro_sensitivity  Fig. 11, Fig. 12
run_micro_shared       Fig. 13
=====================  =======================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..workloads.sizes import SizeClass
from .figures import (fig4_distributions, fig5_stability,
                      fig6_mega_breakdown, fig7_micro, fig8_apps,
                      counter_sweep, geomean_improvements,
                      render_comparison, render_counters, render_fig5,
                      render_fig6)
from .sensitivity import (blocks_sensitivity, carveout_sensitivity,
                          normalized_sweep, render_sweep,
                          threads_sensitivity)


@dataclass
class ArtifactResult:
    """One artifact-script run: the figures it regenerates, as text."""

    script: str
    figures: Dict[str, str] = field(default_factory=dict)

    def render(self) -> str:
        parts = [f"== {self.script} =="]
        for name, text in self.figures.items():
            parts.append(f"-- {name} --\n{text}")
        return "\n\n".join(parts)


def run_micro_all(iterations: int = 30, profiling: bool = False,
                  base_seed: int = 1234) -> ArtifactResult:
    """Appendix: 'Reproduce Figure 4, Figure 5, Figure 6, and Figure 7.'

    ``profiling`` mirrors the artifact's ``--profiling`` flag: it only
    collects the measurements (the parse/visualize step is the render).
    """
    result = ArtifactResult("run_micro_all.py")
    distributions = fig4_distributions(iterations=iterations,
                                       base_seed=base_seed)
    stability = fig5_stability(distributions)
    result.figures["figure4+5"] = render_fig5(stability)
    result.figures["figure6"] = render_fig6(
        fig6_mega_breakdown(iterations=iterations, base_seed=base_seed))
    if not profiling:
        for tag, size in (("a", SizeClass.LARGE), ("b", SizeClass.SUPER)):
            comparisons = fig7_micro(size=size, iterations=iterations,
                                     base_seed=base_seed)
            text = render_comparison(comparisons,
                                     f"Fig. 7{tag} @ {size.label}")
            improvements = geomean_improvements(comparisons)
            text += "\n" + "  ".join(f"{mode}={value:+.2f}%"
                                     for mode, value in improvements.items())
            result.figures[f"figure7{tag}"] = text
    return result


def run_real_all(iterations: int = 30,
                 base_seed: int = 1234) -> ArtifactResult:
    """Appendix: 'Reproduce Figure 8.'"""
    result = ArtifactResult("run_real_all.py")
    comparisons = fig8_apps(iterations=iterations, base_seed=base_seed)
    text = render_comparison(comparisons, "Fig. 8 @ super")
    improvements = geomean_improvements(comparisons)
    text += "\n" + "  ".join(f"{mode}={value:+.2f}%"
                             for mode, value in improvements.items())
    result.figures["figure8"] = text
    return result


def process_perf(base_seed: int = 1234) -> ArtifactResult:
    """Appendix: 'Reproduce Figure 9 and Figure 10.'"""
    result = ArtifactResult("process_perf.py")
    counters = counter_sweep(base_seed=base_seed)
    result.figures["figure9"] = render_counters(
        counters, ("control", "integer"), "Fig. 9: instruction mix")
    result.figures["figure10"] = render_counters(
        counters, ("load_miss", "store_miss"), "Fig. 10: L1 miss rates")
    return result


def run_micro_sensitivity(iterations: int = 30,
                          base_seed: int = 1234) -> ArtifactResult:
    """Appendix: 'Reproduce Figure 11 and Figure 12.'"""
    result = ArtifactResult("run_micro_sensitivity.py")
    blocks = blocks_sensitivity(iterations=iterations, base_seed=base_seed)
    result.figures["figure11"] = render_sweep(
        normalized_sweep(blocks), "#blocks", "Fig. 11: block sweep")
    threads = threads_sensitivity(iterations=iterations,
                                  base_seed=base_seed)
    result.figures["figure12"] = render_sweep(
        normalized_sweep(threads, baseline_key=1024), "#threads",
        "Fig. 12: thread sweep")
    return result


def run_micro_shared(iterations: int = 30,
                     base_seed: int = 1234) -> ArtifactResult:
    """Appendix: 'Reproduce Figure 13.'"""
    result = ArtifactResult("run_micro_shared.py")
    carveouts = carveout_sensitivity(iterations=iterations,
                                     base_seed=base_seed)
    result.figures["figure13"] = render_sweep(
        normalized_sweep(carveouts, baseline_key=32), "smem KB",
        "Fig. 13: carveout sweep")
    return result


ARTIFACT_SCRIPTS = {
    "run_micro_all": run_micro_all,
    "run_real_all": run_real_all,
    "process_perf": process_perf,
    "run_micro_sensitivity": run_micro_sensitivity,
    "run_micro_shared": run_micro_shared,
}


def run_full_artifact(iterations: int = 30,
                      base_seed: int = 1234) -> List[ArtifactResult]:
    """The appendix's complete experiment workflow, in order."""
    return [
        run_micro_all(iterations=iterations, base_seed=base_seed),
        run_real_all(iterations=iterations, base_seed=base_seed),
        process_perf(base_seed=base_seed),
        run_micro_sensitivity(iterations=iterations, base_seed=base_seed),
        run_micro_shared(iterations=iterations, base_seed=base_seed),
    ]
