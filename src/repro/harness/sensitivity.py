"""Sensitivity studies (Sec. 5 / Figs. 11-13).

All three sweeps use vector_seq, as the paper does: it partitions
flexibly and benefits from both Async Memcpy and UVM.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.configs import ALL_MODES, TransferMode
from ..core.results import RunSet
from ..workloads.sizes import SizeClass
from .executor import RunSpec, SweepExecutor, ensure_executor
from .report import render_table

BLOCK_SWEEP = (4096, 2048, 1024, 512, 256, 128, 64, 32, 16)
THREAD_SWEEP = (1024, 512, 256, 128, 64, 32)
THREAD_SWEEP_BLOCKS = 64  # "total number of cores is fixed (set as 64)"
CARVEOUT_SWEEP_KB = (2, 4, 8, 16, 32, 64, 128)

#: Seed-stream salt the sensitivity sweeps have always used (their
#: per-run seeds hash the token ``"<workload>:sweep"``).
SWEEP_SEED_SALT = ":sweep"

SWEEP_WORKLOAD = "vector_seq"


def _sweep(points: Sequence[int], iterations: int, base_seed: int,
           size: SizeClass, modes: Sequence[TransferMode],
           spec_for_point, executor: Optional[SweepExecutor]
           ) -> Dict[int, Dict[str, RunSet]]:
    """Run every (point, mode, iteration) cell in one executor pass.

    Different sweep points share (workload, size, mode) coordinates,
    so results are regrouped by position rather than by key — which is
    also what makes partial sweeps safe here: a failed run leaves a
    ``None`` at its position (never shifting later cells), producing a
    shorter (possibly empty) :class:`RunSet` for that cell.
    """
    specs: List[RunSpec] = []
    for point in points:
        base = spec_for_point(point)
        for mode in modes:
            for iteration in range(iterations):
                specs.append(RunSpec(
                    workload=base.workload, size=size.label, mode=mode,
                    iteration=iteration, base_seed=base_seed,
                    blocks=base.blocks, threads=base.threads,
                    smem_carveout_bytes=base.smem_carveout_bytes,
                    seed_salt=SWEEP_SEED_SALT))
    results = ensure_executor(executor).run_outcomes(specs).results
    data: Dict[int, Dict[str, RunSet]] = {}
    cursor = 0
    for point in points:
        data[point] = {}
        for mode in modes:
            runs = RunSet(workload=SWEEP_WORKLOAD, mode=mode,
                          size=size.label)
            for run in results[cursor:cursor + iterations]:
                if run is not None:
                    runs.add(run)
            cursor += iterations
            data[point][mode.value] = runs
    return data


def blocks_sensitivity(blocks: Sequence[int] = BLOCK_SWEEP,
                       size: SizeClass = SizeClass.LARGE,
                       iterations: int = 10, base_seed: int = 1234,
                       modes: Sequence[TransferMode] = ALL_MODES,
                       threads: int = 256,
                       executor: Optional[SweepExecutor] = None
                       ) -> Dict[int, Dict[str, RunSet]]:
    """Fig. 11: vary the number of blocks at fixed threads/block."""
    return _sweep(
        blocks, iterations, base_seed, size, modes,
        lambda count: RunSpec(workload=SWEEP_WORKLOAD, size=size.label,
                              mode=modes[0], blocks=count, threads=threads),
        executor)


def threads_sensitivity(threads: Sequence[int] = THREAD_SWEEP,
                        size: SizeClass = SizeClass.LARGE,
                        iterations: int = 10, base_seed: int = 1234,
                        modes: Sequence[TransferMode] = ALL_MODES,
                        blocks: int = THREAD_SWEEP_BLOCKS,
                        executor: Optional[SweepExecutor] = None
                        ) -> Dict[int, Dict[str, RunSet]]:
    """Fig. 12: vary threads per block at a fixed 64-block grid."""
    return _sweep(
        threads, iterations, base_seed, size, modes,
        lambda count: RunSpec(workload=SWEEP_WORKLOAD, size=size.label,
                              mode=modes[0], blocks=blocks, threads=count),
        executor)


def carveout_sensitivity(carveouts_kb: Sequence[int] = CARVEOUT_SWEEP_KB,
                         size: SizeClass = SizeClass.LARGE,
                         iterations: int = 10, base_seed: int = 1234,
                         modes: Sequence[TransferMode] = ALL_MODES,
                         executor: Optional[SweepExecutor] = None
                         ) -> Dict[int, Dict[str, RunSet]]:
    """Fig. 13: vary the shared-memory carveout (rest becomes L1)."""
    return _sweep(
        carveouts_kb, iterations, base_seed, size, modes,
        lambda kb: RunSpec(workload=SWEEP_WORKLOAD, size=size.label,
                           mode=modes[0], smem_carveout_bytes=kb * 1024),
        executor)


def normalized_sweep(data: Dict[int, Dict[str, RunSet]],
                     baseline_mode: str = "standard",
                     baseline_key: Optional[int] = None
                     ) -> Dict[int, Dict[str, Optional[float]]]:
    """Normalize mean totals to one baseline cell (paper's Figs. 11-13).

    Partial sweeps: empty cells (all runs failed) normalize to
    ``None`` — and if the *baseline* cell itself is empty, every value
    is ``None`` (nothing to normalize against). Renderers print these
    as ``-``.
    """
    keys = list(data)
    baseline_key = baseline_key if baseline_key is not None else keys[0]
    baseline_runs = data[baseline_key][baseline_mode]
    baseline = baseline_runs.mean_total_ns() if len(baseline_runs) else None
    return {
        key: {mode: (runs.mean_total_ns() / baseline
                     if baseline and len(runs) else None)
              for mode, runs in by_mode.items()}
        for key, by_mode in data.items()
    }


def render_sweep(normalized: Dict[int, Dict[str, Optional[float]]],
                 axis_label: str, title: str) -> str:
    """Figure 11-13-style normalized sweep table (``-`` marks gaps)."""
    modes = list(next(iter(normalized.values())))
    rows = [(key, *(f"{normalized[key][mode]:.3f}"
                    if normalized[key][mode] is not None else "-"
                    for mode in modes))
            for key in normalized]
    return render_table((axis_label, *modes), rows, title=title)
