"""Sensitivity studies (Sec. 5 / Figs. 11-13).

All three sweeps use vector_seq, as the paper does: it partitions
flexibly and benefits from both Async Memcpy and UVM.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..core.configs import ALL_MODES, TransferMode
from ..core.execution import execute_program
from ..core.experiment import run_seed
from ..core.results import RunSet
from ..workloads.micro.vectors import VectorSeq
from ..workloads.sizes import SizeClass
from .report import render_table

BLOCK_SWEEP = (4096, 2048, 1024, 512, 256, 128, 64, 32, 16)
THREAD_SWEEP = (1024, 512, 256, 128, 64, 32)
THREAD_SWEEP_BLOCKS = 64  # "total number of cores is fixed (set as 64)"
CARVEOUT_SWEEP_KB = (2, 4, 8, 16, 32, 64, 128)


def _run_program(program, mode: TransferMode, iterations: int,
                 base_seed: int, size: SizeClass,
                 smem_carveout_bytes: Optional[int] = None) -> RunSet:
    runs = RunSet(workload=program.name, mode=mode, size=size.label)
    for iteration in range(iterations):
        seed_seq = run_seed(base_seed, f"{program.name}:sweep",
                            size.label, mode, iteration)
        runs.add(execute_program(
            program, mode, rng=np.random.default_rng(seed_seq),
            seed=iteration, smem_carveout_bytes=smem_carveout_bytes,
            size_label=size.label))
    return runs


def blocks_sensitivity(blocks: Sequence[int] = BLOCK_SWEEP,
                       size: SizeClass = SizeClass.LARGE,
                       iterations: int = 10, base_seed: int = 1234,
                       modes: Sequence[TransferMode] = ALL_MODES,
                       threads: int = 256) -> Dict[int, Dict[str, RunSet]]:
    """Fig. 11: vary the number of blocks at fixed threads/block."""
    workload = VectorSeq()
    data: Dict[int, Dict[str, RunSet]] = {}
    for count in blocks:
        program = workload.program_with_geometry(size, blocks=count,
                                                 threads=threads)
        data[count] = {mode.value: _run_program(program, mode, iterations,
                                                base_seed, size)
                       for mode in modes}
    return data


def threads_sensitivity(threads: Sequence[int] = THREAD_SWEEP,
                        size: SizeClass = SizeClass.LARGE,
                        iterations: int = 10, base_seed: int = 1234,
                        modes: Sequence[TransferMode] = ALL_MODES,
                        blocks: int = THREAD_SWEEP_BLOCKS
                        ) -> Dict[int, Dict[str, RunSet]]:
    """Fig. 12: vary threads per block at a fixed 64-block grid."""
    workload = VectorSeq()
    data: Dict[int, Dict[str, RunSet]] = {}
    for count in threads:
        program = workload.program_with_geometry(size, blocks=blocks,
                                                 threads=count)
        data[count] = {mode.value: _run_program(program, mode, iterations,
                                                base_seed, size)
                       for mode in modes}
    return data


def carveout_sensitivity(carveouts_kb: Sequence[int] = CARVEOUT_SWEEP_KB,
                         size: SizeClass = SizeClass.LARGE,
                         iterations: int = 10, base_seed: int = 1234,
                         modes: Sequence[TransferMode] = ALL_MODES
                         ) -> Dict[int, Dict[str, RunSet]]:
    """Fig. 13: vary the shared-memory carveout (rest becomes L1)."""
    workload = VectorSeq()
    program = workload.program(size)
    data: Dict[int, Dict[str, RunSet]] = {}
    for carveout_kb in carveouts_kb:
        data[carveout_kb] = {
            mode.value: _run_program(program, mode, iterations, base_seed,
                                     size,
                                     smem_carveout_bytes=carveout_kb * 1024)
            for mode in modes
        }
    return data


def normalized_sweep(data: Dict[int, Dict[str, RunSet]],
                     baseline_mode: str = "standard",
                     baseline_key: Optional[int] = None) -> Dict[int, Dict[str, float]]:
    """Normalize mean totals to one baseline cell (paper's Figs. 11-13)."""
    keys = list(data)
    baseline_key = baseline_key if baseline_key is not None else keys[0]
    baseline = data[baseline_key][baseline_mode].mean_total_ns()
    return {
        key: {mode: runs.mean_total_ns() / baseline
              for mode, runs in by_mode.items()}
        for key, by_mode in data.items()
    }


def render_sweep(normalized: Dict[int, Dict[str, float]], axis_label: str,
                 title: str) -> str:
    """Figure 11-13-style normalized sweep table."""
    modes = list(next(iter(normalized.values())))
    rows = [(key, *(f"{normalized[key][mode]:.3f}" for mode in modes))
            for key in normalized]
    return render_table((axis_label, *modes), rows, title=title)
