"""Regenerators for the paper's tables 1-3."""

from __future__ import annotations

from typing import List, Sequence

from ..sim.hardware import SystemSpec, default_system
from ..workloads.registry import all_workloads
from ..workloads.sizes import SizeClass
from .report import render_table


def table1_hardware(system: SystemSpec = None) -> str:
    """Table 1: hardware configurations used in the study."""
    system = system or default_system()
    return system.describe()


def table2_rows() -> List[Sequence[str]]:
    """Table 2: benchmark programs (suite, source, name, description)."""
    suite_label = {"micro": "Micro", "rodinia": "Apps", "uvmbench": "Apps",
                   "darknet": "Apps"}
    source_label = {"micro": "Svedin et al. / PolyBench",
                    "rodinia": "Rodinia", "uvmbench": "UVMBench",
                    "darknet": "Darknet"}
    rows = []
    for workload in all_workloads():
        rows.append((suite_label[workload.suite],
                     source_label[workload.suite], workload.name,
                     workload.input_kind.upper(), workload.description))
    return rows


def table2_suite() -> str:
    """Render Table 2 (the benchmark suite)."""
    return render_table(
        ("Suite", "Source", "Program", "Input", "Description"),
        table2_rows(), title="Table 2: Benchmark programs")


def table3_rows() -> List[Sequence[str]]:
    """Table 3's rows: one per size class."""
    rows = []
    for size in SizeClass.ordered():
        rows.append((
            size.label.capitalize(),
            f"{size.mem_bytes // (1024 * 1024)} MB"
            if size.mem_bytes < 1024 ** 3
            else f"{size.mem_bytes // 1024 ** 3} GB",
            f"{size.elements_1d:,}",
            f"{size.side_2d}^2",
            f"{size.side_3d}^3",
        ))
    return rows


def table3_sizes() -> str:
    """Render Table 3 (parameter configurations)."""
    return render_table(
        ("Class", "Mem", "1D grid", "2D grid", "3D grid"),
        table3_rows(), title="Table 3: Parameter configurations")
