"""Deterministic fault injection for the sweep pipeline (test-only).

The resilience layer (:mod:`repro.harness.resilience`) promises that a
sweep survives per-spec failures, hung workers, killed worker
processes, and torn cache writes. Promises about failure handling are
only worth what their tests can *provoke*, so this module provides a
:class:`FaultPlan`: a declarative, fully deterministic schedule of
faults ("fail spec *i* on attempt *j*", "hang", "crash the worker
process", "corrupt the cache write") that
:func:`repro.harness.executor.execute_spec` consults through a single
test-only hook (:func:`maybe_fire`).

Determinism contract: a plan matches on the spec's *coordinates*
(workload, size, mode, iteration) plus the attempt number — never on
wall-clock time, scheduling order, or randomness — so a chaos test
replays bit-identically under ``jobs=1``, thread pools, and process
pools.

Propagation: :func:`install` stores the plan both in this process (a
module global) and in ``os.environ[PLAN_ENV]`` (as JSON), so worker
*processes* spawned afterwards inherit it; :func:`active_plan` checks
the global first, then the environment. Production code never installs
a plan, so the hook costs one ``is None`` check per run.
"""

from __future__ import annotations

import contextlib
import json
import os
import signal
import time
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence, Tuple

#: Environment variable carrying the JSON-serialized plan into worker
#: processes (set/cleared by :func:`install` / :func:`clear`).
PLAN_ENV = "REPRO_FAULT_PLAN"

#: Supported fault kinds.
KIND_FAIL = "fail"                   # raise InjectedFault
KIND_HANG = "hang"                   # sleep >> any sane timeout
KIND_CRASH = "crash"                 # SIGKILL the worker process
KIND_CORRUPT_CACHE = "corrupt_cache"  # tear the cache write afterwards
KIND_DELAY = "delay"                 # slow spec: sleep, then run normally
KIND_FLAKY_IO = "flaky_io"           # transient cache *read* error
KIND_WORKER_CRASH = "worker_crash"   # SIGKILL a fabric worker mid-lease
KIND_LEASE_STALL = "lease_stall"     # straggler: stall while heartbeating
KIND_PARTITION = "partition"         # zombie: compute on, heartbeats stop
ALL_KINDS = (KIND_FAIL, KIND_HANG, KIND_CRASH, KIND_CORRUPT_CACHE,
             KIND_DELAY, KIND_FLAKY_IO, KIND_WORKER_CRASH,
             KIND_LEASE_STALL, KIND_PARTITION)

#: Kinds interpreted only by the distributed-fabric worker loop
#: (:mod:`repro.fabric.worker`): they key on the node's *fencing
#: token* rather than the executor's attempt counter, and they never
#: fire through :func:`maybe_fire` — a fabric fault must hit the
#: lease protocol around the simulation, not the simulation itself.
FABRIC_KINDS = (KIND_WORKER_CRASH, KIND_LEASE_STALL, KIND_PARTITION)


class InjectedFault(RuntimeError):
    """The error a ``fail`` fault raises inside ``execute_spec``."""


class InjectedIOError(OSError):
    """The error a ``flaky_io`` fault raises on a cache read.

    Subclasses :class:`OSError` so production read paths that already
    degrade gracefully on real filesystem errors treat the injected
    fault identically.
    """


@dataclass(frozen=True)
class Fault:
    """One scheduled fault: *what* happens to *which* cell and *when*.

    ``attempts`` lists the attempt numbers (1-based) on which the fault
    fires; the empty tuple means *every* attempt (a permanent fault).
    For ``flaky_io`` the "attempt" is the per-process cache *read*
    count for the spec, so ``attempts=(1,)`` fails exactly the first
    read and lets a retried read succeed — the transient-IO shape.
    """

    kind: str
    workload: str
    size: str
    mode: str
    iteration: int = 0
    attempts: Tuple[int, ...] = (1,)
    hang_s: float = 30.0
    delay_s: float = 0.05

    def __post_init__(self) -> None:
        if self.kind not in ALL_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {ALL_KINDS}")
        if any(attempt < 1 for attempt in self.attempts):
            raise ValueError("attempt numbers are 1-based")
        if self.delay_s < 0:
            raise ValueError("delay_s must be >= 0")

    def matches_spec(self, spec) -> bool:
        mode = getattr(spec.mode, "value", spec.mode)
        return (spec.workload, spec.size, mode, spec.iteration) == \
            (self.workload, self.size, self.mode, self.iteration)

    def matches(self, spec, attempt: int) -> bool:
        if not self.matches_spec(spec):
            return False
        return not self.attempts or attempt in self.attempts

    @classmethod
    def for_spec(cls, spec, kind: str = KIND_FAIL,
                 attempts: Sequence[int] = (1,),
                 hang_s: float = 30.0,
                 delay_s: float = 0.05) -> "Fault":
        """Build a fault targeting an existing ``RunSpec``."""
        return cls(kind=kind, workload=spec.workload, size=spec.size,
                   mode=getattr(spec.mode, "value", spec.mode),
                   iteration=spec.iteration, attempts=tuple(attempts),
                   hang_s=hang_s, delay_s=delay_s)


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic battery of scheduled faults."""

    faults: Tuple[Fault, ...] = field(default_factory=tuple)

    def match(self, spec, attempt: int) -> Optional[Fault]:
        for fault in self.faults:
            if fault.matches(spec, attempt):
                return fault
        return None

    # ------------------------------------------------------------------
    # JSON round-trip (for the env-var hand-off to process workers)
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps([{
            "kind": f.kind, "workload": f.workload, "size": f.size,
            "mode": f.mode, "iteration": f.iteration,
            "attempts": list(f.attempts), "hang_s": f.hang_s,
            "delay_s": f.delay_s,
        } for f in self.faults])

    @classmethod
    def from_json(cls, payload: str) -> "FaultPlan":
        return cls(faults=tuple(
            Fault(kind=entry["kind"], workload=entry["workload"],
                  size=entry["size"], mode=entry["mode"],
                  iteration=entry["iteration"],
                  attempts=tuple(entry["attempts"]),
                  hang_s=entry["hang_s"],
                  delay_s=entry.get("delay_s", 0.05))
            for entry in json.loads(payload)))


# ----------------------------------------------------------------------
# Activation
# ----------------------------------------------------------------------
_ACTIVE: Optional[FaultPlan] = None

#: Per-process cache-read counter keyed by spec coordinates, consumed
#: by ``flaky_io`` faults. Deterministic within a process: the N-th
#: read of a given spec's cache entry always sees the same verdict.
_IO_READS: dict = {}


def install(plan: FaultPlan) -> None:
    """Activate a plan in this process and (via env) in future workers."""
    global _ACTIVE
    _ACTIVE = plan
    _IO_READS.clear()
    os.environ[PLAN_ENV] = plan.to_json()


def clear() -> None:
    """Deactivate fault injection everywhere."""
    global _ACTIVE
    _ACTIVE = None
    _IO_READS.clear()
    os.environ.pop(PLAN_ENV, None)


def active_plan() -> Optional[FaultPlan]:
    """The installed plan: process-local first, then the environment.

    The environment path is what worker *processes* use — they inherit
    ``PLAN_ENV`` from the coordinator at spawn time but not its module
    globals.
    """
    if _ACTIVE is not None:
        return _ACTIVE
    # repro: allow[D405] -- chaos-test control channel: the plan only
    # decides whether maybe_fire *raises*; it never alters a computed
    # value, so no environment-dependent bytes can reach the cache.
    payload = os.environ.get(PLAN_ENV)
    if payload:
        try:
            return FaultPlan.from_json(payload)
        except (ValueError, KeyError, TypeError):
            return None
    return None


@contextlib.contextmanager
def inject(plan: FaultPlan) -> Iterator[FaultPlan]:
    """``with inject(plan): ...`` — install and always clean up."""
    install(plan)
    try:
        yield plan
    finally:
        clear()


# ----------------------------------------------------------------------
# The execute_spec hook
# ----------------------------------------------------------------------
def maybe_fire(spec, attempt: int = 1) -> None:
    """Fire any fault scheduled for ``(spec, attempt)``.

    Called by :func:`repro.harness.executor.execute_spec` before the
    simulation starts. ``fail`` raises :class:`InjectedFault`; ``hang``
    sleeps for ``hang_s`` (long enough to trip any per-spec timeout);
    ``delay`` sleeps for ``delay_s`` and then lets the spec run
    normally (a deterministic *slow* spec, for deadline tests);
    ``crash`` SIGKILLs the current process — mid-spec, exactly like an
    OOM-killed or segfaulting worker. ``corrupt_cache`` and
    ``flaky_io`` do nothing here (the coordinator applies them on the
    cache write/read paths, see :func:`should_corrupt_cache` and
    :func:`maybe_flaky_io`).
    """
    plan = active_plan()
    if plan is None:
        return
    fault = plan.match(spec, attempt)
    if fault is None or fault.kind in (KIND_CORRUPT_CACHE, KIND_FLAKY_IO) \
            or fault.kind in FABRIC_KINDS:
        return
    if fault.kind == KIND_FAIL:
        raise InjectedFault(
            f"injected failure: {spec.workload}@{spec.size} "
            f"{getattr(spec.mode, 'value', spec.mode)}#{spec.iteration} "
            f"attempt {attempt}")
    if fault.kind == KIND_DELAY:
        time.sleep(fault.delay_s)
        return
    if fault.kind == KIND_HANG:
        time.sleep(fault.hang_s)
        return
    if fault.kind == KIND_CRASH:  # pragma: no cover - kills the process
        os.kill(os.getpid(), signal.SIGKILL)


def fabric_fault(spec, token: int):
    """The fabric fault (if any) scheduled for ``(spec, token)``.

    Called by :class:`repro.fabric.worker.FabricWorker` right after it
    wins a lease. The fencing token plays the role the attempt number
    plays elsewhere: ``attempts=(1,)`` hits only the *first* claimant
    of the node, so the speculative re-execution that follows a crash,
    stall, or partition runs clean — which is exactly the recovery the
    chaos tests want to observe.

    Returns the matching :class:`Fault` (kind in :data:`FABRIC_KINDS`)
    or ``None``; the worker interprets it:

    * ``worker_crash`` — SIGKILL itself while holding the lease;
    * ``lease_stall`` — sleep ``hang_s`` *while heartbeating* (a
      straggler, not a corpse: only re-dispatch can rescue the node);
    * ``partition`` — suppress heartbeats but keep computing (a
      zombie: the lease expires, another worker re-claims, and the
      zombie's late commit must lose the fence).
    """
    plan = active_plan()
    if plan is None:
        return None
    for fault in plan.faults:
        if fault.kind in FABRIC_KINDS and fault.matches(spec, token):
            return fault
    return None


def should_corrupt_cache(spec) -> bool:
    """Whether a ``corrupt_cache`` fault targets this spec (any attempt)."""
    plan = active_plan()
    if plan is None:
        return False
    fault = plan.match(spec, attempt=1)
    return fault is not None and fault.kind == KIND_CORRUPT_CACHE


def maybe_flaky_io(spec) -> None:
    """Fire a scheduled ``flaky_io`` fault for this spec's cache read.

    Called by the coordinator immediately before a result-cache read.
    Each call increments a per-process read counter for the spec; the
    fault raises :class:`InjectedIOError` when the counter matches one
    of its ``attempts`` (empty tuple = every read fails — a permanently
    unreadable entry). The counter makes the schedule deterministic:
    ``attempts=(1,)`` is the classic transient error that a single
    read retry absorbs.
    """
    plan = active_plan()
    if plan is None:
        return
    for fault in plan.faults:
        if fault.kind != KIND_FLAKY_IO or not fault.matches_spec(spec):
            continue
        coords = (spec.workload, spec.size,
                  getattr(spec.mode, "value", spec.mode), spec.iteration)
        count = _IO_READS.get(coords, 0) + 1
        _IO_READS[coords] = count
        if not fault.attempts or count in fault.attempts:
            raise InjectedIOError(
                f"injected flaky cache read #{count}: "
                f"{spec.workload}@{spec.size} {coords[2]}#{spec.iteration}")
        return
