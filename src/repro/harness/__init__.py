"""Experiment harness: regenerates every table and figure of the paper."""

from .artifact import (ARTIFACT_SCRIPTS, ArtifactResult, process_perf,
                       run_full_artifact, run_micro_all,
                       run_micro_sensitivity, run_micro_shared,
                       run_real_all)
from .executor import (CODE_VERSION, CacheStats, ResultCache, RunSpec,
                       SweepExecutor, SweepStats, cache_key,
                       clear_program_memo, collect_comparisons,
                       collect_runsets, execute_spec, expand_grid,
                       fingerprint, program_for)
from .export import comparison_to_csv, runset_to_csv, sweep_to_csv
from .figures import (COUNTER_WORKLOADS, comparison_sweep, counter_sweep,
                      fig4_distributions, fig5_stability,
                      fig6_mega_breakdown, fig7_micro, fig8_apps,
                      fig9_instruction_mix, fig10_cache_miss,
                      geomean_improvements, render_comparison,
                      render_counters, render_fig5, render_fig6)
from .plots import (render_stacked_comparison, render_stacked_suite,
                    stacked_bar)
from .resilience import (CompactionStats, RetryPolicy, SpecOutcome,
                         SpecStatus, SweepFailure, SweepInterrupted,
                         SweepJournal, SweepOutcome)
from .regression import (RegressionReport, collect_headline_metrics,
                         compare_to_snapshot, save_snapshot)
from .report import format_ns, format_pct, render_series, render_table
from .size_search import (SizeAssessment, assess_sizes, recommend_sizes,
                          render_size_search)
from .sensitivity import (BLOCK_SWEEP, CARVEOUT_SWEEP_KB, THREAD_SWEEP,
                          blocks_sensitivity, carveout_sensitivity,
                          normalized_sweep, render_sweep,
                          threads_sensitivity)
from .store import ResultStore
from .tables import table1_hardware, table2_rows, table2_suite, table3_rows, table3_sizes

__all__ = [
    "ARTIFACT_SCRIPTS", "ArtifactResult", "process_perf",
    "run_full_artifact", "run_micro_all", "run_micro_sensitivity",
    "run_micro_shared", "run_real_all", "CODE_VERSION", "CacheStats",
    "ResultCache", "RunSpec", "SweepExecutor", "SweepStats", "cache_key",
    "clear_program_memo", "collect_comparisons", "collect_runsets",
    "execute_spec", "expand_grid", "fingerprint", "program_for",
    "comparison_to_csv",
    "runset_to_csv", "sweep_to_csv", "render_stacked_comparison",
    "render_stacked_suite", "stacked_bar", "SizeAssessment",
    "assess_sizes", "recommend_sizes", "render_size_search",
    "RegressionReport", "collect_headline_metrics", "compare_to_snapshot",
    "save_snapshot", "ResultStore", "CompactionStats", "RetryPolicy",
    "SpecOutcome",
    "SpecStatus", "SweepFailure", "SweepInterrupted", "SweepJournal",
    "SweepOutcome",
    "BLOCK_SWEEP", "CARVEOUT_SWEEP_KB", "COUNTER_WORKLOADS", "THREAD_SWEEP",
    "blocks_sensitivity", "carveout_sensitivity", "comparison_sweep",
    "counter_sweep", "fig10_cache_miss", "fig4_distributions",
    "fig5_stability", "fig6_mega_breakdown", "fig7_micro", "fig8_apps",
    "fig9_instruction_mix", "format_ns", "format_pct",
    "geomean_improvements", "normalized_sweep", "render_comparison",
    "render_counters", "render_fig5", "render_fig6", "render_series",
    "render_sweep", "render_table", "table1_hardware", "table2_rows",
    "table2_suite", "table3_rows", "table3_sizes", "threads_sensitivity",
]
