"""ASCII stacked-bar rendering in the style of the paper's figures.

Figures 7, 8 and 11-13 plot stacked bars - gpu_kernel (darkest) at the
bottom, then memcpy, then allocation (lightest) - normalized to the
standard configuration. This module renders the same encoding in text:
``K`` for kernel, ``M`` for memcpy, ``A`` for allocation.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..core.configs import ALL_MODES, TransferMode
from ..core.results import ModeComparison

GLYPHS = (("gpu_kernel", "K"), ("memcpy", "M"), ("allocation", "A"))


def stacked_bar(shares: Dict[str, float], width: int = 50) -> str:
    """One horizontal stacked bar; `shares` are in units of the
    normalization baseline (so they may sum above 1.0)."""
    if width < 10:
        raise ValueError("width must be >= 10")
    cells: List[str] = []
    for key, glyph in GLYPHS:
        length = int(round(shares.get(key, 0.0) * width))
        cells.append(glyph * length)
    return "".join(cells)


def render_stacked_comparison(comparison: ModeComparison,
                              width: int = 50,
                              modes: Sequence[TransferMode] = ALL_MODES
                              ) -> str:
    """Figure-7-style bar group for one workload.

    Bars are normalized to the standard configuration's total; a ``|``
    marks the 1.0 line.
    """
    lines = [f"{comparison.workload} @ {comparison.size} "
             f"(K=gpu_kernel M=memcpy A=allocation, | = standard total)"]
    for mode in modes:
        if mode not in comparison.by_mode:
            continue
        shares = comparison.normalized_breakdown(mode)
        bar = stacked_bar(shares, width)
        marker_pos = width
        if len(bar) >= marker_pos:
            bar = bar[:marker_pos] + "|" + bar[marker_pos:]
        else:
            bar = bar + " " * (marker_pos - len(bar)) + "|"
        total = comparison.normalized_total(mode)
        lines.append(f"  {mode.value:>20} {bar} {total:.3f}")
    return "\n".join(lines)


def render_stacked_suite(comparisons: Dict[str, ModeComparison],
                         width: int = 50) -> str:
    """The full figure: one bar group per workload."""
    return "\n\n".join(
        render_stacked_comparison(comparison, width=width)
        for comparison in comparisons.values()
    )
