"""Plain-text rendering helpers for tables and figure data."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Render an aligned ASCII table."""
    rendered_rows: List[List[str]] = [[str(cell) for cell in row]
                                      for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width)
                         for cell, width in zip(cells, widths)).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(headers))
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(fmt(row) for row in rendered_rows)
    return "\n".join(lines)


def render_series(label: str, xs: Sequence[object],
                  ys: Sequence[float], unit: str = "") -> str:
    """Render one figure series as 'x: y' lines with a bar sketch."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    peak = max(ys) if ys else 1.0
    lines = [label]
    for x, y in zip(xs, ys):
        bar = "#" * max(1, int(30 * y / peak)) if peak > 0 else ""
        lines.append(f"  {str(x):>12}: {y:12.4g}{unit} {bar}")
    return "\n".join(lines)


def format_ns(value_ns: float) -> str:
    """Human-readable duration."""
    if value_ns >= 1e9:
        return f"{value_ns / 1e9:.2f} s"
    if value_ns >= 1e6:
        return f"{value_ns / 1e6:.2f} ms"
    if value_ns >= 1e3:
        return f"{value_ns / 1e3:.2f} us"
    return f"{value_ns:.0f} ns"


def format_pct(fraction: float, signed: bool = False) -> str:
    """Format a fraction as a percentage string."""
    sign = "+" if signed and fraction >= 0 else ""
    return f"{sign}{fraction * 100:.2f} %"
