"""CSV export of experiment results.

Downstream plotting (the paper's matplotlib scripts, spreadsheets)
wants flat tables; these helpers serialize run sets, comparisons, and
sweeps into tidy CSV files.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Dict, Optional, Union

from ..core.results import BREAKDOWN_KEYS, ModeComparison, RunSet


def runset_to_csv(runs: RunSet,
                  path: Optional[Union[str, Path]] = None) -> str:
    """One row per run: seed, components, total."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["workload", "mode", "size", "seed", "alloc_ns",
                     "memcpy_ns", "kernel_ns", "total_ns", "wall_ns"])
    for run in runs.runs:
        writer.writerow([run.workload, run.mode.value, run.size, run.seed,
                         f"{run.alloc_ns:.1f}", f"{run.memcpy_ns:.1f}",
                         f"{run.kernel_ns:.1f}", f"{run.total_ns:.1f}",
                         f"{run.wall_ns:.1f}"])
    text = buffer.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text


def comparison_to_csv(comparison: ModeComparison,
                      path: Optional[Union[str, Path]] = None) -> str:
    """One row per configuration: mean breakdown + normalized total."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["workload", "size", "mode", *BREAKDOWN_KEYS,
                     "mean_total_ns", "normalized_total",
                     "improvement_pct"])
    for mode, runs in comparison.by_mode.items():
        breakdown = runs.mean_breakdown()
        writer.writerow([
            comparison.workload, comparison.size, mode.value,
            *(f"{breakdown[key]:.1f}" for key in BREAKDOWN_KEYS),
            f"{runs.mean_total_ns():.1f}",
            f"{comparison.normalized_total(mode):.6f}",
            f"{comparison.improvement_pct(mode):.4f}",
        ])
    text = buffer.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text


def sweep_to_csv(data: Dict[int, Dict[str, RunSet]], axis_label: str,
                 path: Optional[Union[str, Path]] = None) -> str:
    """Sensitivity sweeps (Figs. 11-13): one row per (x, mode)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow([axis_label, "mode", "mean_total_ns", "cv"])
    for key, by_mode in data.items():
        for mode, runs in by_mode.items():
            writer.writerow([key, mode, f"{runs.mean_total_ns():.1f}",
                             f"{runs.cv():.6f}"])
    text = buffer.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text
