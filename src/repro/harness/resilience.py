"""Resilience primitives for the sweep executor.

The paper's headline figures aggregate 5 configurations x 21 workloads
x several sizes; at production scale one raising cell must not abort
the grid. This module holds the vocabulary the executor uses to keep
sweeps alive:

* :class:`SpecStatus` / :class:`SpecOutcome` - per-spec terminal state
  (ok / failed / timed-out / skipped) carrying the exception and
  traceback instead of raising it through the pool;
* :class:`SweepOutcome` - an ordered outcome list with partial-result
  accessors and a human-readable failure summary;
* :class:`RetryPolicy` - bounded retries with exponential backoff and
  *deterministic* jitter (seeded from the spec's own seed stream, so a
  rerun backs off identically bit-for-bit), per-spec wall-clock
  timeouts (process backend), and the poison-spec crash threshold;
* :class:`SweepJournal` - an append-only JSONL checkpoint of terminal
  spec keys next to the result cache, enabling ``--resume``. It
  doubles as the *coordination log* of the distributed sweep fabric
  (:mod:`repro.fabric`): :meth:`~SweepJournal.append_event` records
  claim / renew / commit / abandon / redispatch / fenced events that
  multiple worker processes append concurrently (one ``O_APPEND``
  line each, so records never interleave), and
  :meth:`~SweepJournal.compact` rewrites a long-lived journal down to
  its live suffix atomically;
* :class:`SweepFailure` / :class:`SweepInterrupted` - the strict-mode
  and Ctrl-C exits, both carrying the partial outcome.

Nothing here imports the executor; the executor imports this.
"""

from __future__ import annotations

import enum
import json
import logging
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Union

import numpy as np

logger = logging.getLogger(__name__)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.results import RunResult
    from .executor import RunSpec


def describe_spec(spec) -> str:
    """Compact human label for one grid cell."""
    mode = getattr(spec.mode, "value", spec.mode)
    label = f"{spec.workload}@{spec.size} {mode}#{spec.iteration}"
    if getattr(spec, "seed_salt", ""):
        label += spec.seed_salt
    return label


class SpecStatus(enum.Enum):
    """Terminal state of one spec within a sweep."""

    OK = "ok"
    FAILED = "failed"
    TIMED_OUT = "timed_out"
    SKIPPED = "skipped"

    @property
    def is_ok(self) -> bool:
        return self is SpecStatus.OK


#: Journal statuses that mean "do not re-attempt on --resume".
TERMINAL_FAILURE_STATUSES = (SpecStatus.FAILED.value,
                             SpecStatus.TIMED_OUT.value)


@dataclass
class SpecOutcome:
    """What happened to one spec: result *or* failure detail, never a raise."""

    spec: "RunSpec"
    index: int
    status: SpecStatus
    result: Optional["RunResult"] = None
    error: Optional[str] = None
    traceback: Optional[str] = None
    attempts: int = 0
    crashes: int = 0
    from_cache: bool = False
    key: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status is SpecStatus.OK

    @classmethod
    def settled_ok(cls, spec: "RunSpec", index: int, result: "RunResult",
                   key: Optional[str]) -> "SpecOutcome":
        """Bulk-settle fast path: an OK outcome in one dict install.

        The executor publishes hundreds of precomputed grid hits in one
        loop; this skips the generated ``__init__``'s per-field
        default handling.  Field set must mirror the dataclass.
        """
        self = cls.__new__(cls)
        self.__dict__.update(
            spec=spec, index=index, status=SpecStatus.OK, result=result,
            error=None, traceback=None, attempts=1, crashes=0,
            from_cache=False, key=key)
        return self

    def describe(self) -> str:
        head = f"{describe_spec(self.spec)}: {self.status.value}"
        if self.status is SpecStatus.OK:
            return head + (" (cache)" if self.from_cache else
                           f" after {self.attempts} attempt(s)")
        detail = self.error or ""
        if self.attempts:
            head += f" after {self.attempts} attempt(s)"
        if self.crashes:
            head += f", {self.crashes} worker crash(es)"
        return f"{head}: {detail}" if detail else head


@dataclass
class SweepOutcome:
    """Ordered per-spec outcomes of one :meth:`SweepExecutor.run_outcomes`."""

    outcomes: List[SpecOutcome] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.outcomes)

    def __iter__(self):
        return iter(self.outcomes)

    @property
    def results(self) -> List[Optional["RunResult"]]:
        """Results in spec order; failed/skipped cells are ``None``."""
        return [outcome.result for outcome in self.outcomes]

    @property
    def ok_results(self) -> List["RunResult"]:
        return [o.result for o in self.outcomes if o.ok and o.result is not None]

    @property
    def failures(self) -> List[SpecOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def complete(self) -> bool:
        return not self.failures

    def counts(self) -> Dict[str, int]:
        tally = {status.value: 0 for status in SpecStatus}
        for outcome in self.outcomes:
            tally[outcome.status.value] += 1
        return tally

    def failure_summary(self, limit: int = 10) -> str:
        """Multi-line annotation of every gap (for figure footers)."""
        failures = self.failures
        if not failures:
            return ""
        counts = self.counts()
        kinds = ", ".join(f"{counts[s]} {s}" for s in
                          ("failed", "timed_out", "skipped") if counts[s])
        lines = [f"[sweep] partial: {len(failures)} of {len(self.outcomes)} "
                 f"specs missing ({kinds})"]
        for outcome in failures[:limit]:
            lines.append(f"  - {outcome.describe()}")
        if len(failures) > limit:
            lines.append(f"  ... and {len(failures) - limit} more")
        return "\n".join(lines)


class SweepFailure(RuntimeError):
    """Strict mode: raised at the first *permanent* spec failure."""

    def __init__(self, outcome: SpecOutcome,
                 partial: Optional[SweepOutcome] = None):
        self.outcome = outcome
        self.partial = partial
        super().__init__(outcome.describe())


class SweepInterrupted(KeyboardInterrupt):
    """Ctrl-C / SIGTERM mid-sweep, after the journal was flushed.

    Subclasses :class:`KeyboardInterrupt` so generic interrupt handling
    (including the CLI's exit-130 path) still applies; carries the
    partial :class:`SweepOutcome` so callers can salvage finished work.
    """

    def __init__(self, partial: SweepOutcome):
        self.partial = partial
        done = sum(1 for o in partial.outcomes if o.ok)
        super().__init__(f"sweep interrupted with {done} of "
                         f"{len(partial.outcomes)} specs complete")


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """Bounded, deterministic retry/backoff/timeout policy.

    * ``retries`` - extra attempts after the first (0 = fail fast);
    * ``backoff_s`` * ``backoff_factor``^(attempt-1) - base delay
      before attempt N+1;
    * ``jitter`` - +/- fraction of the base delay, drawn from a
      generator seeded by the *spec's own* ``seed_sequence`` so reruns
      back off bit-identically (no shared RNG, no wall-clock seeds);
    * ``timeout_s`` - per-spec wall-clock budget, enforced on the
      process backend only (threads cannot be killed; the thread and
      inline backends document-and-ignore it);
    * ``max_crashes`` - quarantine a spec as poison after this many
      worker-process crashes while it was in flight.
    """

    retries: int = 0
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    jitter: float = 0.25
    timeout_s: Optional[float] = None
    max_crashes: int = 3

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.backoff_s < 0 or self.backoff_factor < 1.0:
            raise ValueError("backoff must be >= 0 with factor >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be > 0")
        if self.max_crashes < 1:
            raise ValueError("max_crashes must be >= 1")

    @property
    def max_attempts(self) -> int:
        return self.retries + 1

    def delay_s(self, spec, attempt: int) -> float:
        """Backoff before retrying ``spec`` after failed attempt N (1-based).

        Deterministic: the jitter stream is seeded from the spec's seed
        sequence, so the same spec backs off identically on every rerun
        of the sweep — scheduling noise cannot leak into wall-clock
        patterns that tests or bisections depend on.
        """
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        base = self.backoff_s * (self.backoff_factor ** (attempt - 1))
        if base == 0.0:
            return 0.0
        if self.jitter == 0.0:
            return base
        rng = np.random.default_rng(spec.seed_sequence())
        # attempt-th draw, so successive retries see fresh-but-fixed jitter
        offsets = rng.uniform(-1.0, 1.0, size=attempt)
        return base * (1.0 + self.jitter * float(offsets[-1]))


#: Policy the executor uses when none is given: single attempt, no
#: timeout — i.e. exactly the pre-resilience behavior, plus isolation.
DEFAULT_RETRY_POLICY = RetryPolicy()


# ----------------------------------------------------------------------
# Checkpoint journal
# ----------------------------------------------------------------------
@dataclass
class CompactionStats:
    """What one :meth:`SweepJournal.compact` pass did.

    ``salvaged`` counts undecodable lines dropped while reading (a
    torn tail from an interrupted append, or mid-file bit rot); they
    are gone from the rewritten journal, exactly as a fresh
    :meth:`SweepJournal.load` would have ignored them.
    """

    records_before: int = 0
    records_after: int = 0
    bytes_before: int = 0
    bytes_after: int = 0
    salvaged: int = 0

    @property
    def dropped(self) -> int:
        return self.records_before - self.records_after

    def summary(self) -> str:
        return (f"journal compacted: {self.records_before} -> "
                f"{self.records_after} records "
                f"({self.bytes_before} -> {self.bytes_after} bytes, "
                f"{self.salvaged} salvaged)")


class SweepJournal:
    """Append-only JSONL checkpoint of terminal spec outcomes.

    One line per terminal outcome: ``{"key", "status", "spec",
    "attempts", "error", "ts"}``. Lives next to the result cache
    (:meth:`beside`). Each record is written with open/append/close so
    a crash can tear at most the final line — and :meth:`load`
    salvages a torn tail explicitly (the damaged line is dropped with
    a logged warning and counted in ``last_salvaged``, never silently).
    ``--resume`` uses the journal to skip specs that already failed
    permanently; *completed* specs need no journal help because the
    content-addressed cache already covers them.

    ``durable=True`` additionally flushes **and fsyncs** every record —
    the long-lived-process contract (``repro serve``): once
    :meth:`record` returns, the line survives a power cut, not just a
    process kill. One-shot CLI sweeps keep the cheaper default.
    """

    FILENAME = "journal.jsonl"

    def __init__(self, path: Union[str, Path], durable: bool = False):
        self.path = Path(path)
        self.durable = durable
        #: Damaged lines dropped by the most recent :meth:`load` /
        #: :meth:`latest_entries` call (torn tail or mid-file rot).
        self.last_salvaged = 0

    @classmethod
    def beside(cls, cache_root: Union[str, Path],
               durable: bool = False) -> "SweepJournal":
        return cls(Path(cache_root) / cls.FILENAME, durable=durable)

    def _read_records(self) -> List[Dict]:
        """Every decodable record, in append order, salvaging damage.

        Undecodable lines are *salvaged*: dropped from the result,
        counted in ``last_salvaged``, and logged — a torn final line
        (the expected crash artifact of an append interrupted mid-
        write) is called out as such, while a corrupt line anywhere
        else is reported with its line number so real bit rot is never
        mistaken for an ordinary crash tail.
        """
        records: List[Dict] = []
        self.last_salvaged = 0
        try:
            text = self.path.read_text()
        except OSError:
            return records
        lines = text.splitlines()
        for lineno, line in enumerate(lines, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                self.last_salvaged += 1
                if lineno == len(lines):
                    logger.warning(
                        "journal %s: salvaged truncated final line "
                        "(%d bytes) — an interrupted append; the record "
                        "it carried is lost and its spec will re-run",
                        self.path, len(line))
                else:
                    logger.warning(
                        "journal %s: dropped corrupt line %d of %d "
                        "(not a crash tail — possible bit rot)",
                        self.path, lineno, len(lines))
                continue
            if isinstance(record, dict):
                records.append(record)
        return records

    def latest_entries(self) -> Dict[str, Dict]:
        """Latest full key-record per key (later lines win).

        Coordination *events* (records without ``key``/``status``, see
        :meth:`append_event`) are transparently skipped, so resume and
        service readers see exactly the checkpoint view they always
        did even on a journal the fabric also writes to.
        """
        entries: Dict[str, Dict] = {}
        for record in self._read_records():
            key, status = record.get("key"), record.get("status")
            if key and status:
                entries[key] = record
        return entries

    def events(self) -> List[Dict]:
        """Coordination events, in append order.

        An event is any record carrying an ``event`` field — the
        fabric's claim / renew / commit / abandon / redispatch /
        fenced protocol records. Commit records carry *both* views
        (``event`` plus ``key``/``status``), so they show up here and
        in :meth:`latest_entries`.
        """
        return [record for record in self._read_records()
                if record.get("event")]

    def append_event(self, event: str, **fields) -> None:
        """Append one coordination-log event record.

        Same durability contract as :meth:`record`: open-append-close
        per line (plus fsync under ``durable``), and a single
        ``write()`` in append mode so concurrent *processes* sharing
        the journal never interleave bytes mid-line.
        """
        entry: Dict = {"event": str(event), "ts": time.time()}
        for name, value in fields.items():
            if value is not None:
                entry[name] = value
        self._append_line(entry)

    def load(self) -> Dict[str, str]:
        """Latest journaled status per key (later lines win)."""
        return {key: record["status"]
                for key, record in self.latest_entries().items()}

    def failed_keys(self) -> Dict[str, str]:
        """Keys whose latest status is a permanent failure."""
        return {key: status for key, status in self.load().items()
                if status in TERMINAL_FAILURE_STATUSES}

    def record(self, key: str, status: Union[SpecStatus, str], spec=None,
               attempts: int = 0, error: Optional[str] = None,
               extra: Optional[Dict] = None) -> None:
        status_value = (status.value if isinstance(status, SpecStatus)
                        else str(status))
        entry: Dict = {"key": key, "status": status_value,
                       "attempts": attempts, "ts": time.time()}
        if spec is not None:
            entry["spec"] = {
                "workload": spec.workload, "size": spec.size,
                "mode": getattr(spec.mode, "value", spec.mode),
                "iteration": spec.iteration,
                # The full coordinate set, so a restarted service can
                # reconstruct the RunSpec bit-exactly from the journal
                # alone (defaults tolerated for pre-upgrade records).
                "base_seed": getattr(spec, "base_seed", 1234),
                "blocks": getattr(spec, "blocks", None),
                "threads": getattr(spec, "threads", None),
                "smem_carveout_bytes": getattr(spec, "smem_carveout_bytes",
                                               None),
                "seed_salt": getattr(spec, "seed_salt", ""),
            }
        if error:
            entry["error"] = str(error)[:500]
        if extra:
            # Fabric commit records ride the key-record (one line
            # serves the checkpoint view *and* the event view); the
            # reserved fields above always win a collision.
            entry = {**extra, **entry}
        self._append_line(entry)

    def _append_line(self, entry: Dict) -> None:
        """One record, one atomic append.

        Open-append-close per record: the file is always flushed, so
        SIGKILL between records loses nothing and Ctrl-C loses at
        most the line being written. ``durable`` upgrades that to
        power-cut safety with an fsync per record.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as stream:
            stream.write(json.dumps(entry) + "\n")
            if self.durable:
                stream.flush()
                os.fsync(stream.fileno())

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    #: Event kinds folded away once their node has terminally resolved
    #: (first commit wins; the claim/renew chatter behind it is dead).
    _EPHEMERAL_EVENTS = ("claim", "renew", "redispatch", "fenced")

    def compact(self) -> CompactionStats:
        """Rewrite the journal down to its live suffix, atomically.

        Resumed, re-keyed, and fabric-coordinated journals grow
        without bound: every retry appends a fresh key-record, every
        heartbeat a ``renew`` event. Compaction keeps exactly the
        records a cold reader would still act on:

        * the **latest** key-record per key (what :meth:`load` and
          ``--resume`` already reduce to);
        * the **first** ``commit`` event per node (first-commit-wins —
          later duplicate commits are dropped);
        * for *uncommitted* nodes only, the latest event per
          ephemeral kind (``claim``/``renew``/``redispatch``/
          ``fenced``) plus every ``abandon``, so in-flight lease state
          stays diagnosable;
        * any other event verbatim.

        Damaged lines (torn tail, bit rot) are salvaged exactly as
        :meth:`load` salvages them — dropped, counted, logged — and do
        not survive into the rewrite. The rewrite goes through a temp
        file and an atomic rename (fsynced when ``durable``), so a
        crash mid-compaction leaves either the old journal or the new
        one, never a torn hybrid.
        """
        stats = CompactionStats()
        try:
            stats.bytes_before = self.path.stat().st_size
        except OSError:
            return stats  # no journal, nothing to do
        records = self._read_records()
        stats.records_before = len(records)
        stats.salvaged = self.last_salvaged

        latest_key: Dict[str, int] = {}       # key -> position of latest
        committed_nodes = set()
        first_commit: Dict[object, int] = {}  # node -> position of first
        for position, record in enumerate(records):
            key, status = record.get("key"), record.get("status")
            if key and status:
                latest_key[key] = position
            if record.get("event") == "commit" and "node" in record:
                node = record["node"]
                if node not in first_commit:
                    first_commit[node] = position
                committed_nodes.add(node)

        keep: List[int] = []
        latest_ephemeral: Dict[tuple, int] = {}
        for position, record in enumerate(records):
            event = record.get("event")
            key = record.get("key")
            if key and record.get("status"):
                if latest_key[key] != position:
                    continue  # superseded key-record
                if event == "commit" and \
                        first_commit.get(record.get("node")) != position:
                    continue  # duplicate commit (lost first-commit-wins)
                keep.append(position)
                continue
            if event is None:
                continue  # undecipherable non-event record: drop
            node = record.get("node")
            if event == "commit":
                if first_commit.get(node) == position:
                    keep.append(position)
                continue
            if node is not None and node in committed_nodes \
                    and event in self._EPHEMERAL_EVENTS:
                continue  # dead chatter behind a committed node
            if event in self._EPHEMERAL_EVENTS:
                latest_ephemeral[(event, node)] = position
                continue  # resolved after the scan
            keep.append(position)
        keep.extend(latest_ephemeral.values())
        keep.sort()

        payload = "".join(json.dumps(records[position]) + "\n"
                          for position in keep)
        tmp = self.path.with_name(f".{self.path.name}.{os.getpid()}.tmp")
        with tmp.open("w") as stream:
            stream.write(payload)
            if self.durable:
                stream.flush()
                os.fsync(stream.fileno())
        tmp.replace(self.path)  # atomic on POSIX
        stats.records_after = len(keep)
        stats.bytes_after = len(payload.encode("utf-8"))
        return stats

    def clear(self) -> None:
        try:
            os.remove(self.path)
        except OSError:
            pass

    def __len__(self) -> int:
        return len(self.load())
