"""Command-line interface: ``python -m repro <command>``.

Commands mirror the paper's experiment workflow (and the artifact
appendix's ``run_*`` scripts, see :mod:`repro.harness.artifact`):

* ``list``     - the Table 2 suite
* ``sizes``    - the Table 3 size classes
* ``hardware`` - the Table 1 platform
* ``run``      - one workload under one configuration
* ``compare``  - one workload under all five configurations
* ``figure``   - regenerate a figure (4-14) as text
* ``sweep``    - a full comparison grid through the parallel,
  cache-backed executor (``--jobs N``, ``--no-cache``)
* ``advise``   - configuration recommendation for a workload
* ``interjob`` - the Sec. 6 inter-job pipeline estimate
* ``lint``     - statically validate workload programs (exit 1 on errors)
* ``bench``    - engine perf-trajectory snapshots (``BENCH_*.json``)
  with a bootstrap-CI regression gate (``--check``)
* ``serve``    - the sweep-as-a-service HTTP server (admission
  control, deadlines, graceful SIGTERM drain; see docs/SERVICE.md)
* ``fabric``   - the distributed sweep fabric: compile a grid to a
  spec DAG and run it across N crash-tolerant worker processes
  coordinated through a shared directory (see docs/FABRIC.md)
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .core.advisor import recommend_mode
from .core.configs import ALL_MODES, TransferMode
from .core.execution import ENGINES
from .core.experiment import Experiment
from .core.pipeline_model import interjob_speedup
from .core.roofline import render_roofline, suite_roofline
from .fabric.dag import STRUCTURES
from .harness.executor import (ResultCache, SweepExecutor, default_cache_dir,
                               default_jobs)
from .harness.resilience import (RetryPolicy, SweepFailure, SweepJournal)
from .harness.figures import (comparison_sweep, fig4_distributions,
                              fig5_stability, fig6_mega_breakdown,
                              fig7_micro, fig8_apps, fig9_instruction_mix,
                              fig10_cache_miss, geomean_improvements,
                              render_comparison, render_counters,
                              render_fig5, render_fig6)
from .harness.report import format_ns, render_table
from .harness.size_search import assess_sizes, render_size_search
from .harness.sensitivity import (blocks_sensitivity, carveout_sensitivity,
                                  normalized_sweep, render_sweep,
                                  threads_sensitivity)
from .harness.tables import table1_hardware, table2_suite, table3_sizes
from .workloads.registry import ALL_NAMES, get_workload
from .workloads.sizes import SizeClass


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--size", default="super",
                        choices=[s.label for s in SizeClass.ordered()])
    parser.add_argument("--iterations", type=int, default=10)
    parser.add_argument("--seed", type=int, default=1234)


def _add_executor_flags(parser: argparse.ArgumentParser) -> None:
    """Sweep-executor knobs shared by grid-running commands."""
    parser.add_argument("--jobs", type=int, default=None,
                        help="parallel workers (default: $REPRO_JOBS or 1)")
    parser.add_argument("--backend", default="thread",
                        choices=("thread", "process"),
                        help="worker pool kind for --jobs > 1")
    parser.add_argument("--no-cache", action="store_true",
                        help="always re-simulate; do not read or write "
                             "the result cache")
    parser.add_argument("--cache-dir", default=None,
                        help="result-cache directory (default: "
                             "$REPRO_CACHE_DIR or ~/.cache/repro/results)")
    parser.add_argument("--retries", type=int, default=0,
                        help="re-run a failed cell up to N extra times "
                             "with exponential backoff (default: 0)")
    parser.add_argument("--timeout", type=float, default=None, metavar="S",
                        help="per-cell wall-clock budget in seconds "
                             "(process backend only; hung workers are "
                             "killed and the cell retried or marked "
                             "timed-out)")
    parser.add_argument("--resume", action="store_true",
                        help="skip cells the journal recorded as "
                             "permanently failed in an earlier run "
                             "(completed cells replay from the cache); "
                             "requires the cache")
    parser.add_argument("--strict", action="store_true",
                        help="fail fast: abort the sweep at the first "
                             "permanent cell failure (exit 1) instead of "
                             "rendering gaps (exit 3)")
    parser.add_argument("--engine", default="reference",
                        choices=tuple(ENGINES),
                        help="simulation engine (bit-identical results, "
                             "see docs/PERFORMANCE.md): "
                             + "; ".join(f"'{name}' {spec.summary}"
                                         for name, spec in ENGINES.items()))


def _progress_printer():
    """Coarse progress lines on stderr (~10 ticks per sweep)."""
    def tick(done: int, total: int, spec) -> None:
        step = max(1, total // 10)
        if done % step == 0 or done == total:
            print(f"  [{done}/{total}] {spec.workload}@{spec.size} "
                  f"{spec.mode.value}", file=sys.stderr)
    return tick


def _executor_from_args(args) -> SweepExecutor:
    cache = None
    if not getattr(args, "no_cache", False):
        root = Path(args.cache_dir) if args.cache_dir else default_cache_dir()
        cache = ResultCache(root)
    resume = getattr(args, "resume", False)
    if resume and cache is None:
        raise SystemExit("--resume needs the result cache; "
                         "drop --no-cache to use it")
    if args.jobs is not None and args.jobs < 1:
        raise SystemExit(f"--jobs must be a positive integer, "
                         f"got {args.jobs}")
    retries = getattr(args, "retries", 0)
    if retries < 0:
        raise SystemExit(f"--retries must be >= 0, got {retries}")
    timeout = getattr(args, "timeout", None)
    if timeout is not None and timeout <= 0:
        raise SystemExit(f"--timeout must be positive, got {timeout:g}")
    try:
        jobs = args.jobs if args.jobs is not None else default_jobs()
        retry = RetryPolicy(retries=retries, timeout_s=timeout)
        journal = (SweepJournal.beside(cache.root)
                   if cache is not None else None)
        return SweepExecutor(jobs=jobs, cache=cache, backend=args.backend,
                             progress=_progress_printer(), retry=retry,
                             journal=journal, resume=resume,
                             strict=getattr(args, "strict", False),
                             engine=getattr(args, "engine", "reference"))
    except ValueError as error:
        raise SystemExit(str(error)) from error


#: Exit code for a sweep that completed with gaps (partial results).
EXIT_PARTIAL = 3
#: Exit code for a lint whose only findings are baseline-grandfathered:
#: distinguishable from clean (0) and from new errors (1) so CI can gate
#: on "no *new* findings" while a cleanup is in flight.
EXIT_BASELINE = 4
#: Exit code for an interrupted run (Ctrl-C / SIGTERM), per POSIX custom.
EXIT_INTERRUPTED = 130


def _finish_sweep(text: str, executor: SweepExecutor):
    """Append the timing + cache-stats summary to a command's output.

    Returns ``(text, exit_code)``: 0 when the sweep was complete, 3
    (:data:`EXIT_PARTIAL`) when cells are missing — their failure
    summary is appended so a partial table is never mistaken for a
    complete one.
    """
    summary = executor.summary()
    if executor.cache is not None:
        stats = executor.cache.stats
        summary += (f" (cache: {stats.hits} hits / {stats.misses} misses, "
                    f"{executor.cache.root})")
    code = 0
    outcome = executor.last_outcome
    if outcome is not None and not outcome.complete:
        summary += "\n" + outcome.failure_summary()
        code = EXIT_PARTIAL
    return text + "\n" + summary, code


def _cmd_list(_args) -> str:
    return table2_suite()


def _cmd_sizes(_args) -> str:
    return table3_sizes()


def _cmd_hardware(_args) -> str:
    return table1_hardware()


def _cmd_run(args) -> str:
    size = SizeClass.from_label(args.size)
    mode = TransferMode.from_label(args.mode)
    experiment = Experiment(workload=args.workload, size=size,
                            modes=(mode,), iterations=args.iterations,
                            base_seed=args.seed)
    runs = experiment.run_mode(mode)
    breakdown = runs.mean_breakdown()
    rows = [
        ("total", format_ns(runs.mean_total_ns())),
        ("gpu_kernel", format_ns(breakdown["gpu_kernel"])),
        ("memcpy", format_ns(breakdown["memcpy"])),
        ("allocation", format_ns(breakdown["allocation"])),
        ("std/mean", f"{runs.cv():.4f}"),
    ]
    return render_table(
        ("metric", "value"), rows,
        title=f"{args.workload} @ {size.label} under {mode.value} "
              f"({args.iterations} runs)")


def _cmd_compare(args) -> str:
    size = SizeClass.from_label(args.size)
    experiment = Experiment(workload=args.workload, size=size,
                            iterations=args.iterations,
                            base_seed=args.seed)
    comparison = experiment.run()
    rows = []
    for mode in ALL_MODES:
        runs = comparison.by_mode[mode]
        rows.append((mode.value, format_ns(runs.mean_total_ns()),
                     f"{comparison.normalized_total(mode):.3f}",
                     f"{comparison.improvement_pct(mode):+.2f} %"))
    from .harness.plots import render_stacked_comparison
    table = render_table(
        ("config", "mean total", "vs standard", "improvement"), rows,
        title=f"{args.workload} @ {size.label} ({args.iterations} runs)")
    return table + "\n\n" + render_stacked_comparison(comparison)


def _cmd_figure(args):
    iterations = args.iterations
    figure = args.id
    executor = _executor_from_args(args)
    if figure == "4":
        data = fig4_distributions(iterations=iterations, executor=executor)
        return _finish_sweep(
            render_fig5(fig5_stability(data)) +
            "\n(see benchmarks/bench_fig4_size_distributions.py for the "
            "full per-run dump)", executor)
    if figure == "5":
        return _finish_sweep(render_fig5(fig5_stability(
            fig4_distributions(iterations=iterations, executor=executor))),
            executor)
    if figure == "6":
        return _finish_sweep(render_fig6(fig6_mega_breakdown(
            iterations=iterations, executor=executor)), executor)
    if figure in ("7", "7a", "7b"):
        size = SizeClass.LARGE if figure == "7a" else SizeClass.SUPER
        comparisons = fig7_micro(size=size, iterations=iterations,
                                 executor=executor)
        text = render_comparison(comparisons,
                                 f"Fig. 7: micro @ {size.label}")
        improvements = geomean_improvements(comparisons)
        return _finish_sweep(text + "\n" + "  ".join(
            f"{mode}={value:+.2f}%" for mode, value in improvements.items()),
            executor)
    if figure == "8":
        comparisons = fig8_apps(iterations=iterations, executor=executor)
        return _finish_sweep(
            render_comparison(comparisons, "Fig. 8: applications @ super"),
            executor)
    if figure == "9":
        return _finish_sweep(render_counters(
            fig9_instruction_mix(executor=executor),
            ("control", "integer"), "Fig. 9"), executor)
    if figure == "10":
        return _finish_sweep(render_counters(
            fig10_cache_miss(executor=executor),
            ("load_miss", "store_miss"), "Fig. 10"), executor)
    if figure == "11":
        data = blocks_sensitivity(iterations=iterations, executor=executor)
        return _finish_sweep(
            render_sweep(normalized_sweep(data), "#blocks", "Fig. 11"),
            executor)
    if figure == "12":
        data = threads_sensitivity(iterations=iterations, executor=executor)
        return _finish_sweep(
            render_sweep(normalized_sweep(data, baseline_key=1024),
                         "#threads", "Fig. 12"), executor)
    if figure == "13":
        data = carveout_sensitivity(iterations=iterations, executor=executor)
        return _finish_sweep(
            render_sweep(normalized_sweep(data, baseline_key=32),
                         "smem KB", "Fig. 13"), executor)
    if figure == "14":
        program = get_workload("vector_seq").program(SizeClass.SUPER)
        rows = []
        for mode in (TransferMode.STANDARD,
                     TransferMode.UVM_PREFETCH_ASYNC):
            entry = interjob_speedup(program, mode, jobs=8)
            rows.append((mode.value,
                         format_ns(entry["sequential_wall_ns"]),
                         format_ns(entry["pipelined_wall_ns"]),
                         f"{entry['improvement_pct']:.1f} %"))
        return render_table(("config", "sequential", "pipelined",
                             "improvement"), rows, title="Fig. 14")
    raise SystemExit(f"unknown figure {figure!r} (expected 4-14)")


def _cmd_sweep(args):
    """Full comparison grid through the parallel executor."""
    if getattr(args, "compact_journal", False):
        return _compact_journal(args)
    executor = _executor_from_args(args)
    workloads = args.workloads or list(ALL_NAMES)
    unknown = sorted(set(workloads) - set(ALL_NAMES))
    if unknown:
        raise SystemExit(f"unknown workloads: {', '.join(unknown)} "
                         f"(see `repro list`)")
    sizes = [SizeClass.from_label(label)
             for label in (args.sizes or ["super"])]
    pieces = []
    for size in sizes:
        names = [name for name in workloads
                 if get_workload(name).supports(size)]
        comparisons = comparison_sweep(names, size,
                                       iterations=args.iterations,
                                       base_seed=args.seed,
                                       executor=executor)
        pieces.append(render_comparison(
            comparisons, f"sweep @ {size.label} ({args.iterations} runs)"))
    return _finish_sweep("\n\n".join(pieces), executor)


def _compact_journal(args):
    """``repro sweep --compact-journal``: rewrite to the live suffix."""
    if getattr(args, "no_cache", False):
        raise SystemExit("--compact-journal needs the result cache "
                         "directory (the journal lives beside it); "
                         "drop --no-cache")
    root = Path(args.cache_dir) if args.cache_dir else default_cache_dir()
    journal = SweepJournal.beside(root)
    if not journal.path.exists():
        return f"no journal at {journal.path}; nothing to compact", 0
    stats = journal.compact()
    return f"{stats.summary()}\n  {journal.path}", 0


def _specs_for_grid(args):
    """Expand the (workloads x sizes x modes x iterations) spec grid."""
    from .harness.executor import expand_grid
    workloads = args.workloads or list(ALL_NAMES)
    unknown = sorted(set(workloads) - set(ALL_NAMES))
    if unknown:
        raise SystemExit(f"unknown workloads: {', '.join(unknown)} "
                         f"(see `repro list`)")
    sizes = [label for label in (args.sizes or ["small"])]
    return expand_grid(workloads, sizes, iterations=args.iterations,
                       base_seed=args.seed)


def _cmd_fabric(args):
    """``repro fabric run|worker|status`` — see docs/FABRIC.md."""
    from .fabric import FabricMeta, run_fabric
    from .fabric.status import render_status
    from .fabric.worker import main as worker_main
    if args.fabric_command == "worker":
        committed = worker_main(args.root, worker_id=args.id,
                                max_nodes=args.max_nodes,
                                deadline_s=args.deadline)
        return f"[fabric] worker done: {committed} node(s) committed", 0
    if args.fabric_command == "status":
        try:
            return render_status(args.root), 0
        except FileNotFoundError as error:
            raise SystemExit(str(error)) from error
    if args.workers < 1:
        raise SystemExit(f"--workers must be >= 1, got {args.workers}")
    specs = _specs_for_grid(args)
    if not specs:
        raise SystemExit("empty grid: no supported (workload, size) cells")
    meta = FabricMeta(engine=args.engine, lease_s=args.lease,
                      straggler_factor=args.straggler_factor)
    try:
        outcome = run_fabric(specs, args.root, workers=args.workers,
                             structure=args.structure, meta=meta,
                             timeout_s=args.timeout)
    except ValueError as error:
        raise SystemExit(str(error)) from error
    stats = getattr(outcome, "fabric_stats", None)
    counts = outcome.counts()
    pieces = [f"[fabric] {len(outcome)} specs: "
              + ", ".join(f"{counts[s]} {s}" for s in
                          ("ok", "failed", "timed_out", "skipped")
                          if counts[s])]
    if stats is not None:
        pieces.append(stats.summary())
    pieces.append(render_status(args.root))
    code = 0
    if not outcome.complete:
        pieces.append(outcome.failure_summary())
        code = EXIT_PARTIAL
    return "\n".join(pieces), code


def _cmd_advise(args) -> str:
    size = SizeClass.from_label(args.size)
    workload = get_workload(args.workload)
    program = workload.program(size)
    return recommend_mode(program).render()


def _cmd_interjob(args) -> str:
    size = SizeClass.from_label(args.size)
    program = get_workload(args.workload).program(size)
    mode = TransferMode.from_label(args.mode)
    entry = interjob_speedup(program, mode, jobs=args.jobs)
    return (f"{args.workload} @ {size.label}, {args.jobs} jobs, "
            f"{mode.value}:\n"
            f"  sequential {format_ns(entry['sequential_wall_ns'])}\n"
            f"  pipelined  {format_ns(entry['pipelined_wall_ns'])}\n"
            f"  improvement {entry['improvement_pct']:.2f} % "
            f"(speedup {entry['speedup']:.3f}x)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction harness for 'Performance Implications "
                    "of Async Memcpy and UVM' (IISWC 2023)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="Table 2: the benchmark suite")
    sub.add_parser("sizes", help="Table 3: input-size classes")
    sub.add_parser("hardware", help="Table 1: the simulated platform")

    run = sub.add_parser("run", help="run one workload+configuration")
    run.add_argument("workload", choices=sorted(ALL_NAMES))
    run.add_argument("--mode", default="standard",
                     choices=[m.value for m in ALL_MODES])
    _add_common(run)

    compare = sub.add_parser("compare",
                             help="run one workload under all five configs")
    compare.add_argument("workload", choices=sorted(ALL_NAMES))
    _add_common(compare)

    figure = sub.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument("id", help="4, 5, 6, 7a, 7b, 8, 9, 10, 11, 12, "
                                   "13, or 14")
    _add_common(figure)
    _add_executor_flags(figure)

    sweep = sub.add_parser("sweep",
                           help="run a (workload x size x mode x iteration) "
                                "grid through the parallel executor")
    sweep.add_argument("workloads", nargs="*",
                       help="subset of workloads (default: all 21)")
    sweep.add_argument("--sizes", action="append", default=None,
                       choices=[s.label for s in SizeClass.ordered()],
                       help="size classes to sweep (repeatable; "
                            "default: super)")
    sweep.add_argument("--iterations", type=int, default=10)
    sweep.add_argument("--seed", type=int, default=1234)
    sweep.add_argument("--compact-journal", action="store_true",
                       help="compact the sweep journal beside the result "
                            "cache (drop superseded records and dead "
                            "coordination chatter) and exit without "
                            "sweeping")
    _add_executor_flags(sweep)

    fabric = sub.add_parser(
        "fabric",
        help="distributed sweep fabric: compile a grid to a spec DAG "
             "and run it across N crash-tolerant worker processes "
             "(see docs/FABRIC.md)")
    fabric_sub = fabric.add_subparsers(dest="fabric_command", required=True)
    frun = fabric_sub.add_parser(
        "run", help="compile a grid, spawn workers, collect results")
    frun.add_argument("workloads", nargs="*",
                      help="subset of workloads (default: all 21)")
    frun.add_argument("--root", required=True,
                      help="fabric directory (DAG manifest, journal, "
                           "leases, result cache); one sweep per root")
    frun.add_argument("--sizes", action="append", default=None,
                      choices=[s.label for s in SizeClass.ordered()],
                      help="size classes (repeatable; default: small)")
    frun.add_argument("--iterations", type=int, default=10)
    frun.add_argument("--seed", type=int, default=1234)
    frun.add_argument("--workers", type=int, default=3,
                      help="worker processes to spawn (default: 3)")
    frun.add_argument("--structure", default="figure",
                      choices=tuple(STRUCTURES),
                      help="DAG compilation structure (default: figure)")
    frun.add_argument("--engine", default="fast", choices=tuple(ENGINES))
    frun.add_argument("--lease", type=float, default=5.0, metavar="S",
                      help="lease heartbeat expiry (default: 5s)")
    frun.add_argument("--straggler-factor", type=float, default=4.0,
                      help="re-dispatch at N x group median runtime")
    frun.add_argument("--timeout", type=float, default=None, metavar="S",
                      help="abort the whole sweep after S seconds")
    fworker = fabric_sub.add_parser(
        "worker", help="join an existing fabric root as one worker")
    fworker.add_argument("--root", required=True)
    fworker.add_argument("--id", default=None,
                         help="worker name (default: worker-<pid>)")
    fworker.add_argument("--max-nodes", type=int, default=None,
                         help="exit after committing N nodes")
    fworker.add_argument("--deadline", type=float, default=None,
                         metavar="S", help="exit after S seconds")
    fstatus = fabric_sub.add_parser(
        "status", help="render live journal + lease state of a root")
    fstatus.add_argument("--root", required=True)

    advise = sub.add_parser("advise",
                            help="configuration recommendation "
                                 "(the paper's takeaways)")
    advise.add_argument("workload", choices=sorted(ALL_NAMES))
    _add_common(advise)

    interjob = sub.add_parser("interjob",
                              help="Sec. 6 inter-job pipeline estimate")
    interjob.add_argument("workload", choices=sorted(ALL_NAMES))
    interjob.add_argument("--mode", default="uvm_prefetch_async",
                          choices=[m.value for m in ALL_MODES])
    interjob.add_argument("--jobs", type=int, default=8)
    _add_common(interjob)

    sizesearch = sub.add_parser("sizesearch",
                                help="Sec. 3.3 input-size search")
    sizesearch.add_argument("workload", choices=sorted(ALL_NAMES))
    _add_common(sizesearch)
    _add_executor_flags(sizesearch)

    roofline = sub.add_parser("roofline",
                              help="pipeline-stage bottleneck table")
    roofline.add_argument("workloads", nargs="*",
                          help="subset of workloads (default: all 21)")
    _add_common(roofline)

    lint = sub.add_parser(
        "lint",
        help="statically validate workload programs or (--static) the "
             "Python source itself",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "exit codes:\n"
            "  0   clean (or only suppressed/baselined findings)\n"
            "  1   active error findings (warnings never gate)\n"
            "  4   baseline-grandfathered findings only; with --strict\n"
            "      these count as active and exit 1\n"
            "\n"
            "suppressions: `# repro: allow[RULE] -- why` on the flagged\n"
            "line (or the comment line above it) silences that rule\n"
            "there; `# repro: allow-file[RULE] -- why` covers the file.\n"
            "The justification is required. For model rules\n"
            "(K1xx/P2xx/S30x) put a file-level pragma in the module\n"
            "defining the workload. The baseline file\n"
            "(.repro-lint-baseline.json) grandfathers known findings\n"
            "without editing the source; regenerate it with\n"
            "--write-baseline."))
    lint.add_argument("workloads", nargs="*",
                      help="subset of workloads (default: all 21)")
    lint.add_argument("--size", default="super",
                      choices=[s.label for s in SizeClass.ordered()])
    lint.add_argument("--all", action="store_true",
                      help="lint every supported size class, not just "
                           "--size")
    lint.add_argument("--mode", action="append",
                      choices=[m.value for m in ALL_MODES],
                      help="restrict to these transfer modes "
                           "(repeatable; default: all five)")
    lint.add_argument("--static", action="store_true",
                      help="run the source-level analyzer (D4xx "
                           "determinism + F5xx fingerprint completeness) "
                           "instead of the workload model linter")
    lint.add_argument("--path", metavar="DIR",
                      help="--static: package directory to analyze "
                           "(default: the installed repro package)")
    lint.add_argument("--format", default="text",
                      choices=("text", "json", "sarif"))
    lint.add_argument("--min-severity", default="info",
                      choices=("info", "warning", "error"),
                      help="text output: hide findings below this level")
    lint.add_argument("--baseline", metavar="FILE",
                      help="baseline file (default: "
                           ".repro-lint-baseline.json at the project "
                           "root; missing file = empty baseline)")
    lint.add_argument("--write-baseline", action="store_true",
                      help="write all active findings to the baseline "
                           "file and exit 0")
    lint.add_argument("--strict", action="store_true",
                      help="baselined findings count as active (exit 1)")
    lint.add_argument("--update-manifest", action="store_true",
                      help="--static: regenerate the fingerprint "
                           "manifest before checking (acknowledges "
                           "schema drift)")
    lint.add_argument("--rules", action="store_true",
                      help="print the full rule catalog and exit")

    artifact = sub.add_parser("artifact",
                              help="run one of the paper appendix's "
                                   "experiment scripts")
    from .harness.artifact import ARTIFACT_SCRIPTS
    artifact.add_argument("script", choices=sorted(ARTIFACT_SCRIPTS))
    artifact.add_argument("-i", "--iterations", type=int, default=10)
    artifact.add_argument("--seed", type=int, default=1234)
    artifact.add_argument("--profiling", action="store_true")

    bench = sub.add_parser(
        "bench",
        help="measure the engine perf trajectory (BENCH_*.json "
             "snapshots; --check gates statistically against the "
             "latest committed baseline)")
    bench.add_argument("--check", action="store_true",
                       help="compare against the newest snapshot in "
                            "--results-dir with bootstrap CIs; exit 1 "
                            "when a leg regresses (non-overlapping CI "
                            "and slower)")
    bench.add_argument("--no-save", action="store_true",
                       help="measure (and --check) without writing a "
                            "new snapshot")
    bench.add_argument("--repeats", type=int, default=None,
                       help="timed cold/warm repeats per engine "
                            "(default: 5)")
    bench.add_argument("--iterations", type=int, default=None,
                       help="grid iterations per (threads, mode) cell "
                            "(default: 10)")
    bench.add_argument("--seed", type=int, default=1234)
    bench.add_argument("--grid", default=None,
                       choices=("fig12", "fig11", "fig13"),
                       help="sensitivity grid to measure: fig12 threads "
                            "(default), fig11 blocks, fig13 carveout")
    bench.add_argument("--engines", action="append",
                       choices=tuple(ENGINES), default=None,
                       help="engines to measure (repeatable; default: "
                            "fast and vector)")
    bench.add_argument("--results-dir", default=None, metavar="DIR",
                       help="trajectory directory (default: "
                            "benchmarks/results)")

    serve = sub.add_parser(
        "serve",
        help="run the sweep-as-a-service HTTP server (POST /sweep; "
             "429 load shedding, per-request deadlines, SIGTERM drain "
             "with --resume; see docs/SERVICE.md)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8023,
                       help="TCP port (0 = pick a free ephemeral port; "
                            "the chosen port is announced on stdout)")
    serve.add_argument("--jobs", type=int, default=1,
                       help="executor workers per batch (default: 1)")
    serve.add_argument("--backend", default="process",
                       choices=("thread", "process"),
                       help="batch-executor backend (default: process — "
                            "required for crash/hang containment)")
    serve.add_argument("--engine", default="reference",
                       choices=tuple(ENGINES),
                       help="simulation engine; non-reference engines "
                            "fall back to reference when the circuit "
                            "breaker trips (results stay bit-identical)")
    serve.add_argument("--slots", type=int, default=2,
                       help="concurrent executor batches (default: 2)")
    serve.add_argument("--batch-size", type=int, default=8,
                       help="max specs per executor batch (default: 8)")
    serve.add_argument("--retries", type=int, default=1,
                       help="per-spec retries inside a batch (default: 1)")
    serve.add_argument("--timeout", type=float, default=30.0, metavar="S",
                       help="per-spec wall-clock budget (process "
                            "backend; default: 30)")
    serve.add_argument("--cache-dir", default=None,
                       help="result-cache directory (default: "
                            "$REPRO_CACHE_DIR or ~/.cache/repro/results)")
    serve.add_argument("--resume", action="store_true",
                       help="on startup, re-enqueue specs the service "
                            "journal still marks pending (the SIGTERM-"
                            "drain checkpoint)")
    serve.add_argument("--max-pending", type=int, default=512,
                       help="global admitted-spec ceiling before 429s "
                            "(default: 512)")
    serve.add_argument("--max-requests", type=int, default=64,
                       help="concurrent request ceiling (default: 64)")
    serve.add_argument("--max-tenant-pending", type=int, default=None,
                       help="per-tenant pending-spec cap (default: none)")
    serve.add_argument("--retry-after", type=float, default=1.0,
                       metavar="S", help="Retry-After hint on 429s")
    serve.add_argument("--deadline", type=float, default=60.0, metavar="S",
                       help="default per-request deadline when the "
                            "client sends none (default: 60)")
    serve.add_argument("--drain-grace", type=float, default=30.0,
                       metavar="S",
                       help="seconds running batches get to finish "
                            "during a SIGTERM drain (default: 30)")
    serve.add_argument("--hot-capacity", type=int, default=4096,
                       help="in-memory hot-cache entries (0 disables)")
    serve.add_argument("--breaker-threshold", type=int, default=5,
                       help="consecutive executed-spec failures that "
                            "trip the engine circuit breaker")
    serve.add_argument("--breaker-recovery", type=int, default=3,
                       help="reference-engine successes before probing "
                            "the configured engine again")
    serve.add_argument("--fabric-workers", type=int, default=0,
                       help="hand each batch to the distributed fabric "
                            "with N crash-tolerant worker processes "
                            "instead of the in-process executor pool "
                            "(0 = off; see docs/FABRIC.md)")
    return parser


def _cmd_roofline(args) -> str:
    size = SizeClass.from_label(args.size)
    names = args.workloads or None
    return render_roofline(suite_roofline(size, names=names))


def _cmd_sizesearch(args):
    executor = _executor_from_args(args)
    assessments = assess_sizes(args.workload, iterations=args.iterations,
                               base_seed=args.seed, executor=executor)
    return _finish_sweep(render_size_search(args.workload, assessments),
                         executor)


def _lint_project_root() -> Path:
    """The repo root the baseline and report paths are relative to."""
    from .analysis.astlint import default_package_root
    parent = default_package_root().parent       # .../src (or site-packages)
    return parent.parent if parent.name == "src" else parent


def _render_lint(args, report) -> str:
    from .analysis import Severity, to_sarif
    from .analysis.astlint import SOURCE_REGISTRY
    from .analysis.rules import DEFAULT_REGISTRY
    if args.format == "json":
        return report.to_json(indent=2)
    if args.format == "sarif":
        return to_sarif(report, [DEFAULT_REGISTRY, SOURCE_REGISTRY],
                        min_severity=Severity.from_label(args.min_severity))
    return report.render_text(
        min_severity=Severity.from_label(args.min_severity))


def _cmd_lint(args):
    from .analysis import Severity, lint_registry
    from .analysis.astlint import (SOURCE_REGISTRY, default_package_root,
                                   run_static_analysis, scan_package)
    from .analysis.rules import DEFAULT_REGISTRY
    from .analysis.suppress import Baseline, Suppressions

    if args.rules:
        return (DEFAULT_REGISTRY.catalog() + "\n"
                + SOURCE_REGISTRY.catalog()), 0

    project_root = _lint_project_root()
    baseline_path = (Path(args.baseline) if args.baseline
                     else project_root / ".repro-lint-baseline.json")
    try:
        baseline = Baseline.load(baseline_path, project_root=project_root)
    except ValueError as error:
        raise SystemExit(str(error)) from error

    if args.static:
        if args.update_manifest:
            from .analysis.fingerprints import write_manifest
            print(f"manifest updated: {write_manifest()}", file=sys.stderr)
        package_root = (Path(args.path) if args.path
                        else default_package_root())
        if not package_root.is_dir():
            # A typo'd --path must not report "clean" to CI.
            raise SystemExit(f"--path: {package_root} is not a directory")
        report = run_static_analysis(package_root, project_root,
                                     baseline=baseline)
    else:
        names = args.workloads or None
        if args.all:
            sizes = list(SizeClass.ordered())
        else:
            sizes = [SizeClass.from_label(args.size)]
        modes = ([TransferMode.from_label(label) for label in args.mode]
                 if args.mode else None)
        report = lint_registry(names, sizes, modes)
        # Shared suppression + baseline mechanism (model rules are
        # suppressed by a file-level pragma in the workload's module).
        suppressions = Suppressions.from_modules(
            scan_package(default_package_root(), project_root))
        active, suppressed, pragma_diags = suppressions.filter(
            list(report.diagnostics), DEFAULT_REGISTRY)
        filtered, grandfathered = baseline.filter(active + pragma_diags)
        rebuilt = type(report)(filtered)
        rebuilt.contexts = report.contexts
        rebuilt.suppressed = suppressed
        rebuilt.baselined = grandfathered
        report = rebuilt

    if args.write_baseline:
        refreshed = Baseline.from_findings(
            list(report.diagnostics) + report.baselined, project_root)
        refreshed.save(baseline_path)
        return (f"baseline written: {baseline_path} "
                f"({len(refreshed.entries)} entr"
                f"{'y' if len(refreshed.entries) == 1 else 'ies'})"), 0

    if args.strict:
        report.diagnostics.extend(report.baselined)
        report.baselined = []

    code = 0
    if report.has_errors:
        code = 1
    elif any(d.severity is Severity.ERROR for d in report.baselined):
        code = EXIT_BASELINE
    return _render_lint(args, report), code


def _cmd_bench(args):
    from .harness import regression
    repeats = (args.repeats if args.repeats is not None
               else regression.DEFAULT_BENCH_REPEATS)
    iterations = (args.iterations if args.iterations is not None
                  else regression.DEFAULT_BENCH_ITERATIONS)
    if repeats < 1:
        raise SystemExit(f"--repeats must be >= 1, got {repeats}")
    if iterations < 1:
        raise SystemExit(f"--iterations must be >= 1, got {iterations}")
    engines = tuple(dict.fromkeys(args.engines)) if args.engines \
        else regression.DEFAULT_BENCH_ENGINES
    results_dir = (Path(args.results_dir) if args.results_dir
                   else regression.DEFAULT_RESULTS_DIR)
    baseline_path = regression.latest_bench(results_dir) if args.check \
        else None

    grid = args.grid if args.grid is not None \
        else regression.DEFAULT_BENCH_GRID
    payload = regression.collect_bench(engines=engines, repeats=repeats,
                                       iterations=iterations,
                                       base_seed=args.seed, grid=grid)
    pieces = [regression.render_bench(payload)]
    code = 0
    if args.check:
        if baseline_path is None:
            pieces.append(f"no baseline snapshot in {results_dir}; "
                          "nothing to gate against (run `repro bench` "
                          "once and commit the snapshot)")
        else:
            report = regression.compare_bench(
                payload, regression.load_bench(baseline_path))
            pieces.append(f"baseline: {baseline_path}")
            pieces.append(report.render())
            if not report.passed:
                code = 1
    if not args.no_save:
        saved = regression.save_bench(payload, results_dir)
        pieces.append(f"snapshot written: {saved}")
    return "\n".join(pieces), code


def _cmd_serve(args):
    """Run the sweep service until SIGTERM/SIGINT drains it."""
    import asyncio

    from .service import (AdmissionLimits, ReproService, ServiceConfig,
                          serve)
    try:
        config = ServiceConfig(
            host=args.host, port=args.port, jobs=args.jobs,
            backend=args.backend, engine=args.engine, slots=args.slots,
            batch_size=args.batch_size, retries=args.retries,
            timeout_s=args.timeout,
            limits=AdmissionLimits(
                max_pending_specs=args.max_pending,
                max_requests=args.max_requests,
                max_tenant_pending=args.max_tenant_pending,
                retry_after_s=args.retry_after),
            default_deadline_s=args.deadline,
            drain_grace_s=args.drain_grace,
            cache_dir=Path(args.cache_dir) if args.cache_dir else None,
            hot_capacity=args.hot_capacity, resume=args.resume,
            breaker_threshold=args.breaker_threshold,
            breaker_recovery=args.breaker_recovery,
            fabric_workers=args.fabric_workers)
    except ValueError as error:
        raise SystemExit(str(error)) from error
    service = ReproService(config)

    def announce(svc: ReproService) -> None:
        # Scrapeable ready line (chaos harness + examples/sweep_client
        # read the ephemeral port from here).
        print(f"[serve] listening on http://{svc.config.host}:{svc.port} "
              f"(cache {svc.cache_root})", flush=True)

    flushed = asyncio.run(serve(service, on_ready=announce))
    text = (f"[serve] stopped; {flushed} queued spec(s) checkpointed "
            f"pending — restart with --resume to finish them"
            if flushed else "[serve] stopped; no pending work")
    return text, 0


def _cmd_artifact(args) -> str:
    from .harness.artifact import ARTIFACT_SCRIPTS, run_micro_all
    script = ARTIFACT_SCRIPTS[args.script]
    if script is run_micro_all:
        result = script(iterations=args.iterations, base_seed=args.seed,
                        profiling=args.profiling)
    elif args.script == "process_perf":
        result = script(base_seed=args.seed)
    else:
        result = script(iterations=args.iterations, base_seed=args.seed)
    return result.render()


COMMANDS = {
    "artifact": _cmd_artifact,
    "bench": _cmd_bench,
    "serve": _cmd_serve,
    "lint": _cmd_lint,
    "sizesearch": _cmd_sizesearch,
    "roofline": _cmd_roofline,
    "list": _cmd_list,
    "sizes": _cmd_sizes,
    "hardware": _cmd_hardware,
    "run": _cmd_run,
    "compare": _cmd_compare,
    "figure": _cmd_figure,
    "sweep": _cmd_sweep,
    "fabric": _cmd_fabric,
    "advise": _cmd_advise,
    "interjob": _cmd_interjob,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        result = COMMANDS[args.command](args)
        # Handlers return either text (exit 0) or (text, exit_code):
        # ``lint`` exits 1 on errors, sweeps exit 3 when partial.
        text, code = (result if isinstance(result, tuple) else (result, 0))
        print(text)
    except BrokenPipeError:  # e.g. `python -m repro list | head`
        return 0
    except KeyboardInterrupt:
        # SweepInterrupted lands here too: the executor has already
        # journaled finished cells, so a --resume replays them.
        print("interrupted; finished cells are journaled - rerun with "
              "--resume to continue", file=sys.stderr)
        return EXIT_INTERRUPTED
    except SweepFailure as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
