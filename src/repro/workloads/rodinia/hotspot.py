"""Rodinia HotSpot: processor-temperature estimation.

An iterative 5-point thermal stencil over temperature and power grids.
Regular access, moderate compute: behaves like the SRAD family under
the transfer configurations.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from ...sim.kernel import AccessPattern, InstructionMix, KernelDescriptor
from ...sim.program import (BufferDirection, BufferSpec, KernelPhase, Program)
from ..base import Workload, cycles_for_flops
from ..sizes import FLOAT_BYTES, SizeClass

ITERATIONS = 20

# Rodinia's physical constants (scaled for a unit chip).
CAP = 0.5
RX = 1.0
RY = 1.0
RZ = 4.0
AMBIENT = 80.0
STEP = 0.0625


def hotspot_step(temp: np.ndarray, power: np.ndarray) -> np.ndarray:
    """One explicit Euler step of the HotSpot heat equation."""
    north = np.vstack([temp[:1, :], temp[:-1, :]])
    south = np.vstack([temp[1:, :], temp[-1:, :]])
    west = np.hstack([temp[:, :1], temp[:, :-1]])
    east = np.hstack([temp[:, 1:], temp[:, -1:]])
    delta = (STEP / CAP) * (
        power
        + (south + north - 2.0 * temp) / RY
        + (east + west - 2.0 * temp) / RX
        + (AMBIENT - temp) / RZ
    )
    return temp + delta


def hotspot_reference(temp: np.ndarray, power: np.ndarray,
                      iterations: int = 8) -> np.ndarray:
    """Iterate the HotSpot thermal update."""
    out = temp.astype(np.float64)
    for _ in range(iterations):
        out = hotspot_step(out, power)
    return out


class HotSpot(Workload):
    """Estimate processor temperature from a floorplan and power trace."""

    name = "hotspot"
    suite = "rodinia"
    domain = "physics simulation"
    description = ("A widely used tool to estimate processor temperature "
                   "based on an architectural floorplan and simulated power "
                   "measurements.")
    input_kind = "2d"

    def program(self, size: SizeClass) -> Program:
        side = size.side_2d
        grid_bytes = side * side * FLOAT_BYTES
        tile_side = 16
        tile_bytes = 2 * (tile_side + 2) ** 2 * FLOAT_BYTES  # temp + power
        outputs_per_tile = tile_side * tile_side
        total_tiles = max(1, (side * side) // outputs_per_tile)
        blocks = min(8192, total_tiles)
        descriptor = KernelDescriptor(
            name="calculate_temp",
            blocks=blocks,
            threads_per_block=256,
            tiles_per_block=max(1, round(total_tiles / blocks)),
            tile_bytes=tile_bytes,
            compute_cycles_per_tile=cycles_for_flops(15 * outputs_per_tile),
            access_pattern=AccessPattern.STRIDED,
            bandwidth_efficiency=0.30,
            write_bytes=grid_bytes,
            data_footprint_bytes=2 * grid_bytes,
            smem_static_bytes=tile_bytes,
            insts_per_tile=InstructionMix(
                memory=2.5 * outputs_per_tile,
                fp=15.0 * outputs_per_tile,
                integer=4.0 * outputs_per_tile,
                control=1.5 * outputs_per_tile,
            ),
        )
        buffers = (
            BufferSpec("temperature", grid_bytes, BufferDirection.INOUT,
                       host_read_fraction=0.05),
            BufferSpec("power", grid_bytes, BufferDirection.IN),
        )
        return Program(
            name=self.name,
            buffers=buffers,
            phases=(KernelPhase(descriptor, count=ITERATIONS),),
        )

    def reference(self, rng: Optional[np.random.Generator] = None) -> Dict[str, Any]:
        rng = self._rng(rng)
        temp = AMBIENT + rng.random((40, 40)) * 40.0
        power = rng.random((40, 40)) * 5.0
        return {"temperature": temp, "power": power,
                "output": hotspot_reference(temp, power)}
