"""Rodinia NW: Needleman-Wunsch sequence alignment.

Two wavefront kernels sweep the same DP matrix - first the upper-left
triangle, then the lower-right. Because kernel 2 re-reads kernel 1's
output, issuing a bulk prefetch between them displaces the shared
working set: the paper's one workload where prefetch *hurts*
(Sec. 4.1.2). The descriptor marks this with ``shares_data_with_next``.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from ...sim.kernel import AccessPattern, InstructionMix, KernelDescriptor
from ...sim.program import (BufferDirection, BufferSpec, KernelPhase, Program)
from ..base import Workload, cycles_for_int_ops
from ..sizes import FLOAT_BYTES, SizeClass

GAP_PENALTY = 1
BLOSUM_MATCH = 3
BLOSUM_MISMATCH = -2


def nw_reference(seq_a: np.ndarray, seq_b: np.ndarray,
                 penalty: int = GAP_PENALTY) -> Dict[str, Any]:
    """Needleman-Wunsch DP score matrix for two integer sequences."""
    la, lb = len(seq_a), len(seq_b)
    score = np.zeros((la + 1, lb + 1), dtype=np.int64)
    score[:, 0] = -penalty * np.arange(la + 1)
    score[0, :] = -penalty * np.arange(lb + 1)
    similarity = np.where(seq_a[:, None] == seq_b[None, :],
                          BLOSUM_MATCH, BLOSUM_MISMATCH)
    for i in range(1, la + 1):
        for j in range(1, lb + 1):
            score[i, j] = max(
                score[i - 1, j - 1] + similarity[i - 1, j - 1],
                score[i - 1, j] - penalty,
                score[i, j - 1] - penalty,
            )
    return {"score": score, "alignment_score": int(score[la, lb])}


def nw_traceback(seq_a: np.ndarray, seq_b: np.ndarray,
                 score: np.ndarray,
                 penalty: int = GAP_PENALTY) -> Dict[str, Any]:
    """Reconstruct one optimal alignment from a filled score matrix.

    Returns gapped sequences (``-1`` marks a gap) plus match/gap
    counts. The traceback prefers diagonal moves, as Rodinia's
    reference output does.
    """
    similarity = np.where(seq_a[:, None] == seq_b[None, :],
                          BLOSUM_MATCH, BLOSUM_MISMATCH)
    aligned_a: list = []
    aligned_b: list = []
    i, j = len(seq_a), len(seq_b)
    while i > 0 or j > 0:
        if (i > 0 and j > 0
                and score[i, j] == score[i - 1, j - 1]
                + similarity[i - 1, j - 1]):
            aligned_a.append(int(seq_a[i - 1]))
            aligned_b.append(int(seq_b[j - 1]))
            i -= 1
            j -= 1
        elif i > 0 and score[i, j] == score[i - 1, j] - penalty:
            aligned_a.append(int(seq_a[i - 1]))
            aligned_b.append(-1)
            i -= 1
        else:
            aligned_a.append(-1)
            aligned_b.append(int(seq_b[j - 1]))
            j -= 1
    aligned_a.reverse()
    aligned_b.reverse()
    matches = sum(1 for a, b in zip(aligned_a, aligned_b)
                  if a == b and a != -1)
    gaps = aligned_a.count(-1) + aligned_b.count(-1)
    return {"aligned_a": aligned_a, "aligned_b": aligned_b,
            "matches": matches, "gaps": gaps}


class NeedlemanWunsch(Workload):
    """Nonlinear global optimization for DNA sequence alignment."""

    name = "nw"
    suite = "rodinia"
    domain = "bioinformatics"
    description = ("Needleman-Wunsch, a nonlinear global optimization "
                   "method for DNA sequence alignments.")
    input_kind = "2d"

    def _wavefront_kernel(self, name: str, matrix_bytes: int,
                          shares_next: bool) -> KernelDescriptor:
        tile_side = 16
        tile_bytes = (tile_side + 1) ** 2 * FLOAT_BYTES * 2  # score + reference
        outputs_per_tile = tile_side * tile_side
        half_traffic = matrix_bytes  # each pass touches the whole matrix once
        total_tiles = max(1, half_traffic // (outputs_per_tile * FLOAT_BYTES))
        # Wavefront parallelism: limited blocks per diagonal.
        blocks = min(2048, total_tiles)
        return KernelDescriptor(
            name=name,
            blocks=blocks,
            threads_per_block=tile_side * tile_side // 16 * 16,
            tiles_per_block=max(1, round(total_tiles / blocks)),
            tile_bytes=tile_bytes,
            compute_cycles_per_tile=cycles_for_int_ops(8 * outputs_per_tile),
            access_pattern=AccessPattern.STRIDED,
            write_bytes=half_traffic,
            data_footprint_bytes=matrix_bytes,
            reuse=2.0,
            smem_static_bytes=tile_bytes,
            shares_data_with_next=shares_next,
            insts_per_tile=InstructionMix(
                memory=3.0 * outputs_per_tile,
                fp=0.0,
                integer=8.0 * outputs_per_tile,
                control=3.0 * outputs_per_tile,
            ),
        )

    def program(self, size: SizeClass) -> Program:
        side = size.side_2d
        matrix_bytes = side * side * FLOAT_BYTES
        kernel1 = self._wavefront_kernel("needle_cuda_1", matrix_bytes,
                                         shares_next=True)
        kernel2 = self._wavefront_kernel("needle_cuda_2", matrix_bytes,
                                         shares_next=False)
        buffers = (
            BufferSpec("score_matrix", matrix_bytes, BufferDirection.INOUT,
                       host_read_fraction=0.05),
            BufferSpec("reference", matrix_bytes, BufferDirection.IN),
        )
        return Program(name=self.name, buffers=buffers,
                       phases=(KernelPhase(kernel1), KernelPhase(kernel2)))

    def reference(self, rng: Optional[np.random.Generator] = None) -> Dict[str, Any]:
        rng = self._rng(rng)
        seq_a = rng.integers(0, 4, size=48)
        seq_b = rng.integers(0, 4, size=40)
        result = nw_reference(seq_a, seq_b)
        result.update({"seq_a": seq_a, "seq_b": seq_b})
        return result
