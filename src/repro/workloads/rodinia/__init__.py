"""The 8 Rodinia applications selected by the paper (Table 2)."""

from .backprop import Backprop, backprop_reference, sigmoid
from .hotspot import HotSpot, hotspot_reference, hotspot_step
from .kmeans import (Kmeans, kmeans_assign, kmeans_plusplus_init,
                     kmeans_reference, kmeans_update)
from .lavamd import LavaMD, lavamd_reference
from .lud import (Lud, diagonally_dominant, lud_blocked_reference,
                  lud_reference)
from .nw import NeedlemanWunsch, nw_reference, nw_traceback
from .pathfinder import Pathfinder, pathfinder_reference
from .srad import Srad, srad_reference, srad_step

RODINIA_WORKLOADS = (LavaMD, NeedlemanWunsch, Kmeans, Srad, Backprop,
                     Pathfinder, HotSpot, Lud)

__all__ = [
    "Backprop", "HotSpot", "Kmeans", "LavaMD", "Lud", "NeedlemanWunsch",
    "Pathfinder", "RODINIA_WORKLOADS", "Srad", "backprop_reference",
    "diagonally_dominant", "hotspot_reference", "hotspot_step",
    "kmeans_assign", "kmeans_plusplus_init", "kmeans_reference",
    "kmeans_update", "lud_blocked_reference", "nw_traceback",
    "lavamd_reference", "lud_reference", "nw_reference",
    "pathfinder_reference", "sigmoid", "srad_reference", "srad_step",
]
