"""Rodinia Kmeans: iterative clustering over a large point set.

Every iteration re-streams the full point array while gathering
centroids data-dependently - an irregular pattern the paper calls out
as an Async Memcpy winner (~20 % atop UVM, Abstract / Takeaway 2).
The kernel repeats over the *same* data, so UVM pays faults only on
the first pass.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from ...sim.kernel import AccessPattern, InstructionMix, KernelDescriptor
from ...sim.program import (BufferDirection, BufferSpec, KernelPhase, Program)
from ..base import Workload, cycles_for_latency_bound_ops
from ..sizes import FLOAT_BYTES, SizeClass

FEATURES = 32
CLUSTERS = 8
ITERATIONS = 20


def kmeans_assign(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Nearest-centroid assignment (squared Euclidean distance)."""
    distances = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
    return distances.argmin(axis=1)


def kmeans_update(points: np.ndarray, labels: np.ndarray,
                  k: int) -> np.ndarray:
    """Recompute centroids; empty clusters keep their previous mean of 0."""
    centroids = np.zeros((k, points.shape[1]), dtype=points.dtype)
    for cluster in range(k):
        members = points[labels == cluster]
        if len(members):
            centroids[cluster] = members.mean(axis=0)
    return centroids


def kmeans_plusplus_init(points: np.ndarray, k: int,
                         rng: Optional[np.random.Generator] = None
                         ) -> np.ndarray:
    """k-means++ seeding (Arthur & Vassilvitskii): each next centroid
    is drawn with probability proportional to its squared distance from
    the nearest centroid chosen so far."""
    if k < 1 or k > len(points):
        raise ValueError(f"k must be in [1, {len(points)}]")
    rng = rng or np.random.default_rng(0)
    centroids = [points[rng.integers(len(points))]]
    for _ in range(k - 1):
        distances = np.min(
            ((points[:, None, :] - np.asarray(centroids)[None, :, :]) ** 2)
            .sum(axis=2), axis=1)
        total = distances.sum()
        if total <= 0:
            # All points coincide with chosen centroids; pick uniformly.
            centroids.append(points[rng.integers(len(points))])
            continue
        choice = rng.choice(len(points), p=distances / total)
        centroids.append(points[choice])
    return np.asarray(centroids)


def kmeans_reference(points: np.ndarray, k: int = CLUSTERS,
                     iterations: int = 10,
                     rng: Optional[np.random.Generator] = None,
                     plusplus: bool = False) -> Dict[str, Any]:
    """Full Lloyd iteration loop (optionally k-means++-seeded)."""
    rng = rng or np.random.default_rng(0)
    if plusplus:
        centroids = kmeans_plusplus_init(points, k, rng=rng)
    else:
        centroids = points[rng.choice(len(points), size=k,
                                      replace=False)].copy()
    labels = np.zeros(len(points), dtype=np.int64)
    for _ in range(iterations):
        new_labels = kmeans_assign(points, centroids)
        if np.array_equal(new_labels, labels):
            labels = new_labels
            break
        labels = new_labels
        centroids = kmeans_update(points, labels, k)
    return {"labels": labels, "centroids": centroids}


class Kmeans(Workload):
    """K-means clustering (data mining)."""

    name = "kmeans"
    suite = "rodinia"
    domain = "data mining"
    description = ("K-means is a clustering algorithm used extensively in "
                   "data-mining and elsewhere, important primarily for its "
                   "simplicity.")
    input_kind = "1d"

    def program(self, size: SizeClass) -> Program:
        point_bytes = size.mem_bytes
        points = point_bytes // (FEATURES * FLOAT_BYTES)
        labels_bytes = points * FLOAT_BYTES
        tile_bytes = FEATURES * FLOAT_BYTES * 64  # 64 points per stage
        total_tiles = max(1, point_bytes // tile_bytes)
        blocks = min(4096, total_tiles)
        points_per_tile = 64
        descriptor = KernelDescriptor(
            name="kmeans_kernel",
            blocks=blocks,
            threads_per_block=256,
            tiles_per_block=max(1, round(total_tiles / blocks)),
            tile_bytes=tile_bytes,
            # Distance to every centroid: k * features MACs per point,
            # latency-bound through the gathered centroid table.
            compute_cycles_per_tile=cycles_for_latency_bound_ops(
                points_per_tile * CLUSTERS * FEATURES * 2, stall_cycles=6),
            access_pattern=AccessPattern.IRREGULAR,
            write_bytes=labels_bytes,
            data_footprint_bytes=point_bytes,
            smem_static_bytes=CLUSTERS * FEATURES * FLOAT_BYTES,
            insts_per_tile=InstructionMix(
                memory=2.0 * points_per_tile * FEATURES,
                fp=2.0 * points_per_tile * CLUSTERS * FEATURES,
                integer=1.0 * points_per_tile * FEATURES,
                control=0.5 * points_per_tile * FEATURES,
            ),
        )
        buffers = (
            BufferSpec("points", point_bytes, BufferDirection.IN),
            BufferSpec("labels", labels_bytes, BufferDirection.OUT,
                       host_read_fraction=1.0),
        )
        return Program(
            name=self.name,
            buffers=buffers,
            phases=(KernelPhase(descriptor, count=ITERATIONS,
                                host_sync_bytes=labels_bytes * ITERATIONS),),
        )

    def reference(self, rng: Optional[np.random.Generator] = None) -> Dict[str, Any]:
        rng = self._rng(rng)
        # Three well-separated blobs: the assignment must recover them.
        centers = np.array([[0.0] * 4, [10.0] * 4, [-10.0] * 4])
        points = np.concatenate([
            center + rng.standard_normal((40, 4)) for center in centers
        ]).astype(np.float64)
        result = kmeans_reference(points, k=3, rng=rng)
        result["points"] = points
        return result
