"""Rodinia lavaMD: particle potentials in a 3D box decomposition.

Each home box computes pairwise interactions with its 26 neighbor
boxes - heavy floating-point work per staged byte, with neighbor-box
gathers that stride unpredictably through memory. Compute-dominated,
so the transfer configurations move it less than the streaming
workloads.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from ...sim.kernel import AccessPattern, InstructionMix, KernelDescriptor
from ...sim.program import (BufferDirection, BufferSpec, KernelPhase, Program)
from ..base import Workload, cycles_for_flops
from ..sizes import FLOAT_BYTES, SizeClass

PARTICLES_PER_BOX = 100
NEIGHBORS = 27  # home box + 26 neighbors
ALPHA = 0.5


def lavamd_reference(positions: np.ndarray, charges: np.ndarray,
                     alpha: float = ALPHA) -> Dict[str, np.ndarray]:
    """Dense all-pairs version of the lavaMD kernel math.

    For every particle i: v_i = sum_j exp(-alpha^2 * |r_i - r_j|^2) * q_j,
    and the force f_i accumulates the gradient direction terms.
    (Rodinia restricts j to neighbor boxes; the dense form is the
    correct oracle for a single-box instance.)
    """
    deltas = positions[:, None, :] - positions[None, :, :]   # (n, n, 3)
    dist2 = (deltas ** 2).sum(axis=2)
    weights = np.exp(-alpha * alpha * dist2) * charges[None, :]
    potential = weights.sum(axis=1)
    force = (weights[:, :, None] * 2.0 * alpha * alpha * deltas).sum(axis=1)
    return {"potential": potential, "force": force}


class LavaMD(Workload):
    """Particle potential and relocation within a large 3D space."""

    name = "lavaMD"
    suite = "rodinia"
    domain = "molecular dynamics"
    description = ("The code calculates particle potential and relocation "
                   "due to mutual forces between particles within a large "
                   "3D space.")
    input_kind = "3d"

    def supports(self, size: SizeClass) -> bool:
        """Mega's ~50 GiB of particle + force data exceeds the A100's
        40 GiB of HBM, so explicit allocation cannot exist."""
        return size is not SizeClass.MEGA

    def program(self, size: SizeClass) -> Program:
        # Boxes scale with the 3D grid; each box holds 100 particles of
        # 4 floats position/charge + 4 floats output.
        boxes = max(1, size.side_3d ** 3 // 512)
        particle_bytes = boxes * PARTICLES_PER_BOX * 4 * FLOAT_BYTES
        output_bytes = particle_bytes
        # One tile = one neighbor box of particles staged to smem.
        tile_bytes = PARTICLES_PER_BOX * 4 * FLOAT_BYTES
        blocks = min(8192, boxes)
        tiles_per_block = max(1, round(boxes * NEIGHBORS / blocks))
        # Each staged neighbor box interacts with the 100 home
        # particles: 100 x 100 pairs x ~10 flops each.
        pair_flops = PARTICLES_PER_BOX * PARTICLES_PER_BOX * 10
        descriptor = KernelDescriptor(
            name="kernel_gpu_cuda",
            blocks=blocks,
            threads_per_block=128,
            tiles_per_block=tiles_per_block,
            tile_bytes=tile_bytes,
            compute_cycles_per_tile=cycles_for_flops(pair_flops),
            access_pattern=AccessPattern.IRREGULAR,
            write_bytes=output_bytes,
            data_footprint_bytes=particle_bytes,
            reuse=max(1.0, NEIGHBORS / 2),
            smem_static_bytes=tile_bytes,
            sync_overlap=0.55,
            insts_per_tile=InstructionMix(
                memory=4.0 * PARTICLES_PER_BOX,
                fp=float(pair_flops),
                integer=6.0 * PARTICLES_PER_BOX,
                control=2.0 * PARTICLES_PER_BOX,
            ),
        )
        buffers = (
            BufferSpec("boxes", particle_bytes, BufferDirection.IN),
            BufferSpec("forces", output_bytes, BufferDirection.OUT,
                       host_read_fraction=0.05),
        )
        return Program(name=self.name, buffers=buffers,
                       phases=(KernelPhase(descriptor),))

    def reference(self, rng: Optional[np.random.Generator] = None) -> Dict[str, Any]:
        rng = self._rng(rng)
        positions = rng.random((PARTICLES_PER_BOX, 3))
        charges = rng.random(PARTICLES_PER_BOX)
        result = lavamd_reference(positions, charges)
        result.update({"positions": positions, "charges": charges})
        return result
