"""Rodinia LUD: blocked LU decomposition.

The paper's irregular-access poster child (Takeaway 2): its three
kernels (diagonal, perimeter, internal) walk shrinking trapezoidal
regions of one in-place matrix. Prefetchers cannot predict the next
touch, so UVM prefetch buys nothing - but cp.async staging both
overlaps the tile loads and stops the streaming fills from thrashing
the unified L1 (the -35.96 % / -69.99 % load/store miss reductions of
Fig. 10).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from ...sim.kernel import AccessPattern, InstructionMix, KernelDescriptor
from ...sim.program import (BufferDirection, BufferSpec, KernelPhase, Program)
from ..base import Workload, cycles_for_flops
from ..sizes import FLOAT_BYTES, SizeClass

LUD_BLOCK = 32


def lud_reference(matrix: np.ndarray) -> Dict[str, np.ndarray]:
    """In-place-style LU decomposition without pivoting (Rodinia's math).

    Returns L (unit lower-triangular) and U such that L @ U == matrix.
    """
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError("lud expects a square matrix")
    n = matrix.shape[0]
    lu = matrix.astype(np.float64).copy()
    for k in range(n - 1):
        pivot = lu[k, k]
        if abs(pivot) < 1e-12:
            raise ZeroDivisionError("zero pivot; Rodinia lud does not pivot")
        lu[k + 1:, k] /= pivot
        lu[k + 1:, k + 1:] -= np.outer(lu[k + 1:, k], lu[k, k + 1:])
    lower = np.tril(lu, k=-1) + np.eye(n)
    upper = np.triu(lu)
    return {"L": lower, "U": upper}


def lud_blocked_reference(matrix: np.ndarray,
                          block: int = LUD_BLOCK) -> Dict[str, np.ndarray]:
    """Blocked LU, structured exactly like Rodinia's three CUDA kernels.

    Per block step k: (1) *diagonal* factorizes the k-th diagonal tile;
    (2) *perimeter* updates the k-th block row (solve L y = a) and
    block column (solve x U = a); (3) *internal* applies the rank-b
    update to the trailing submatrix. Must produce the same factors as
    the straight elimination in :func:`lud_reference`.
    """
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError("lud expects a square matrix")
    n = matrix.shape[0]
    if n % block:
        raise ValueError(f"matrix side {n} not a multiple of block {block}")
    lu = matrix.astype(np.float64).copy()
    steps = n // block

    def factor_tile(tile: np.ndarray) -> np.ndarray:
        out = tile.copy()
        for k in range(out.shape[0] - 1):
            pivot = out[k, k]
            if abs(pivot) < 1e-12:
                raise ZeroDivisionError("zero pivot in diagonal tile")
            out[k + 1:, k] /= pivot
            out[k + 1:, k + 1:] -= np.outer(out[k + 1:, k], out[k, k + 1:])
        return out

    for step in range(steps):
        lo = step * block
        hi = lo + block
        # Kernel 1: lud_diagonal.
        lu[lo:hi, lo:hi] = factor_tile(lu[lo:hi, lo:hi])
        if hi == n:
            break
        diag = lu[lo:hi, lo:hi]
        lower = np.tril(diag, k=-1) + np.eye(block)
        upper = np.triu(diag)
        # Kernel 2: lud_perimeter (block row then block column).
        lu[lo:hi, hi:] = np.linalg.solve(lower, lu[lo:hi, hi:])
        lu[hi:, lo:hi] = np.linalg.solve(upper.T, lu[hi:, lo:hi].T).T
        # Kernel 3: lud_internal (trailing update).
        lu[hi:, hi:] -= lu[hi:, lo:hi] @ lu[lo:hi, hi:]

    return {"L": np.tril(lu, k=-1) + np.eye(n), "U": np.triu(lu)}


def diagonally_dominant(rng: np.random.Generator, n: int) -> np.ndarray:
    """A well-conditioned test matrix (no pivoting needed)."""
    matrix = rng.standard_normal((n, n))
    matrix += n * np.eye(n)
    return matrix


class Lud(Workload):
    """LU Decomposition solves a set of linear equations."""

    name = "lud"
    suite = "rodinia"
    domain = "linear algebra"
    description = ("LU Decomposition is an algorithm to calculate the "
                   "solutions of a set of linear equations.")
    input_kind = "2d"

    def program(self, size: SizeClass) -> Program:
        side = size.side_2d
        matrix_bytes = side * side * FLOAT_BYTES
        steps = max(1, side // LUD_BLOCK)
        # The internal kernel dominates: it re-reads the trailing
        # submatrix every step; total traffic ~ matrix * steps / 3.
        tile_bytes = 2 * LUD_BLOCK * LUD_BLOCK * FLOAT_BYTES  # 8 KiB
        traffic = matrix_bytes * max(1, steps // 3)
        total_tiles = max(1, traffic // tile_bytes)
        blocks = min(4096, max(1, (side // LUD_BLOCK) ** 2 // 4))
        descriptor = KernelDescriptor(
            name="lud_internal",
            blocks=blocks,
            threads_per_block=256,
            tiles_per_block=max(1, round(total_tiles / blocks)),
            tile_bytes=tile_bytes,
            # Each staged pair of tiles feeds a 32x32x32 MAC block.
            compute_cycles_per_tile=cycles_for_flops(
                2 * LUD_BLOCK ** 3) * 0.45,
            access_pattern=AccessPattern.IRREGULAR,
            write_bytes=matrix_bytes,
            data_footprint_bytes=matrix_bytes,
            reuse=2.0,
            insts_per_tile=InstructionMix(
                memory=2.0 * (tile_bytes // FLOAT_BYTES),
                fp=2.0 * LUD_BLOCK ** 3,
                integer=1.5 * (tile_bytes // FLOAT_BYTES),
                control=0.8 * (tile_bytes // FLOAT_BYTES),
            ),
        )
        buffers = (
            BufferSpec("matrix", matrix_bytes, BufferDirection.INOUT,
                       host_read_fraction=0.1),
        )
        return Program(name=self.name, buffers=buffers,
                       phases=(KernelPhase(descriptor),))

    def reference(self, rng: Optional[np.random.Generator] = None) -> Dict[str, Any]:
        rng = self._rng(rng)
        matrix = diagonally_dominant(rng, 48)
        result = lud_reference(matrix)
        result["matrix"] = matrix
        return result
