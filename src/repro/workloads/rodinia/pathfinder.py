"""Rodinia PathFinder: dynamic programming on a 2D grid.

The CUDA version sweeps the grid one pyramid of rows at a time,
launching a small kernel per row band - hundreds of launches over one
large read-only wall array. Access is fully coalesced; the per-launch
UVM page-table sync is what hurts its managed configurations.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from ...sim.kernel import AccessPattern, InstructionMix, KernelDescriptor
from ...sim.program import (BufferDirection, BufferSpec, KernelPhase, Program)
from ..base import Workload, cycles_for_int_ops
from ..sizes import FLOAT_BYTES, SizeClass

# Rows folded into one kernel launch (the Rodinia "pyramid height").
PYRAMID_HEIGHT = 20


def pathfinder_reference(wall: np.ndarray) -> np.ndarray:
    """Minimum-cost path sums: returns the final DP row.

    Each step moves down one row to the same, left, or right column.
    """
    if wall.ndim != 2:
        raise ValueError("pathfinder expects a 2D wall")
    dp = wall[0].astype(np.int64)
    for row in wall[1:]:
        left = np.concatenate(([np.iinfo(np.int64).max], dp[:-1]))
        right = np.concatenate((dp[1:], [np.iinfo(np.int64).max]))
        dp = row + np.minimum(dp, np.minimum(left, right))
    return dp


class Pathfinder(Workload):
    """PathFinder uses dynamic programming to find a path on a 2-D grid."""

    name = "pathfinder"
    suite = "rodinia"
    domain = "grid traversal"
    description = ("PathFinder uses dynamic programming to find a path "
                   "on a 2-D grid.")
    input_kind = "2d"

    def program(self, size: SizeClass) -> Program:
        side = size.side_2d
        wall_bytes = side * side * FLOAT_BYTES
        result_bytes = side * FLOAT_BYTES
        launches = max(1, side // PYRAMID_HEIGHT)
        band_bytes = side * PYRAMID_HEIGHT * FLOAT_BYTES
        tile_bytes = 4096
        band_tiles = max(1, band_bytes // tile_bytes)
        blocks = min(1024, band_tiles)
        elements_per_tile = tile_bytes // FLOAT_BYTES
        descriptor = KernelDescriptor(
            name="dynproc_kernel",
            blocks=blocks,
            threads_per_block=256,
            tiles_per_block=max(1, round(band_tiles / blocks)),
            tile_bytes=tile_bytes,
            # 3-way min + add per element, integer-dominated.
            compute_cycles_per_tile=cycles_for_int_ops(5 * elements_per_tile),
            access_pattern=AccessPattern.SEQUENTIAL,
            write_bytes=result_bytes,
            data_footprint_bytes=band_bytes,
            insts_per_tile=InstructionMix(
                memory=1.5 * elements_per_tile,
                fp=0.0,
                integer=5.0 * elements_per_tile,
                control=2.0 * elements_per_tile,
            ),
        )
        buffers = (
            BufferSpec("wall", wall_bytes, BufferDirection.IN),
            BufferSpec("result", result_bytes, BufferDirection.OUT,
                       host_read_fraction=1.0),
        )
        return Program(
            name=self.name,
            buffers=buffers,
            # Each launch consumes a *new* band of the wall.
            phases=(KernelPhase(descriptor, count=launches, fresh_data=True),),
        )

    def reference(self, rng: Optional[np.random.Generator] = None) -> Dict[str, Any]:
        rng = self._rng(rng)
        wall = rng.integers(0, 10, size=(64, 128)).astype(np.int64)
        return {"wall": wall, "result": pathfinder_reference(wall)}
