"""Rodinia Backprop: training pass of a layered neural network.

Two kernels - forward propagation and weight adjustment - stream a
large input-to-hidden weight matrix once each. Both are coalesced
streaming kernels with modest compute, so the workload responds to the
transfer configurations much like a wide saxpy.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from ...sim.kernel import AccessPattern, InstructionMix, KernelDescriptor
from ...sim.program import (BufferDirection, BufferSpec, KernelPhase, Program)
from ..base import Workload, cycles_for_latency_bound_ops
from ..sizes import FLOAT_BYTES, SizeClass

HIDDEN_UNITS = 16


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Logistic activation used throughout Rodinia backprop."""
    return 1.0 / (1.0 + np.exp(-x))


def backprop_reference(inputs: np.ndarray, w_ih: np.ndarray, w_ho: np.ndarray,
                       target: float, eta: float = 0.3) -> Dict[str, np.ndarray]:
    """One Rodinia-style training step (single sample, one output unit).

    Returns hidden/output activations, error deltas, and updated weights.
    """
    hidden = sigmoid(inputs @ w_ih)          # (hidden_units,)
    output = float(sigmoid(hidden @ w_ho))   # scalar output unit
    # Output and hidden error terms (standard backprop deltas).
    delta_out = output * (1.0 - output) * (target - output)
    delta_hidden = hidden * (1.0 - hidden) * (w_ho * delta_out)
    new_w_ho = w_ho + eta * hidden * delta_out
    new_w_ih = w_ih + eta * np.outer(inputs, delta_hidden)
    return {
        "hidden": hidden,
        "output": output,
        "delta_out": delta_out,
        "delta_hidden": delta_hidden,
        "w_ih": new_w_ih,
        "w_ho": new_w_ho,
    }


class Backprop(Workload):
    """Back Propagation trains the weights of a layered neural network."""

    name = "backprop"
    suite = "rodinia"
    domain = "machine learning"
    description = ("Back Propagation is an ML algorithm that trains the "
                   "weights of connecting nodes on a layered neural network.")
    input_kind = "1d"

    def _weight_kernel(self, name: str, weight_bytes: int,
                       writes: bool) -> KernelDescriptor:
        tile_bytes = 4096
        total_tiles = max(1, weight_bytes // tile_bytes)
        blocks = min(4096, total_tiles)
        elements_per_tile = tile_bytes // FLOAT_BYTES
        return KernelDescriptor(
            name=name,
            blocks=blocks,
            threads_per_block=256,
            tiles_per_block=max(1, round(total_tiles / blocks)),
            tile_bytes=tile_bytes,
            compute_cycles_per_tile=cycles_for_latency_bound_ops(
                4 * elements_per_tile, stall_cycles=12),
            access_pattern=AccessPattern.SEQUENTIAL,
            write_bytes=weight_bytes if writes else 0,
            smem_static_bytes=HIDDEN_UNITS * FLOAT_BYTES,
            insts_per_tile=InstructionMix(
                memory=2.0 * elements_per_tile,
                fp=4.0 * elements_per_tile,
                integer=3.0 * elements_per_tile,
                control=1.0 * elements_per_tile,
            ),
        )

    def program(self, size: SizeClass) -> Program:
        # The input-to-hidden weight matrix dominates: input_n x 16.
        input_nodes = size.elements_1d // (HIDDEN_UNITS + 1)
        weight_bytes = input_nodes * HIDDEN_UNITS * FLOAT_BYTES
        input_bytes = input_nodes * FLOAT_BYTES
        forward = self._weight_kernel("bpnn_layerforward", weight_bytes,
                                      writes=False)
        adjust = self._weight_kernel("bpnn_adjust_weights", weight_bytes,
                                     writes=True)
        buffers = (
            BufferSpec("input_units", input_bytes, BufferDirection.IN),
            BufferSpec("input_weights", weight_bytes, BufferDirection.INOUT,
                       host_read_fraction=0.05),
            BufferSpec("hidden_partial", input_bytes, BufferDirection.OUT,
                       host_read_fraction=0.1),
        )
        return Program(
            name=self.name,
            buffers=buffers,
            phases=(KernelPhase(forward), KernelPhase(adjust)),
        )

    def reference(self, rng: Optional[np.random.Generator] = None) -> Dict[str, Any]:
        rng = self._rng(rng)
        inputs = rng.random(64).astype(np.float64)
        w_ih = rng.standard_normal((64, HIDDEN_UNITS)) * 0.1
        w_ho = rng.standard_normal(HIDDEN_UNITS) * 0.1
        target = 0.8
        result = backprop_reference(inputs, w_ih, w_ho, target)
        result.update({"inputs": inputs, "target": target})
        return result
