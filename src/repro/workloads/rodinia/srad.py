"""Rodinia SRAD: speckle-reducing anisotropic diffusion.

Two stencil kernels per iteration over a large 2D image: kernel 1
computes the diffusion coefficients, kernel 2 applies the divergence
update. Regular strided access makes it a UVM-prefetch winner.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from ...sim.kernel import AccessPattern, InstructionMix, KernelDescriptor
from ...sim.program import (BufferDirection, BufferSpec, KernelPhase, Program)
from ..base import Workload, cycles_for_flops
from ..sizes import FLOAT_BYTES, SizeClass

ITERATIONS = 10
LAMBDA = 0.5


def _shift(image: np.ndarray, dy: int, dx: int) -> np.ndarray:
    """Neighbor with clamped (replicated) boundaries, as Rodinia does."""
    out = np.roll(image, shift=(dy, dx), axis=(0, 1))
    if dy == 1:
        out[0, :] = image[0, :]
    elif dy == -1:
        out[-1, :] = image[-1, :]
    if dx == 1:
        out[:, 0] = image[:, 0]
    elif dx == -1:
        out[:, -1] = image[:, -1]
    return out


def srad_step(image: np.ndarray, lam: float = LAMBDA) -> np.ndarray:
    """One SRAD iteration (both kernels) on the whole image."""
    north = _shift(image, 1, 0)
    south = _shift(image, -1, 0)
    west = _shift(image, 0, 1)
    east = _shift(image, 0, -1)

    # Kernel 1: diffusion coefficient from the instantaneous
    # coefficient of variation (Yu & Acton's q0 formulation).
    mean = image.mean()
    q0_squared = image.var() / max(mean * mean, 1e-12)
    laplacian = north + south + west + east - 4.0 * image
    gradient2 = ((north - image) ** 2 + (south - image) ** 2 +
                 (west - image) ** 2 + (east - image) ** 2)
    denom = np.maximum(image, 1e-12)
    num = (0.5 * gradient2) / (denom * denom) \
        - (1.0 / 16.0) * (laplacian / denom) ** 2
    den = 1.0 + 0.25 * laplacian / denom
    q_squared = num / np.maximum(den * den, 1e-12)
    coeff = 1.0 / (1.0 + (q_squared - q0_squared)
                   / np.maximum(q0_squared * (1.0 + q0_squared), 1e-12))
    coeff = np.clip(coeff, 0.0, 1.0)

    # Kernel 2: divergence update.
    c_south = _shift(coeff, -1, 0)
    c_east = _shift(coeff, 0, -1)
    divergence = (c_south * (south - image) + coeff * (north - image) +
                  c_east * (east - image) + coeff * (west - image))
    return image + 0.25 * lam * divergence


def srad_reference(image: np.ndarray, iterations: int = 4,
                   lam: float = LAMBDA) -> np.ndarray:
    """Iterate SRAD diffusion on an image."""
    out = image.astype(np.float64)
    for _ in range(iterations):
        out = srad_step(out, lam)
    return out


class Srad(Workload):
    """Speckle Reducing Anisotropic Diffusion for ultrasound imaging."""

    name = "srad"
    suite = "rodinia"
    domain = "image processing"
    description = ("Speckle Reducing Anisotropic Diffusion is a diffusion "
                   "method for ultrasonic and radar imaging applications "
                   "based on partial differential equations (PDEs).")
    input_kind = "2d"

    def _stencil_kernel(self, name: str, grid_bytes: int) -> KernelDescriptor:
        tile_side = 32
        tile_bytes = (tile_side + 2) ** 2 * FLOAT_BYTES
        outputs_per_tile = tile_side * tile_side
        total_tiles = max(1, grid_bytes // (outputs_per_tile * FLOAT_BYTES))
        blocks = min(8192, total_tiles)
        return KernelDescriptor(
            name=name,
            blocks=blocks,
            threads_per_block=256,
            tiles_per_block=max(1, round(total_tiles / blocks)),
            tile_bytes=tile_bytes,
            compute_cycles_per_tile=cycles_for_flops(30 * outputs_per_tile),
            access_pattern=AccessPattern.STRIDED,
            bandwidth_efficiency=0.30,
            write_bytes=grid_bytes,
            data_footprint_bytes=grid_bytes,
            insts_per_tile=InstructionMix(
                memory=3.0 * outputs_per_tile,
                fp=30.0 * outputs_per_tile,
                integer=5.0 * outputs_per_tile,
                control=2.0 * outputs_per_tile,
            ),
        )

    def program(self, size: SizeClass) -> Program:
        side = size.side_2d
        grid_bytes = side * side * FLOAT_BYTES
        srad1 = self._stencil_kernel("srad_cuda_1", grid_bytes)
        srad2 = self._stencil_kernel("srad_cuda_2", grid_bytes)
        buffers = (
            BufferSpec("image", grid_bytes, BufferDirection.INOUT,
                       host_read_fraction=0.05),
            BufferSpec("coeff", grid_bytes, BufferDirection.SCRATCH),
        )
        phases = []
        for _ in range(ITERATIONS):
            phases.append(KernelPhase(srad1))
            phases.append(KernelPhase(srad2))
        return Program(name=self.name, buffers=buffers, phases=tuple(phases))

    def reference(self, rng: Optional[np.random.Generator] = None) -> Dict[str, Any]:
        rng = self._rng(rng)
        image = np.exp(rng.standard_normal((48, 48)) * 0.2) + 1.0
        return {"image": image, "output": srad_reference(image)}
