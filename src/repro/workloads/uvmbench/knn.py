"""UVMBench KNN: k-nearest-neighbors search.

One streaming pass computing distances from every reference point to
the query, then a top-k selection - coalesced and memory-bound.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from ...sim.kernel import AccessPattern, InstructionMix, KernelDescriptor
from ...sim.program import (BufferDirection, BufferSpec, KernelPhase, Program)
from ..base import Workload, cycles_for_latency_bound_ops
from ..sizes import FLOAT_BYTES, SizeClass

FEATURES = 8
K = 16


def knn_reference(points: np.ndarray, query: np.ndarray,
                  k: int = 5) -> Dict[str, np.ndarray]:
    """Exact k nearest neighbors by full sort (the test oracle)."""
    if points.ndim != 2:
        raise ValueError("points must be 2D (n, features)")
    distances = np.sqrt(((points - query[None, :]) ** 2).sum(axis=1))
    order = np.argsort(distances, kind="stable")[:k]
    return {"indices": order, "distances": distances[order]}


class Knn(Workload):
    """K-Nearest Neighbors (UVMBench)."""

    name = "knn"
    suite = "uvmbench"
    domain = "data mining"
    description = "K-Nearest Neighbors Algorithm"
    input_kind = "1d"

    def program(self, size: SizeClass) -> Program:
        point_bytes = size.mem_bytes
        points = point_bytes // (FEATURES * FLOAT_BYTES)
        distance_bytes = points * FLOAT_BYTES
        points_per_tile = 128
        tile_bytes = points_per_tile * FEATURES * FLOAT_BYTES
        total_tiles = max(1, point_bytes // tile_bytes)
        blocks = min(4096, total_tiles)
        descriptor = KernelDescriptor(
            name="knn_distances",
            blocks=blocks,
            threads_per_block=256,
            tiles_per_block=max(1, round(total_tiles / blocks)),
            tile_bytes=tile_bytes,
            compute_cycles_per_tile=cycles_for_latency_bound_ops(
                points_per_tile * FEATURES * 3, stall_cycles=8),
            access_pattern=AccessPattern.SEQUENTIAL,
            write_bytes=distance_bytes,
            data_footprint_bytes=point_bytes,
            insts_per_tile=InstructionMix(
                memory=1.5 * points_per_tile * FEATURES,
                fp=3.0 * points_per_tile * FEATURES,
                integer=2.0 * points_per_tile,
                control=1.0 * points_per_tile,
            ),
        )
        buffers = (
            BufferSpec("points", point_bytes, BufferDirection.IN),
            BufferSpec("distances", distance_bytes, BufferDirection.OUT,
                       host_read_fraction=0.05),
        )
        return Program(name=self.name, buffers=buffers,
                       phases=(KernelPhase(descriptor),))

    def reference(self, rng: Optional[np.random.Generator] = None) -> Dict[str, Any]:
        rng = self._rng(rng)
        points = rng.standard_normal((256, 4))
        query = rng.standard_normal(4)
        result = knn_reference(points, query, k=K)
        result.update({"points": points, "query": query})
        return result
