"""UVMBench workloads not overlapping PolyBench/Rodinia (Table 2)."""

from .bayesian import Bayesian, best_parent, family_counts, k2_score
from .knn import Knn, knn_reference

UVMBENCH_WORKLOADS = (Bayesian, Knn)

__all__ = [
    "Bayesian", "Knn", "UVMBENCH_WORKLOADS", "best_parent", "family_counts",
    "k2_score", "knn_reference",
]
