"""UVMBench bayesian: Bayesian network structure-learning scores.

Scores candidate parent sets by counting co-occurrences in a large
sample table - gather-heavy, integer-dominated work with modest
streaming traffic.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ...sim.kernel import AccessPattern, InstructionMix, KernelDescriptor
from ...sim.program import (BufferDirection, BufferSpec, KernelPhase, Program)
from ..base import Workload, cycles_for_int_ops
from ..sizes import FLOAT_BYTES, SizeClass

VARIABLES = 16


def family_counts(samples: np.ndarray, child: int,
                  parents: Tuple[int, ...]) -> Dict[tuple, np.ndarray]:
    """Joint counts N(child_value, parent_config) over binary samples."""
    counts: Dict[tuple, np.ndarray] = {}
    for row in samples:
        config = tuple(int(row[p]) for p in parents)
        if config not in counts:
            counts[config] = np.zeros(2, dtype=np.int64)
        counts[config][int(row[child])] += 1
    return counts


def k2_score(samples: np.ndarray, child: int,
             parents: Tuple[int, ...]) -> float:
    """Log K2 score of a family (Cooper & Herskovits, binary variables)."""
    counts = family_counts(samples, child, parents)
    score = 0.0
    for config_counts in counts.values():
        total = int(config_counts.sum())
        # log [ (r-1)! / (N + r - 1)! * prod N_k! ] with r = 2.
        score += math.lgamma(2) - math.lgamma(total + 2)
        for count in config_counts:
            score += math.lgamma(count + 1)
    return score


def best_parent(samples: np.ndarray, child: int,
                candidates: List[int]) -> Tuple[Optional[int], float]:
    """Greedy K2: the single parent that most improves the child's score."""
    base = k2_score(samples, child, ())
    best, best_score = None, base
    for candidate in candidates:
        if candidate == child:
            continue
        score = k2_score(samples, child, (candidate,))
        if score > best_score:
            best, best_score = candidate, score
    return best, best_score


class Bayesian(Workload):
    """Bayesian network learning algorithm (UVMBench)."""

    name = "bayesian"
    suite = "uvmbench"
    domain = "machine learning"
    description = "Bayesian network learning algorithm"
    input_kind = "1d"

    def program(self, size: SizeClass) -> Program:
        sample_bytes = size.mem_bytes
        samples = sample_bytes // (VARIABLES * FLOAT_BYTES)
        score_bytes = VARIABLES * VARIABLES * FLOAT_BYTES
        tile_bytes = VARIABLES * FLOAT_BYTES * 128  # 128 samples per stage
        total_tiles = max(1, sample_bytes // tile_bytes)
        blocks = min(4096, total_tiles)
        samples_per_tile = 128
        descriptor = KernelDescriptor(
            name="bayesian_score",
            blocks=blocks,
            threads_per_block=256,
            tiles_per_block=max(1, round(total_tiles / blocks)),
            tile_bytes=tile_bytes,
            # Histogram updates per sample per candidate family.
            compute_cycles_per_tile=cycles_for_int_ops(
                samples_per_tile * VARIABLES * 6),
            access_pattern=AccessPattern.IRREGULAR,
            write_bytes=score_bytes,
            data_footprint_bytes=sample_bytes,
            smem_static_bytes=4096,
            insts_per_tile=InstructionMix(
                memory=2.0 * samples_per_tile * VARIABLES,
                fp=1.0 * samples_per_tile,
                integer=6.0 * samples_per_tile * VARIABLES,
                control=2.0 * samples_per_tile * VARIABLES,
            ),
        )
        buffers = (
            BufferSpec("samples", sample_bytes, BufferDirection.IN),
            BufferSpec("scores", score_bytes, BufferDirection.OUT,
                       host_read_fraction=1.0),
        )
        return Program(name=self.name, buffers=buffers,
                       phases=(KernelPhase(descriptor, count=VARIABLES),))

    def reference(self, rng: Optional[np.random.Generator] = None) -> Dict[str, Any]:
        rng = self._rng(rng)
        # Ground truth: X0 ~ Bernoulli, X1 strongly depends on X0,
        # X2 independent. Greedy K2 must pick X0 as X1's parent.
        n = 400
        x0 = rng.integers(0, 2, size=n)
        x1 = np.where(rng.random(n) < 0.9, x0, 1 - x0)
        x2 = rng.integers(0, 2, size=n)
        samples = np.stack([x0, x1, x2], axis=1)
        parent, score = best_parent(samples, child=1, candidates=[0, 2])
        return {"samples": samples, "best_parent": parent, "score": score}
