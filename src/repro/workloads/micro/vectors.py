"""Vector microbenchmarks: vector_seq, vector_rand (Svedin et al.), saxpy.

``vector_seq``/``vector_rand`` apply a chain of element-wise arithmetic
operations to a vector (sequential vs gather-indexed access); ``saxpy``
is the PolyBench y = a*x + y. These are the memory-bound end of the
microbenchmark suite, where cp.async staging shows its largest kernel
time wins (Sec. 4.1.1).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from ...sim.kernel import AccessPattern, InstructionMix, KernelDescriptor
from ...sim.program import (BufferDirection, BufferSpec, KernelPhase, Program)
from ..base import Workload, cycles_for_flops, cycles_for_latency_bound_ops
from ..sizes import FLOAT_BYTES, SizeClass

# Launch geometry shared by the 1D microbenchmarks (Sec. 5 uses
# vector_seq at 4096 blocks x 256 threads as the reference point).
DEFAULT_BLOCKS = 4096
DEFAULT_THREADS = 256
TILE_BYTES = 2048  # 512 floats staged per block iteration

# The Svedin vector kernels run a chain of arithmetic ops per element.
OPS_PER_ELEMENT = 48


def _vector_geometry(total_bytes: int) -> Dict[str, int]:
    """Split a vector across blocks/tiles, shrinking the grid for
    footprints smaller than the default launch can cover."""
    total_tiles = max(1, total_bytes // TILE_BYTES)
    blocks = min(DEFAULT_BLOCKS, total_tiles)
    tiles_per_block = max(1, round(total_tiles / blocks))
    return {"blocks": blocks, "tiles_per_block": tiles_per_block}


def vector_kernel(name: str, total_bytes: int, pattern: AccessPattern,
                  blocks: Optional[int] = None,
                  threads: Optional[int] = None,
                  write_bytes: Optional[int] = None) -> KernelDescriptor:
    """Descriptor for a vector-to-constant kernel over ``total_bytes``."""
    geometry = _vector_geometry(total_bytes)
    if blocks is not None:
        geometry["blocks"] = blocks
        geometry["tiles_per_block"] = max(
            1, round(max(1, total_bytes // TILE_BYTES) / blocks))
    elements_per_tile = TILE_BYTES // FLOAT_BYTES
    return KernelDescriptor(
        name=name,
        blocks=geometry["blocks"],
        threads_per_block=threads or DEFAULT_THREADS,
        tiles_per_block=geometry["tiles_per_block"],
        tile_bytes=TILE_BYTES,
        compute_cycles_per_tile=cycles_for_latency_bound_ops(
            elements_per_tile * OPS_PER_ELEMENT),
        access_pattern=pattern,
        write_bytes=total_bytes if write_bytes is None else write_bytes,
        write_pattern=AccessPattern.SEQUENTIAL,
        insts_per_tile=InstructionMix(
            memory=2.0 * elements_per_tile,                 # ld + st per element
            fp=float(elements_per_tile * OPS_PER_ELEMENT),
            integer=4.0 * elements_per_tile,                # addressing
            control=1.0 * elements_per_tile,                # loop bookkeeping
        ),
    )


class VectorSeq(Workload):
    """Vector-to-Constant with sequential access (Svedin et al. [30])."""

    name = "vector_seq"
    suite = "micro"
    domain = "linear algebra"
    description = ("Vector-to-Constant, element-wise arithmetic operations "
                   "on a vector (sequential access)")
    input_kind = "1d"

    pattern = AccessPattern.SEQUENTIAL

    def program(self, size: SizeClass) -> Program:
        return self.program_with_geometry(size)

    def program_with_geometry(self, size: SizeClass,
                              blocks: Optional[int] = None,
                              threads: Optional[int] = None) -> Program:
        """The same workload on an explicit launch geometry (Sec. 5)."""
        total_bytes = size.mem_bytes
        descriptor = vector_kernel(self.name, total_bytes, self.pattern,
                                   blocks=blocks, threads=threads)
        buffers = (
            BufferSpec("vector", total_bytes, BufferDirection.INOUT,
                       host_read_fraction=0.25),
        )
        return Program(name=self.name, buffers=buffers,
                       phases=(KernelPhase(descriptor),))

    @staticmethod
    def apply_chain(values: np.ndarray, ops: int = 8) -> np.ndarray:
        """The element-wise arithmetic chain the kernel applies."""
        result = values.astype(np.float64)
        for step in range(ops):
            result = result * 1.000001 + float(step % 3)
        return result

    def reference(self, rng: Optional[np.random.Generator] = None) -> Dict[str, Any]:
        rng = self._rng(rng)
        vector = rng.standard_normal(4096).astype(np.float32)
        out = self.apply_chain(vector)
        return {"input": vector, "output": out}


class VectorRand(VectorSeq):
    """Vector-to-Constant with random (gather-indexed) access."""

    name = "vector_rand"
    description = ("Vector-to-Constant, element-wise arithmetic operations "
                   "on a vector (random access)")
    pattern = AccessPattern.RANDOM

    def program(self, size: SizeClass) -> Program:
        # Two buffers (data + permutation indices) split the footprint;
        # the kernel streams both (gathered data + sequential indices).
        half_bytes = size.mem_bytes // 2
        descriptor = vector_kernel(self.name, size.mem_bytes, self.pattern,
                                   write_bytes=half_bytes)
        buffers = (
            BufferSpec("vector", half_bytes, BufferDirection.INOUT,
                       host_read_fraction=0.25),
            BufferSpec("indices", half_bytes, BufferDirection.IN),
        )
        return Program(name=self.name, buffers=buffers,
                       phases=(KernelPhase(descriptor),))

    def reference(self, rng: Optional[np.random.Generator] = None) -> Dict[str, Any]:
        rng = self._rng(rng)
        vector = rng.standard_normal(4096).astype(np.float32)
        indices = rng.permutation(vector.size)
        gathered = vector[indices]
        out = self.apply_chain(gathered)
        return {"input": vector, "indices": indices, "output": out}


class Saxpy(Workload):
    """PolyBench saxpy: y = a * x + y."""

    name = "saxpy"
    suite = "micro"
    domain = "linear algebra"
    description = "Vector-to-Vector multiplication and addition"
    input_kind = "1d"

    ALPHA = 2.5

    def program(self, size: SizeClass) -> Program:
        half_bytes = size.mem_bytes // 2
        elements_per_tile = TILE_BYTES // FLOAT_BYTES
        geometry = _vector_geometry(2 * half_bytes)  # streams x and y
        descriptor = KernelDescriptor(
            name=self.name,
            blocks=geometry["blocks"],
            threads_per_block=DEFAULT_THREADS,
            tiles_per_block=geometry["tiles_per_block"],
            tile_bytes=TILE_BYTES,
            compute_cycles_per_tile=cycles_for_flops(2 * elements_per_tile),
            access_pattern=AccessPattern.SEQUENTIAL,
            write_bytes=half_bytes,
            insts_per_tile=InstructionMix(
                memory=1.5 * elements_per_tile,
                fp=2.0 * elements_per_tile,
                integer=3.0 * elements_per_tile,
                control=0.5 * elements_per_tile,
            ),
        )
        buffers = (
            BufferSpec("x", half_bytes, BufferDirection.IN),
            BufferSpec("y", half_bytes, BufferDirection.INOUT,
                       host_read_fraction=0.25),
        )
        return Program(name=self.name, buffers=buffers,
                       phases=(KernelPhase(descriptor),))

    def reference(self, rng: Optional[np.random.Generator] = None) -> Dict[str, Any]:
        rng = self._rng(rng)
        x = rng.standard_normal(4096).astype(np.float32)
        y = rng.standard_normal(4096).astype(np.float32)
        out = self.ALPHA * x + y
        return {"x": x, "y": y, "output": out}
