"""PolyBench BLAS microbenchmarks: gemv and gemm.

``gemv`` is a memory-bound BLAS-2 kernel; ``gemm`` is the compute-bound
BLAS-3 kernel the paper validated against CUTLASS (Sec. 3.2.1, fn. 2).
The gemm baseline is therefore already software-pipelined
(``sync_overlap = 1``): cp.async adds control overhead but no overlap
benefit, which is exactly the +7.86 % kernel-time cost Fig. 9/Sec. 4.1.1
attribute to its extra control instructions.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from ...sim.kernel import AccessPattern, InstructionMix, KernelDescriptor
from ...sim.program import (BufferDirection, BufferSpec, KernelPhase, Program)
from ..base import Workload, cycles_for_flops
from ..sizes import FLOAT_BYTES, SizeClass

GEMV_TILE_BYTES = 4096

# gemm tiling: 128x128 output blocks advanced in k-steps of 16, so each
# step stages two 128x16 fp32 panels = 16 KiB into shared memory. The
# double buffer exactly fills the default 32 KiB carveout.
GEMM_TILE_BYTES = 16 * 1024
GEMM_BLOCK_DIM = 128
GEMM_K_STEP = 16
# Panel rows are copied row-by-row: 2 panels x 2 rows-per-copy batches.
GEMM_ASYNC_COPIES_PER_TILE = 64


class Gemv(Workload):
    """General matrix-vector multiplication: y = A @ x."""

    name = "gemv"
    suite = "micro"
    domain = "linear algebra"
    description = "general Matrix-to-Vector multiplication"
    input_kind = "2d"

    def program(self, size: SizeClass) -> Program:
        side = size.side_2d
        matrix_bytes = side * side * FLOAT_BYTES
        vector_bytes = side * FLOAT_BYTES
        total_tiles = max(1, matrix_bytes // GEMV_TILE_BYTES)
        blocks = min(4096, total_tiles)
        tiles_per_block = max(1, round(total_tiles / blocks))
        elements_per_tile = GEMV_TILE_BYTES // FLOAT_BYTES
        descriptor = KernelDescriptor(
            name=self.name,
            blocks=blocks,
            threads_per_block=256,
            tiles_per_block=tiles_per_block,
            tile_bytes=GEMV_TILE_BYTES,
            compute_cycles_per_tile=cycles_for_flops(2 * elements_per_tile),
            access_pattern=AccessPattern.SEQUENTIAL,
            write_bytes=vector_bytes,
            insts_per_tile=InstructionMix(
                memory=1.25 * elements_per_tile,
                fp=2.0 * elements_per_tile,
                integer=2.0 * elements_per_tile,
                control=0.5 * elements_per_tile,
            ),
        )
        buffers = (
            BufferSpec("A", matrix_bytes, BufferDirection.IN),
            BufferSpec("x", vector_bytes, BufferDirection.IN),
            BufferSpec("y", vector_bytes, BufferDirection.OUT,
                       host_read_fraction=1.0),
        )
        return Program(name=self.name, buffers=buffers,
                       phases=(KernelPhase(descriptor),))

    def reference(self, rng: Optional[np.random.Generator] = None) -> Dict[str, Any]:
        rng = self._rng(rng)
        matrix = rng.standard_normal((96, 96)).astype(np.float32)
        x = rng.standard_normal(96).astype(np.float32)
        return {"A": matrix, "x": x, "output": matrix @ x}


def gemm_kernel(name: str, m: int, n: int, k: int,
                threads: int = 256) -> KernelDescriptor:
    """Descriptor for a tiled C[m,n] += A[m,k] @ B[k,n] kernel.

    Shared by the gemm microbenchmark and the darknet convolution
    layers (which lower convolution to gemm via im2col).
    """
    blocks_m = max(1, m // GEMM_BLOCK_DIM)
    blocks_n = max(1, n // GEMM_BLOCK_DIM)
    blocks = blocks_m * blocks_n
    k_steps = max(1, k // GEMM_K_STEP)
    flops = 2.0 * m * n * k
    total_tiles = blocks * k_steps
    elements_per_tile = GEMM_TILE_BYTES // FLOAT_BYTES
    return KernelDescriptor(
        name=name,
        blocks=blocks,
        threads_per_block=threads,
        tiles_per_block=k_steps,
        tile_bytes=GEMM_TILE_BYTES,
        compute_cycles_per_tile=cycles_for_flops(flops / total_tiles),
        access_pattern=AccessPattern.SEQUENTIAL,
        write_bytes=m * n * FLOAT_BYTES,
        data_footprint_bytes=(m * k + k * n) * FLOAT_BYTES,
        bandwidth_efficiency=0.65,
        smem_static_bytes=0,
        async_copies_per_tile=GEMM_ASYNC_COPIES_PER_TILE,
        sync_overlap=1.0,
        insts_per_tile=InstructionMix(
            memory=1.0 * elements_per_tile,
            fp=flops / total_tiles,
            integer=1.5 * elements_per_tile,
            control=960.0,
        ),
    )


class Gemm(Workload):
    """General matrix-matrix multiplication: C = A @ B."""

    name = "gemm"
    suite = "micro"
    domain = "linear algebra"
    description = "general Matrix-to-Matrix multiplication"
    input_kind = "2d"

    def supports(self, size: SizeClass) -> bool:
        """Mega needs three 16 GiB matrices (48 GiB): more than the
        A100's 40 GiB of HBM, so explicit allocation cannot exist."""
        return size is not SizeClass.MEGA

    def program(self, size: SizeClass) -> Program:
        side = size.side_2d
        matrix_bytes = side * side * FLOAT_BYTES
        descriptor = gemm_kernel(self.name, side, side, side)
        buffers = (
            BufferSpec("A", matrix_bytes, BufferDirection.IN),
            BufferSpec("B", matrix_bytes, BufferDirection.IN),
            BufferSpec("C", matrix_bytes, BufferDirection.OUT,
                       host_read_fraction=0.25),
        )
        return Program(name=self.name, buffers=buffers,
                       phases=(KernelPhase(descriptor),))

    def reference(self, rng: Optional[np.random.Generator] = None) -> Dict[str, Any]:
        rng = self._rng(rng)
        a = rng.standard_normal((64, 48)).astype(np.float32)
        b = rng.standard_normal((48, 80)).astype(np.float32)
        return {"A": a, "B": b, "output": a @ b}
