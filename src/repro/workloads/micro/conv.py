"""PolyBench convolution microbenchmarks: 2DCONV and 3DCONV.

Stencil kernels with compact per-tile compute but awkward cp.async
staging: halo tiles decompose into many short row copies, so the async
pipeline pays a large control-instruction bill per tile (the +146 %
kernel-time blowup of Sec. 4.1.1). Their regular access makes them the
biggest uvm_prefetch winners instead (up to 2.63x, Takeaway 2).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from ...sim.kernel import AccessPattern, InstructionMix, KernelDescriptor
from ...sim.program import (BufferDirection, BufferSpec, KernelPhase, Program)
from ..base import Workload, cycles_for_flops
from ..sizes import FLOAT_BYTES, SizeClass

# 2D: 32x32 output tiles with a 1-element halo.
CONV2D_TILE_SIDE = 32
CONV2D_HALO_SIDE = CONV2D_TILE_SIDE + 2
CONV2D_TILE_BYTES = CONV2D_HALO_SIDE * CONV2D_HALO_SIDE * FLOAT_BYTES
# Each halo row is a separate short cp.async; double-buffering copies
# both halves of the stage, plus ragged edge segments.
CONV2D_ASYNC_COPIES = 130
# Tiny, misaligned row segments pay heavy per-copy front-end work.
CONV_ASYNC_CONTROL_CYCLES = 90.0

# 3D: 8x8x8 output tiles with a 1-element halo (10^3 staging volume).
CONV3D_TILE_SIDE = 8
CONV3D_HALO_SIDE = CONV3D_TILE_SIDE + 2
CONV3D_TILE_BYTES = CONV3D_HALO_SIDE ** 3 * FLOAT_BYTES
CONV3D_ASYNC_COPIES = 150

CONV2D_WEIGHTS = np.array(
    [[0.05, 0.10, 0.05],
     [0.10, 0.40, 0.10],
     [0.05, 0.10, 0.05]], dtype=np.float32)


def conv2d_reference(grid: np.ndarray,
                     weights: np.ndarray = CONV2D_WEIGHTS) -> np.ndarray:
    """Direct 'valid' 2D convolution (flipped-kernel convention not
    needed: the stencil is symmetric)."""
    if grid.ndim != 2:
        raise ValueError("conv2d_reference expects a 2D grid")
    kh, kw = weights.shape
    out_h = grid.shape[0] - kh + 1
    out_w = grid.shape[1] - kw + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError("grid smaller than the stencil")
    out = np.zeros((out_h, out_w), dtype=np.float64)
    for dy in range(kh):
        for dx in range(kw):
            out += weights[dy, dx] * grid[dy:dy + out_h, dx:dx + out_w]
    return out.astype(np.float32)


def conv3d_reference(grid: np.ndarray, weight: float = 1.0 / 27.0) -> np.ndarray:
    """27-point box-filter 3D convolution ('valid')."""
    if grid.ndim != 3:
        raise ValueError("conv3d_reference expects a 3D grid")
    shape = tuple(s - 2 for s in grid.shape)
    if min(shape) <= 0:
        raise ValueError("grid smaller than the stencil")
    out = np.zeros(shape, dtype=np.float64)
    for dz in range(3):
        for dy in range(3):
            for dx in range(3):
                out += grid[dz:dz + shape[0], dy:dy + shape[1],
                            dx:dx + shape[2]]
    return (out * weight).astype(np.float32)


class Conv2D(Workload):
    """PolyBench general 2D convolution."""

    name = "2DCONV"
    suite = "micro"
    domain = "image processing"
    description = "general 2D convolution"
    input_kind = "2d"

    def program(self, size: SizeClass) -> Program:
        side = size.side_2d
        grid_bytes = side * side * FLOAT_BYTES
        outputs_per_tile = CONV2D_TILE_SIDE * CONV2D_TILE_SIDE
        total_tiles = max(1, (side * side) // outputs_per_tile)
        blocks = min(8192, total_tiles)
        tiles_per_block = max(1, round(total_tiles / blocks))
        descriptor = KernelDescriptor(
            name=self.name,
            blocks=blocks,
            threads_per_block=256,
            tiles_per_block=tiles_per_block,
            tile_bytes=CONV2D_TILE_BYTES,
            compute_cycles_per_tile=cycles_for_flops(18 * outputs_per_tile),
            access_pattern=AccessPattern.SEQUENTIAL,
            bandwidth_efficiency=0.093,
            write_bytes=grid_bytes,
            data_footprint_bytes=grid_bytes,
            async_copies_per_tile=CONV2D_ASYNC_COPIES,
            async_control_cycles_per_copy=CONV_ASYNC_CONTROL_CYCLES,
            async_serializes=True,
            sync_overlap=1.0,
            insts_per_tile=InstructionMix(
                memory=2.2 * outputs_per_tile,
                fp=18.0 * outputs_per_tile,
                integer=4.0 * outputs_per_tile,
                control=1.0 * outputs_per_tile,
            ),
        )
        buffers = (
            BufferSpec("input", grid_bytes, BufferDirection.IN),
            BufferSpec("output", grid_bytes, BufferDirection.OUT,
                       host_read_fraction=0.25),
        )
        return Program(name=self.name, buffers=buffers,
                       phases=(KernelPhase(descriptor),))

    def reference(self, rng: Optional[np.random.Generator] = None) -> Dict[str, Any]:
        rng = self._rng(rng)
        grid = rng.standard_normal((64, 64)).astype(np.float32)
        return {"input": grid, "output": conv2d_reference(grid)}


class Conv3D(Workload):
    """PolyBench general 3D convolution."""

    name = "3DCONV"
    suite = "micro"
    domain = "image processing"
    description = "general 3D convolution"
    input_kind = "3d"

    def supports(self, size: SizeClass) -> bool:
        """Mega needs two 32 GiB grids (64 GiB): more than the A100's
        40 GiB of HBM, so explicit allocation cannot exist."""
        return size is not SizeClass.MEGA

    def program(self, size: SizeClass) -> Program:
        side = size.side_3d
        grid_bytes = side ** 3 * FLOAT_BYTES
        outputs_per_tile = CONV3D_TILE_SIDE ** 3
        total_tiles = max(1, side ** 3 // outputs_per_tile)
        blocks = min(8192, total_tiles)
        tiles_per_block = max(1, round(total_tiles / blocks))
        descriptor = KernelDescriptor(
            name=self.name,
            blocks=blocks,
            threads_per_block=256,
            tiles_per_block=tiles_per_block,
            tile_bytes=CONV3D_TILE_BYTES,
            compute_cycles_per_tile=cycles_for_flops(54 * outputs_per_tile),
            access_pattern=AccessPattern.STRIDED,
            bandwidth_efficiency=0.075,
            write_bytes=grid_bytes,
            data_footprint_bytes=grid_bytes,
            async_copies_per_tile=CONV3D_ASYNC_COPIES,
            async_control_cycles_per_copy=CONV_ASYNC_CONTROL_CYCLES,
            async_serializes=True,
            sync_overlap=1.0,
            insts_per_tile=InstructionMix(
                memory=2.8 * outputs_per_tile,
                fp=54.0 * outputs_per_tile,
                integer=6.0 * outputs_per_tile,
                control=1.5 * outputs_per_tile,
            ),
        )
        buffers = (
            BufferSpec("input", grid_bytes, BufferDirection.IN),
            BufferSpec("output", grid_bytes, BufferDirection.OUT,
                       host_read_fraction=0.25),
        )
        return Program(name=self.name, buffers=buffers,
                       phases=(KernelPhase(descriptor),))

    def reference(self, rng: Optional[np.random.Generator] = None) -> Dict[str, Any]:
        rng = self._rng(rng)
        grid = rng.standard_normal((20, 20, 20)).astype(np.float32)
        return {"input": grid, "output": conv3d_reference(grid)}
