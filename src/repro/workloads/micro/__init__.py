"""The 7-workload microbenchmark suite (Table 2, top half)."""

from .blas import Gemm, Gemv, gemm_kernel
from .conv import Conv2D, Conv3D, conv2d_reference, conv3d_reference
from .vectors import Saxpy, VectorRand, VectorSeq, vector_kernel

MICRO_WORKLOADS = (VectorSeq, VectorRand, Saxpy, Gemv, Gemm, Conv2D, Conv3D)

__all__ = [
    "Conv2D", "Conv3D", "Gemm", "Gemv", "MICRO_WORKLOADS", "Saxpy",
    "VectorRand", "VectorSeq", "conv2d_reference", "conv3d_reference",
    "gemm_kernel", "vector_kernel",
]
