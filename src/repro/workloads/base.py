"""Workload base classes.

Every benchmark in the suite provides two faces:

* :meth:`Workload.program` - the performance-study face: a
  :class:`~repro.sim.program.Program` (buffers + kernel phases) whose
  kernel descriptors characterize the real CUDA kernels of the
  benchmark at a given input-size class.
* :meth:`Workload.reference` - the functional face: a small NumPy
  implementation of the actual algorithm, checked against independent
  oracles in the test suite. This keeps the suite honest: the
  descriptors describe programs that exist and compute real results.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, Optional

import numpy as np

from ..sim.program import Program
from .sizes import SizeClass


class Workload(abc.ABC):
    """One benchmark of the suite (Table 2)."""

    #: unique registry key, e.g. ``"vector_seq"``
    name: str = ""
    #: source suite: "micro", "rodinia", "uvmbench", or "darknet"
    suite: str = ""
    #: application domain used in Table 2's description column
    domain: str = ""
    #: one-line description (Table 2)
    description: str = ""
    #: input dimensionality: "1d", "2d", or "3d"
    input_kind: str = "1d"

    def __init__(self) -> None:
        for attr in ("name", "suite", "domain", "description"):
            if not getattr(self, attr, ""):
                raise TypeError(
                    f"workload class {type(self).__name__} must define {attr!r}"
                )

    # ------------------------------------------------------------------
    # Performance face
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def program(self, size: SizeClass) -> Program:
        """Build the device program for one input-size class."""

    def supports(self, size: SizeClass) -> bool:
        """Whether this workload is defined at a size class.

        Real-world applications in the paper run at Super only; a few
        cannot scale to Mega. Default: everything.
        """
        return True

    # ------------------------------------------------------------------
    # Functional face
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def reference(self, rng: Optional[np.random.Generator] = None) -> Dict[str, Any]:
        """Run a small functional instance; return named result arrays.

        Implementations use a fixed, small problem size (milliseconds
        of NumPy work) so the test suite can validate them against
        independent oracles.
        """

    # ------------------------------------------------------------------
    # Conveniences
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return f"<Workload {self.name} ({self.suite})>"

    @staticmethod
    def _rng(rng: Optional[np.random.Generator], seed: int = 7) -> np.random.Generator:
        return rng if rng is not None else np.random.default_rng(seed)


def cycles_for_flops(flops: float) -> float:
    """Block-cycles for a given FP32 op count.

    The SM model retires one full-width block-cycle per cycle per SM:
    64 FP32 cores x 2 ops (FMA) = 128 ops. Using this helper keeps
    every workload's compute density on the A100 19.5-TFLOP/s roofline.
    """
    if flops < 0:
        raise ValueError("negative flop count")
    return flops / 128.0


def cycles_for_latency_bound_ops(ops: float, stall_cycles: float = 20.0) -> float:
    """Block-cycles for a dependent arithmetic chain.

    The vector microbenchmarks execute a serial chain of dependent ops
    per element (Fig. 3's loop body); each op stalls for most of its
    pipeline latency because the resident warps cannot cover it. The
    result is per-thread throughput of roughly ``1/stall_cycles`` ops
    per cycle, normalized to the 128-lane block-cycle unit.
    """
    if ops < 0:
        raise ValueError("negative op count")
    if stall_cycles < 1:
        raise ValueError("stall_cycles must be >= 1")
    return ops * stall_cycles / 128.0


def cycles_for_int_ops(ops: float) -> float:
    """Block-cycles for integer-dominated work (64 INT32 lanes/SM)."""
    if ops < 0:
        raise ValueError("negative op count")
    return ops / 64.0
