"""Darknet network container: wiring, inference, and GPU characterization.

A :class:`Network` is an ordered layer list (route/shortcut layers
reference earlier outputs by index, as in darknet cfg files). Besides
the NumPy ``forward``, it lowers itself to a simulator
:class:`~repro.sim.program.Program`: each convolution becomes the
im2col gemm kernel darknet actually launches, and the pool / shortcut
/ upsample / head layers become small element-wise kernels - so the
managed-memory per-launch costs of a 100-kernel network are modelled
faithfully.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ...sim.kernel import AccessPattern, InstructionMix, KernelDescriptor
from ...sim.program import (BufferDirection, BufferSpec, KernelPhase, Program)
from ..micro.blas import gemm_kernel
from .layers import (ConnectedLayer, ConvLayer, Layer, RouteLayer,
                     Shape, ShortcutLayer)

FLOAT_BYTES = 4


def elementwise_kernel(name: str, total_bytes: int) -> KernelDescriptor:
    """A small streaming kernel (pool / shortcut / upsample / head)."""
    tile_bytes = 4096
    total_tiles = max(1, total_bytes // tile_bytes)
    blocks = min(2048, total_tiles)
    elements = tile_bytes // FLOAT_BYTES
    return KernelDescriptor(
        name=name,
        blocks=blocks,
        threads_per_block=256,
        tiles_per_block=max(1, round(total_tiles / blocks)),
        tile_bytes=tile_bytes,
        compute_cycles_per_tile=elements * 2 / 128.0,
        access_pattern=AccessPattern.SEQUENTIAL,
        write_bytes=total_bytes,
        data_footprint_bytes=total_bytes,
        insts_per_tile=InstructionMix(
            memory=2.0 * elements, fp=2.0 * elements,
            integer=2.0 * elements, control=0.5 * elements,
        ),
    )


class Network:
    """An ordered darknet layer graph."""

    def __init__(self, name: str, input_shape: Shape,
                 layers: Sequence[Layer]):
        self.name = name
        self.input_shape = input_shape
        self.layers: List[Layer] = list(layers)
        self.shapes: List[Shape] = []
        self._configure()

    def _configure(self) -> None:
        shape = self.input_shape
        self.shapes = []
        for index, layer in enumerate(self.layers):
            if isinstance(layer, RouteLayer):
                sources = [self._resolve(index, s) for s in layer.sources]
                shape = layer.configure_from([self.shapes[s] for s in sources])
                layer.sources = tuple(sources)
            else:
                if isinstance(layer, ShortcutLayer):
                    layer.source = self._resolve(index, layer.source)
                shape = layer.configure(shape)
            self.shapes.append(shape)

    def _resolve(self, at_index: int, source: int) -> int:
        resolved = source if source >= 0 else at_index + source
        if not 0 <= resolved < at_index:
            raise ValueError(
                f"layer {at_index} references invalid source {source}")
        return resolved

    @property
    def out_shape(self) -> Shape:
        return self.shapes[-1]

    # ------------------------------------------------------------------
    # Functional inference
    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.shape[1:] != self.input_shape:
            raise ValueError(
                f"{self.name} expects input shape {self.input_shape}, "
                f"got {x.shape[1:]}")
        outputs: List[np.ndarray] = []
        current = x.astype(np.float32)
        for layer in self.layers:
            current = layer.forward(current, outputs)
            outputs.append(current)
        return current

    def forward_heads(self, x: np.ndarray) -> List[np.ndarray]:
        """Forward pass returning every detection head's output.

        Multi-scale detectors (yolov3) emit predictions from several
        YOLO layers; plain classifiers return their single final
        output.
        """
        from .layers import YoloLayer
        outputs: List[np.ndarray] = []
        current = x.astype(np.float32)
        heads: List[np.ndarray] = []
        for layer in self.layers:
            current = layer.forward(current, outputs)
            outputs.append(current)
            if isinstance(layer, YoloLayer):
                heads.append(current)
        return heads if heads else [current]

    def yolo_heads(self) -> List:
        """The network's YOLO layers, in emission order."""
        from .layers import YoloLayer
        return [layer for layer in self.layers
                if isinstance(layer, YoloLayer)]

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def weight_bytes(self) -> int:
        return sum(layer.weight_bytes() for layer in self.layers)

    def activation_bytes_per_image(self) -> int:
        return sum(FLOAT_BYTES * c * h * w for (c, h, w) in self.shapes)

    def conv_layers(self) -> List[Tuple[int, ConvLayer]]:
        return [(i, layer) for i, layer in enumerate(self.layers)
                if isinstance(layer, ConvLayer)]

    def total_flops_per_image(self) -> float:
        flops = 0.0
        for _, conv in self.conv_layers():
            m, n, k = conv.gemm_shape()
            flops += 2.0 * m * n * k
        return flops

    # ------------------------------------------------------------------
    # Simulator lowering
    # ------------------------------------------------------------------
    def build_program(self, batch: int,
                      host_read_fraction: float = 1.0) -> Program:
        """Lower one batched inference pass to a simulator program."""
        if batch < 1:
            raise ValueError("batch must be >= 1")
        phases: List[KernelPhase] = []
        for index, layer in enumerate(self.layers):
            shape = self.shapes[index]
            out_bytes = batch * FLOAT_BYTES * shape[0] * shape[1] * shape[2]
            if isinstance(layer, ConvLayer):
                m, n, k = layer.gemm_shape()
                descriptor = gemm_kernel(
                    f"{self.name}.conv{index}", m, n * batch, k)
                phases.append(KernelPhase(descriptor))
            elif isinstance(layer, ConnectedLayer):
                descriptor = gemm_kernel(
                    f"{self.name}.fc{index}", layer.out_features, batch,
                    layer.in_features)
                phases.append(KernelPhase(descriptor))
            else:
                phases.append(KernelPhase(elementwise_kernel(
                    f"{self.name}.{layer.kind}{index}", max(4096, out_bytes))))

        input_bytes = batch * FLOAT_BYTES * np.prod(self.input_shape)
        out_shape = self.out_shape
        output_bytes = batch * FLOAT_BYTES * np.prod(out_shape)
        activations = max(4096, batch * self.activation_bytes_per_image())
        buffers = (
            BufferSpec("weights", max(4096, self.weight_bytes()),
                       BufferDirection.IN),
            BufferSpec("images", int(max(4096, input_bytes)),
                       BufferDirection.IN),
            BufferSpec("activations", int(activations),
                       BufferDirection.SCRATCH),
            BufferSpec("predictions", int(max(4096, output_bytes)),
                       BufferDirection.OUT,
                       host_read_fraction=host_read_fraction),
        )
        return Program(name=self.name, buffers=buffers, phases=tuple(phases))
