"""Darknet model builders: resnet18, resnet50, yolov3-tiny, yolov3.

Layer sequences follow the upstream darknet cfg files. Weights are
randomly initialized (He init) - the paper uses the networks as
kernel-sequence generators for profiling, and layer shapes (hence the
per-layer gemm characterization) do not depend on trained weights.

Residual blocks with downsampling are expressed with an explicit 1x1
projection convolution re-exposed to the shortcut through a
single-source route (identity) layer.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Optional, Tuple

import numpy as np

from .layers import (AvgPoolLayer, ConnectedLayer, ConvLayer, Layer,
                     MaxPoolLayer, RouteLayer, ShortcutLayer, SoftmaxLayer,
                     UpsampleLayer, YoloAnchors, YoloLayer)
from .network import Network

IMAGENET_CLASSES = 1000
COCO_CLASSES = 80

YOLO_ANCHORS_LARGE = YoloAnchors(
    anchors=((116, 90), (156, 198), (373, 326)), classes=COCO_CLASSES)
YOLO_ANCHORS_MEDIUM = YoloAnchors(
    anchors=((30, 61), (62, 45), (59, 119)), classes=COCO_CLASSES)
YOLO_ANCHORS_SMALL = YoloAnchors(
    anchors=((10, 13), (16, 30), (33, 23)), classes=COCO_CLASSES)
YOLO_TINY_ANCHORS_COARSE = YoloAnchors(
    anchors=((81, 82), (135, 169), (344, 319)), classes=COCO_CLASSES)
YOLO_TINY_ANCHORS_FINE = YoloAnchors(
    anchors=((10, 14), (23, 27), (37, 58)), classes=COCO_CLASSES)

DETECTION_CHANNELS = 3 * (5 + COCO_CLASSES)  # 255


class _Builder:
    """Accumulates layers and tracks indices/channels while building."""

    def __init__(self, in_channels: int, rng: np.random.Generator):
        self.layers: List[Layer] = []
        self.channels = in_channels
        self.rng = rng

    @property
    def last(self) -> int:
        return len(self.layers) - 1

    def conv(self, out_channels: int, ksize: int = 3, stride: int = 1,
             activation: str = "leaky", batch_normalize: bool = True) -> int:
        self.layers.append(ConvLayer(
            self.channels, out_channels, ksize=ksize, stride=stride,
            activation=activation, batch_normalize=batch_normalize,
            rng=self.rng))
        self.channels = out_channels
        return self.last

    def maxpool(self, size: int = 2, stride: Optional[int] = None) -> int:
        self.layers.append(MaxPoolLayer(size=size, stride=stride))
        return self.last

    def avgpool(self) -> int:
        self.layers.append(AvgPoolLayer())
        return self.last

    def upsample(self, stride: int = 2) -> int:
        self.layers.append(UpsampleLayer(stride=stride))
        return self.last

    def route(self, sources: Tuple[int, ...], channels: int) -> int:
        self.layers.append(RouteLayer(sources))
        self.channels = channels
        return self.last

    def shortcut(self, source: int, activation: str = "linear") -> int:
        self.layers.append(ShortcutLayer(source, activation=activation))
        return self.last

    def connected(self, in_features: int, out_features: int) -> int:
        self.layers.append(ConnectedLayer(in_features, out_features,
                                          rng=self.rng))
        self.channels = out_features
        return self.last

    def softmax(self) -> int:
        self.layers.append(SoftmaxLayer())
        return self.last

    def yolo(self, anchors: YoloAnchors) -> int:
        self.layers.append(YoloLayer(anchors))
        return self.last


# ----------------------------------------------------------------------
# ResNets
# ----------------------------------------------------------------------
def _basic_block(b: _Builder, channels: int, downsample: bool) -> None:
    """resnet18/34 basic block, with an explicit projection when needed."""
    entry = b.last
    in_channels = b.channels
    stride = 2 if downsample else 1
    if downsample or in_channels != channels:
        skip = b.conv(channels, ksize=1, stride=stride, activation="linear")
        # Re-expose the block input to the main path via an identity route.
        b.route((entry,), channels=in_channels)
    else:
        skip = entry
    b.conv(channels, ksize=3, stride=stride, activation="relu")
    b.conv(channels, ksize=3, stride=1, activation="linear")
    b.shortcut(skip, activation="relu")


def _bottleneck_block(b: _Builder, width: int, out_channels: int,
                      downsample: bool) -> None:
    """resnet50 bottleneck block (1x1 -> 3x3 -> 1x1 with projection)."""
    entry = b.last
    in_channels = b.channels
    stride = 2 if downsample else 1
    if downsample or in_channels != out_channels:
        skip = b.conv(out_channels, ksize=1, stride=stride,
                      activation="linear")
        b.route((entry,), channels=in_channels)
    else:
        skip = entry
    b.conv(width, ksize=1, stride=1, activation="relu")
    b.conv(width, ksize=3, stride=stride, activation="relu")
    b.conv(out_channels, ksize=1, stride=1, activation="linear")
    b.shortcut(skip, activation="relu")


def _resnet_stem(b: _Builder) -> None:
    b.conv(64, ksize=7, stride=2, activation="relu")
    b.maxpool(size=2, stride=2)


@lru_cache(maxsize=8)
def build_resnet18(input_size: int = 256, seed: int = 18) -> Network:
    """Residual network with 18 convolution layers (darknet resnet18)."""
    rng = np.random.default_rng(seed)
    b = _Builder(3, rng)
    _resnet_stem(b)
    for channels, count, downsample in ((64, 2, False), (128, 2, True),
                                        (256, 2, True), (512, 2, True)):
        for block in range(count):
            _basic_block(b, channels, downsample=downsample and block == 0)
    b.avgpool()
    b.connected(512, IMAGENET_CLASSES)
    b.softmax()
    return Network("resnet18", (3, input_size, input_size), b.layers)


@lru_cache(maxsize=8)
def build_resnet50(input_size: int = 256, seed: int = 50) -> Network:
    """Residual network with 50 convolution layers (darknet resnet50)."""
    rng = np.random.default_rng(seed)
    b = _Builder(3, rng)
    _resnet_stem(b)
    for width, out_channels, count, downsample in (
            (64, 256, 3, False), (128, 512, 4, True),
            (256, 1024, 6, True), (512, 2048, 3, True)):
        for block in range(count):
            _bottleneck_block(b, width, out_channels,
                              downsample=downsample and block == 0)
    b.avgpool()
    b.connected(2048, IMAGENET_CLASSES)
    b.softmax()
    return Network("resnet50", (3, input_size, input_size), b.layers)


# ----------------------------------------------------------------------
# YOLO family
# ----------------------------------------------------------------------
def _darknet53_residual(b: _Builder, channels: int) -> None:
    entry = b.last
    b.conv(channels // 2, ksize=1)
    b.conv(channels, ksize=3)
    b.shortcut(entry)


@lru_cache(maxsize=8)
def build_yolov3(input_size: int = 416, seed: int = 3) -> Network:
    """YOLOv3 on the darknet-53 backbone (106-layer graph)."""
    if input_size % 32:
        raise ValueError("yolov3 input size must be a multiple of 32")
    rng = np.random.default_rng(seed)
    b = _Builder(3, rng)
    # Backbone.
    b.conv(32, ksize=3)
    stage_tails = {}
    for channels, blocks in ((64, 1), (128, 2), (256, 8), (512, 8),
                             (1024, 4)):
        b.conv(channels, ksize=3, stride=2)
        for _ in range(blocks):
            _darknet53_residual(b, channels)
        stage_tails[channels] = b.last

    # Detection head, scale 1 (coarsest grid).
    b.conv(512, ksize=1)
    b.conv(1024, ksize=3)
    b.conv(512, ksize=1)
    b.conv(1024, ksize=3)
    branch1 = b.conv(512, ksize=1)
    b.conv(1024, ksize=3)
    b.conv(DETECTION_CHANNELS, ksize=1, activation="linear",
           batch_normalize=False)
    b.yolo(YOLO_ANCHORS_LARGE)

    # Scale 2.
    b.route((branch1,), channels=512)
    b.conv(256, ksize=1)
    b.upsample()
    b.route((b.last, stage_tails[512]), channels=256 + 512)
    b.conv(256, ksize=1)
    b.conv(512, ksize=3)
    b.conv(256, ksize=1)
    b.conv(512, ksize=3)
    branch2 = b.conv(256, ksize=1)
    b.conv(512, ksize=3)
    b.conv(DETECTION_CHANNELS, ksize=1, activation="linear",
           batch_normalize=False)
    b.yolo(YOLO_ANCHORS_MEDIUM)

    # Scale 3 (finest grid).
    b.route((branch2,), channels=256)
    b.conv(128, ksize=1)
    b.upsample()
    b.route((b.last, stage_tails[256]), channels=128 + 256)
    b.conv(128, ksize=1)
    b.conv(256, ksize=3)
    b.conv(128, ksize=1)
    b.conv(256, ksize=3)
    b.conv(128, ksize=1)
    b.conv(256, ksize=3)
    b.conv(DETECTION_CHANNELS, ksize=1, activation="linear",
           batch_normalize=False)
    b.yolo(YOLO_ANCHORS_SMALL)

    return Network("yolov3", (3, input_size, input_size), b.layers)


@lru_cache(maxsize=8)
def build_yolov3_tiny(input_size: int = 416, seed: int = 13) -> Network:
    """YOLOv3-tiny (the 24-layer cfg)."""
    if input_size % 32:
        raise ValueError("yolov3-tiny input size must be a multiple of 32")
    rng = np.random.default_rng(seed)
    b = _Builder(3, rng)
    b.conv(16, ksize=3)
    b.maxpool()
    b.conv(32, ksize=3)
    b.maxpool()
    b.conv(64, ksize=3)
    b.maxpool()
    b.conv(128, ksize=3)
    b.maxpool()
    stage8 = b.conv(256, ksize=3)
    b.maxpool()
    b.conv(512, ksize=3)
    b.maxpool(size=2, stride=1)
    b.conv(1024, ksize=3)
    branch = b.conv(256, ksize=1)
    b.conv(512, ksize=3)
    b.conv(DETECTION_CHANNELS, ksize=1, activation="linear",
           batch_normalize=False)
    b.yolo(YOLO_TINY_ANCHORS_COARSE)

    b.route((branch,), channels=256)
    b.conv(128, ksize=1)
    b.upsample()
    b.route((b.last, stage8), channels=128 + 256)
    b.conv(256, ksize=3)
    b.conv(DETECTION_CHANNELS, ksize=1, activation="linear",
           batch_normalize=False)
    b.yolo(YOLO_TINY_ANCHORS_FINE)

    return Network("yolov3-tiny", (3, input_size, input_size), b.layers)
