"""YOLO detection decoding: box extraction and non-max suppression.

Completes the darknet substrate's inference path: the network's raw
head tensors become (x, y, w, h, confidence, class) detections, exactly
as darknet's ``get_yolo_detections`` + ``do_nms_sort`` do. Boxes use
normalized [0, 1] image coordinates with (x, y) at the box center.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from .layers import YoloAnchors


@dataclass(frozen=True)
class Detection:
    """One decoded detection (normalized center-format box)."""

    x: float
    y: float
    w: float
    h: float
    confidence: float
    class_id: int
    class_prob: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.confidence <= 1.0:
            raise ValueError("confidence outside [0, 1]")
        if self.w < 0 or self.h < 0:
            raise ValueError("negative box size")

    @property
    def score(self) -> float:
        """Objectness x class probability (darknet's ranking key)."""
        return self.confidence * self.class_prob

    def corners(self) -> tuple:
        """(x1, y1, x2, y2) corner-format box."""
        return (self.x - self.w / 2.0, self.y - self.h / 2.0,
                self.x + self.w / 2.0, self.y + self.h / 2.0)


def box_iou(a: Detection, b: Detection) -> float:
    """Intersection-over-union of two detections."""
    ax1, ay1, ax2, ay2 = a.corners()
    bx1, by1, bx2, by2 = b.corners()
    inter_w = max(0.0, min(ax2, bx2) - max(ax1, bx1))
    inter_h = max(0.0, min(ay2, by2) - max(ay1, by1))
    intersection = inter_w * inter_h
    union = a.w * a.h + b.w * b.h - intersection
    if union <= 0.0:
        return 0.0
    return intersection / union


def decode_yolo_output(output: np.ndarray, anchors: YoloAnchors,
                       input_size: int,
                       confidence_threshold: float = 0.5) -> List[Detection]:
    """Decode one YOLO head's output tensor (single image, CHW).

    The head already applied sigmoids to x/y/objectness/classes; w and
    h are raw and pass through exp() against the anchor priors, per
    darknet's ``get_yolo_box``.
    """
    if output.ndim != 3:
        raise ValueError("expected a CHW tensor for one image")
    boxes = len(anchors.anchors)
    attrs = 5 + anchors.classes
    channels, grid_h, grid_w = output.shape
    if channels != boxes * attrs:
        raise ValueError(
            f"channel count {channels} does not match {boxes} anchors x "
            f"{attrs} attributes")
    tensor = output.reshape(boxes, attrs, grid_h, grid_w)

    detections: List[Detection] = []
    for box in range(boxes):
        anchor_w, anchor_h = anchors.anchors[box]
        objectness = tensor[box, 4]
        candidates = np.argwhere(objectness >= confidence_threshold)
        for row, col in candidates:
            x = (col + tensor[box, 0, row, col]) / grid_w
            y = (row + tensor[box, 1, row, col]) / grid_h
            w = float(np.exp(np.clip(tensor[box, 2, row, col], -20, 20))
                      * anchor_w / input_size)
            h = float(np.exp(np.clip(tensor[box, 3, row, col], -20, 20))
                      * anchor_h / input_size)
            class_probs = tensor[box, 5:, row, col]
            class_id = int(class_probs.argmax())
            detections.append(Detection(
                x=float(x), y=float(y), w=w, h=h,
                confidence=float(objectness[row, col]),
                class_id=class_id,
                class_prob=float(class_probs[class_id]),
            ))
    return detections


def non_max_suppression(detections: Sequence[Detection],
                        iou_threshold: float = 0.45) -> List[Detection]:
    """Per-class greedy NMS (darknet's ``do_nms_sort``)."""
    if not 0.0 <= iou_threshold <= 1.0:
        raise ValueError("iou_threshold outside [0, 1]")
    kept: List[Detection] = []
    by_class: dict = {}
    for detection in detections:
        by_class.setdefault(detection.class_id, []).append(detection)
    for candidates in by_class.values():
        candidates = sorted(candidates, key=lambda d: d.score,
                            reverse=True)
        while candidates:
            best = candidates.pop(0)
            kept.append(best)
            candidates = [d for d in candidates
                          if box_iou(best, d) <= iou_threshold]
    kept.sort(key=lambda d: d.score, reverse=True)
    return kept


def detect(network, images: np.ndarray,
           confidence_threshold: float = 0.5,
           iou_threshold: float = 0.45) -> List[List[Detection]]:
    """End-to-end detection: forward pass, multi-scale decode, NMS.

    Returns one NMS'd detection list per input image. The network's
    YOLO layers supply the anchors for each scale.
    """
    heads = network.yolo_heads()
    if not heads:
        raise ValueError(f"network {network.name!r} has no YOLO heads")
    input_size = network.input_shape[1]
    outputs = network.forward_heads(images)
    results: List[List[Detection]] = []
    for image_index in range(images.shape[0]):
        candidates: List[Detection] = []
        for head, output in zip(heads, outputs):
            candidates.extend(decode_yolo_output(
                output[image_index], head.anchors, input_size,
                confidence_threshold=confidence_threshold))
        results.append(non_max_suppression(candidates,
                                           iou_threshold=iou_threshold))
    return results


def top_k_classes(probabilities: np.ndarray, k: int = 5) -> List[tuple]:
    """Classification post-processing: (class_id, prob) pairs, best first."""
    flat = probabilities.reshape(-1)
    if k < 1 or k > flat.size:
        raise ValueError(f"k must be in [1, {flat.size}]")
    order = np.argsort(flat)[::-1][:k]
    return [(int(index), float(flat[index])) for index in order]
