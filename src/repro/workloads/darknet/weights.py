"""Darknet-style binary weight serialization.

Implements the layout of darknet's ``.weights`` files: a 20-byte
header (major, minor, revision as int32 plus a seen-images counter as
int64), followed by each layer's parameters in network order - for a
batch-normalized convolution: bias, bn gamma, bn running mean, bn
running variance, then the weights; for plain conv/connected layers:
bias then weights. All values are little-endian float32/int32.

This lets the reproduction round-trip its randomly initialized
networks to disk, and would load real darknet weight files whose
architecture matches the builders.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import BinaryIO, Tuple, Union

import numpy as np

from .layers import ConnectedLayer, ConvLayer
from .network import Network

HEADER_FORMAT = "<iiiq"   # major, minor, revision, images seen
HEADER_BYTES = struct.calcsize(HEADER_FORMAT)
VERSION = (0, 2, 5)


class WeightsFormatError(RuntimeError):
    """Raised for malformed weight files."""


def _write_array(stream: BinaryIO, array: np.ndarray) -> None:
    stream.write(np.ascontiguousarray(array, dtype="<f4").tobytes())


def _read_array(stream: BinaryIO, count: int, what: str) -> np.ndarray:
    data = stream.read(4 * count)
    if len(data) != 4 * count:
        raise WeightsFormatError(
            f"truncated weight file while reading {what} "
            f"({len(data)} of {4 * count} bytes)")
    return np.frombuffer(data, dtype="<f4", count=count).copy()


def save_weights(network: Network, path: Union[str, Path],
                 seen_images: int = 0) -> Path:
    """Serialize a network's parameters in darknet order."""
    path = Path(path)
    with path.open("wb") as stream:
        stream.write(struct.pack(HEADER_FORMAT, *VERSION, seen_images))
        for layer in network.layers:
            if isinstance(layer, ConvLayer):
                _write_array(stream, layer.bias)
                if layer.batch_normalize:
                    _write_array(stream, layer.bn_gamma)
                    _write_array(stream, layer.bn_mean)
                    _write_array(stream, layer.bn_var)
                _write_array(stream, layer.weights)
            elif isinstance(layer, ConnectedLayer):
                _write_array(stream, layer.bias)
                _write_array(stream, layer.weights)
    return path


def load_weights(network: Network, path: Union[str, Path]) -> Tuple[int, int]:
    """Load parameters into a network; returns (version_major, seen).

    The network's architecture defines the expected layout; mismatched
    files raise :class:`WeightsFormatError`.
    """
    path = Path(path)
    with path.open("rb") as stream:
        header = stream.read(HEADER_BYTES)
        if len(header) != HEADER_BYTES:
            raise WeightsFormatError("file too short for a weights header")
        major, _minor, _revision, seen = struct.unpack(HEADER_FORMAT,
                                                       header)
        for index, layer in enumerate(network.layers):
            label = f"layer {index} ({layer.kind})"
            if isinstance(layer, ConvLayer):
                layer.bias = _read_array(stream, layer.bias.size,
                                         f"{label} bias")
                if layer.batch_normalize:
                    layer.bn_gamma = _read_array(
                        stream, layer.bn_gamma.size, f"{label} bn gamma")
                    layer.bn_mean = _read_array(
                        stream, layer.bn_mean.size, f"{label} bn mean")
                    layer.bn_var = _read_array(
                        stream, layer.bn_var.size, f"{label} bn var")
                weights = _read_array(stream, layer.weights.size,
                                      f"{label} weights")
                layer.weights = weights.reshape(layer.weights.shape)
            elif isinstance(layer, ConnectedLayer):
                layer.bias = _read_array(stream, layer.bias.size,
                                         f"{label} bias")
                weights = _read_array(stream, layer.weights.size,
                                      f"{label} weights")
                layer.weights = weights.reshape(layer.weights.shape)
        trailing = stream.read(1)
        if trailing:
            raise WeightsFormatError(
                "weight file has trailing data; architecture mismatch?")
    return major, seen
