"""Darknet substrate: NumPy layer zoo, network container, model builders."""

from .layers import (ACTIVATIONS, AvgPoolLayer, ConnectedLayer, ConvLayer,
                     Layer, MaxPoolLayer, RouteLayer, ShortcutLayer,
                     SoftmaxLayer, UpsampleLayer, YoloAnchors, YoloLayer,
                     im2col, leaky_relu, linear, relu)
from .detection import (Detection, box_iou, decode_yolo_output, detect,
                        non_max_suppression, top_k_classes)
from .models import (build_resnet18, build_resnet50, build_yolov3,
                     build_yolov3_tiny)
from .network import Network, elementwise_kernel
from .weights import (WeightsFormatError, load_weights, save_weights)
from .workloads import (DarknetWorkload, Resnet18, Resnet50, Yolov3,
                        Yolov3Tiny)

DARKNET_WORKLOADS = (Resnet50, Yolov3Tiny, Resnet18, Yolov3)

__all__ = [
    "Detection", "WeightsFormatError", "box_iou", "decode_yolo_output",
    "detect",
    "load_weights", "non_max_suppression", "save_weights",
    "top_k_classes",
    "ACTIVATIONS", "AvgPoolLayer", "ConnectedLayer", "ConvLayer",
    "DARKNET_WORKLOADS", "DarknetWorkload", "Layer", "MaxPoolLayer",
    "Network", "Resnet18", "Resnet50", "RouteLayer", "ShortcutLayer",
    "SoftmaxLayer", "UpsampleLayer", "YoloAnchors", "YoloLayer", "Yolov3",
    "Yolov3Tiny", "build_resnet18", "build_resnet50", "build_yolov3",
    "build_yolov3_tiny", "elementwise_kernel", "im2col", "leaky_relu",
    "linear", "relu",
]
