"""Darknet-style neural-network layers (NumPy forward passes).

A functional reimplementation of the darknet layer zoo the paper's ML
workloads use: convolution (+ batch norm + leaky ReLU), max/avg
pooling, upsampling, route (concat), shortcut (residual add), fully
connected, softmax, and the YOLO detection head. Each layer knows its
output shape and its dominant GPU kernel so the simulator can
characterize whole networks layer by layer.

Tensors are NCHW ``float32``: (batch, channels, height, width).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

Shape = Tuple[int, int, int]  # (channels, height, width)


def leaky_relu(x: np.ndarray, slope: float = 0.1) -> np.ndarray:
    """Darknet's default activation."""
    return np.where(x > 0, x, slope * x)


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(x, 0.0)


def linear(x: np.ndarray) -> np.ndarray:
    """Identity activation."""
    return x


ACTIVATIONS = {"leaky": leaky_relu, "relu": relu, "linear": linear}


def im2col(x: np.ndarray, ksize: int, stride: int, pad: int) -> np.ndarray:
    """Unfold (n, c, h, w) into (n, c*k*k, out_h*out_w) patches."""
    n, c, h, w = x.shape
    out_h = (h + 2 * pad - ksize) // stride + 1
    out_w = (w + 2 * pad - ksize) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError("im2col: kernel larger than padded input")
    padded = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    cols = np.empty((n, c * ksize * ksize, out_h * out_w), dtype=x.dtype)
    index = 0
    for dy in range(ksize):
        for dx in range(ksize):
            patch = padded[:, :, dy:dy + stride * out_h:stride,
                           dx:dx + stride * out_w:stride]
            cols[:, index * c:(index + 1) * c, :] = patch.reshape(n, c, -1)
            index += 1
    return cols


class Layer(abc.ABC):
    """One network layer."""

    def __init__(self) -> None:
        self.out_shape: Optional[Shape] = None

    @abc.abstractmethod
    def configure(self, in_shape: Shape) -> Shape:
        """Set and return the output shape for a given input shape."""

    @abc.abstractmethod
    def forward(self, x: np.ndarray, outputs: List[np.ndarray]) -> np.ndarray:
        """Compute the layer output. ``outputs`` holds prior layer results
        (route/shortcut layers index into it)."""

    @property
    def kind(self) -> str:
        return type(self).__name__.replace("Layer", "").lower()

    def weight_bytes(self) -> int:
        return 0

    def workspace_bytes(self) -> int:
        """im2col/scratch bytes per image."""
        return 0


class ConvLayer(Layer):
    """Convolution + optional batch norm + activation (darknet [convolutional])."""

    def __init__(self, in_channels: int, out_channels: int, ksize: int = 3,
                 stride: int = 1, pad: Optional[int] = None,
                 batch_normalize: bool = True, activation: str = "leaky",
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if activation not in ACTIVATIONS:
            raise ValueError(f"unknown activation {activation!r}")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.ksize = ksize
        self.stride = stride
        self.pad = pad if pad is not None else ksize // 2
        self.batch_normalize = batch_normalize
        self.activation = activation
        rng = rng or np.random.default_rng(0)
        fan_in = in_channels * ksize * ksize
        scale = np.sqrt(2.0 / fan_in)
        self.weights = (rng.standard_normal(
            (out_channels, fan_in)) * scale).astype(np.float32)
        self.bias = np.zeros(out_channels, dtype=np.float32)
        if batch_normalize:
            self.bn_mean = np.zeros(out_channels, dtype=np.float32)
            self.bn_var = np.ones(out_channels, dtype=np.float32)
            self.bn_gamma = np.ones(out_channels, dtype=np.float32)

    def configure(self, in_shape: Shape) -> Shape:
        c, h, w = in_shape
        if c != self.in_channels:
            raise ValueError(
                f"conv expects {self.in_channels} channels, got {c}")
        out_h = (h + 2 * self.pad - self.ksize) // self.stride + 1
        out_w = (w + 2 * self.pad - self.ksize) // self.stride + 1
        self.out_shape = (self.out_channels, out_h, out_w)
        return self.out_shape

    def forward(self, x: np.ndarray, outputs: List[np.ndarray]) -> np.ndarray:
        n = x.shape[0]
        cols = im2col(x, self.ksize, self.stride, self.pad)
        out = np.einsum("of,nfp->nop", self.weights, cols)
        if self.batch_normalize:
            normalized = (out - self.bn_mean[None, :, None]) / np.sqrt(
                self.bn_var[None, :, None] + 1e-5)
            out = self.bn_gamma[None, :, None] * normalized
        out += self.bias[None, :, None]
        out = ACTIVATIONS[self.activation](out)
        c, h, w = self.out_shape
        return out.reshape(n, c, h, w).astype(np.float32)

    def weight_bytes(self) -> int:
        extra = 3 * self.out_channels if self.batch_normalize else 0
        return 4 * (self.weights.size + self.bias.size + extra)

    def workspace_bytes(self) -> int:
        if self.out_shape is None:
            return 0
        _, h, w = self.out_shape
        return 4 * self.in_channels * self.ksize * self.ksize * h * w

    def gemm_shape(self) -> Tuple[int, int, int]:
        """The (m, n, k) of this convolution lowered to gemm per image."""
        if self.out_shape is None:
            raise RuntimeError("layer not configured")
        _, h, w = self.out_shape
        return (self.out_channels, h * w,
                self.in_channels * self.ksize * self.ksize)


class MaxPoolLayer(Layer):
    """Max pooling (darknet [maxpool]), incl. the stride-1 padded form."""

    def __init__(self, size: int = 2, stride: Optional[int] = None):
        super().__init__()
        self.size = size
        self.stride = stride if stride is not None else size

    def configure(self, in_shape: Shape) -> Shape:
        c, h, w = in_shape
        if self.stride == 1:
            # darknet pads to keep the size (yolov3-tiny's last pool).
            self.out_shape = (c, h, w)
        else:
            self.out_shape = (c, h // self.stride, w // self.stride)
        return self.out_shape

    def forward(self, x: np.ndarray, outputs: List[np.ndarray]) -> np.ndarray:
        n, c, h, w = x.shape
        size, stride = self.size, self.stride
        if stride == 1:
            padded = np.pad(x, ((0, 0), (0, 0), (0, size - 1), (0, size - 1)),
                            constant_values=-np.inf)
            stacked = np.stack([
                padded[:, :, dy:dy + h, dx:dx + w]
                for dy in range(size) for dx in range(size)
            ])
            return stacked.max(axis=0)
        out_h, out_w = h // stride, w // stride
        trimmed = x[:, :, :out_h * stride, :out_w * stride]
        windows = trimmed.reshape(n, c, out_h, stride, out_w, stride)
        return windows.max(axis=(3, 5))


class AvgPoolLayer(Layer):
    """Global average pooling (darknet [avgpool])."""

    def configure(self, in_shape: Shape) -> Shape:
        c, _h, _w = in_shape
        self.out_shape = (c, 1, 1)
        return self.out_shape

    def forward(self, x: np.ndarray, outputs: List[np.ndarray]) -> np.ndarray:
        return x.mean(axis=(2, 3), keepdims=True)


class UpsampleLayer(Layer):
    """Nearest-neighbor upsampling (darknet [upsample])."""

    def __init__(self, stride: int = 2):
        super().__init__()
        self.stride = stride

    def configure(self, in_shape: Shape) -> Shape:
        c, h, w = in_shape
        self.out_shape = (c, h * self.stride, w * self.stride)
        return self.out_shape

    def forward(self, x: np.ndarray, outputs: List[np.ndarray]) -> np.ndarray:
        return x.repeat(self.stride, axis=2).repeat(self.stride, axis=3)


class RouteLayer(Layer):
    """Concatenate earlier layer outputs along channels (darknet [route])."""

    def __init__(self, sources: Sequence[int]):
        super().__init__()
        if not sources:
            raise ValueError("route needs at least one source layer")
        self.sources = tuple(sources)
        self._source_shapes: Tuple[Shape, ...] = ()

    def configure_from(self, shapes: Sequence[Shape]) -> Shape:
        self._source_shapes = tuple(shapes)
        base = shapes[0]
        channels = sum(s[0] for s in shapes)
        for shape in shapes[1:]:
            if shape[1:] != base[1:]:
                raise ValueError("route sources have mismatched spatial dims")
        self.out_shape = (channels, base[1], base[2])
        return self.out_shape

    def configure(self, in_shape: Shape) -> Shape:
        raise RuntimeError("route layers are configured by the network")

    def forward(self, x: np.ndarray, outputs: List[np.ndarray]) -> np.ndarray:
        return np.concatenate([outputs[i] for i in self.sources], axis=1)


class ShortcutLayer(Layer):
    """Residual addition with a prior layer (darknet [shortcut])."""

    def __init__(self, source: int, activation: str = "linear"):
        super().__init__()
        self.source = source
        self.activation = activation

    def configure(self, in_shape: Shape) -> Shape:
        self.out_shape = in_shape
        return self.out_shape

    def forward(self, x: np.ndarray, outputs: List[np.ndarray]) -> np.ndarray:
        return ACTIVATIONS[self.activation](x + outputs[self.source])


class ConnectedLayer(Layer):
    """Fully connected layer (darknet [connected])."""

    def __init__(self, in_features: int, out_features: int,
                 activation: str = "linear",
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.activation = activation
        rng = rng or np.random.default_rng(0)
        scale = np.sqrt(1.0 / in_features)
        self.weights = (rng.standard_normal(
            (out_features, in_features)) * scale).astype(np.float32)
        self.bias = np.zeros(out_features, dtype=np.float32)

    def configure(self, in_shape: Shape) -> Shape:
        flat = in_shape[0] * in_shape[1] * in_shape[2]
        if flat != self.in_features:
            raise ValueError(
                f"connected expects {self.in_features} inputs, got {flat}")
        self.out_shape = (self.out_features, 1, 1)
        return self.out_shape

    def forward(self, x: np.ndarray, outputs: List[np.ndarray]) -> np.ndarray:
        n = x.shape[0]
        flat = x.reshape(n, -1)
        out = flat @ self.weights.T + self.bias[None, :]
        out = ACTIVATIONS[self.activation](out)
        return out.reshape(n, self.out_features, 1, 1)

    def weight_bytes(self) -> int:
        return 4 * (self.weights.size + self.bias.size)


class SoftmaxLayer(Layer):
    """Softmax over the flattened feature vector (darknet [softmax])."""

    def configure(self, in_shape: Shape) -> Shape:
        self.out_shape = in_shape
        return self.out_shape

    def forward(self, x: np.ndarray, outputs: List[np.ndarray]) -> np.ndarray:
        n = x.shape[0]
        flat = x.reshape(n, -1)
        shifted = flat - flat.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        out = exp / exp.sum(axis=1, keepdims=True)
        return out.reshape(x.shape)


@dataclass(frozen=True)
class YoloAnchors:
    anchors: Tuple[Tuple[float, float], ...]
    classes: int = 80

    @property
    def per_cell(self) -> int:
        return len(self.anchors) * (5 + self.classes)


class YoloLayer(Layer):
    """YOLO detection head: sigmoid box offsets/objectness/class scores."""

    def __init__(self, anchors: YoloAnchors):
        super().__init__()
        self.anchors = anchors

    def configure(self, in_shape: Shape) -> Shape:
        if in_shape[0] != self.anchors.per_cell:
            raise ValueError(
                f"yolo head expects {self.anchors.per_cell} channels, "
                f"got {in_shape[0]}")
        self.out_shape = in_shape
        return self.out_shape

    def forward(self, x: np.ndarray, outputs: List[np.ndarray]) -> np.ndarray:
        n, _, h, w = x.shape
        boxes = len(self.anchors.anchors)
        attrs = 5 + self.anchors.classes
        out = x.reshape(n, boxes, attrs, h, w).copy()
        # x, y offsets, objectness, and class scores pass through a
        # sigmoid; width/height stay as raw exponents (darknet applies
        # exp() at decode time). Clip for numerical stability in fp32.
        sig = 1.0 / (1.0 + np.exp(-np.clip(out, -60.0, 60.0)))
        out[:, :, 0:2] = sig[:, :, 0:2]
        out[:, :, 4:] = sig[:, :, 4:]
        return out.reshape(n, boxes * attrs, h, w)
