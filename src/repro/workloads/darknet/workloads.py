"""The four darknet ML workloads of Table 2.

The paper drives these networks on ImageNet / COCO inputs. Datasets
are not required for the performance study (layer shapes are
architecture-determined), so inference runs on synthetic image tensors
and the input-size class scales the *batch* until the footprint
(weights + activations + images) fills the class (DESIGN.md records
this substitution).

yolov3's signature behavior (Sec. 4.1.2): its gemm-lowered kernels are
regular and already pipelined, so ``uvm_prefetch`` wins while adding
Async Memcpy only adds control overhead - and the GPU kernel is a few
percent of end-to-end time.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

import numpy as np

from ...sim.program import Program
from ..base import Workload
from ..sizes import SizeClass
from .models import (build_resnet18, build_resnet50, build_yolov3,
                     build_yolov3_tiny)
from .network import Network

# Input resolutions the paper's darknet configs use.
RESNET_INPUT = 256
YOLO_INPUT = 416
# Tiny inference inputs for the functional reference checks.
REFERENCE_INPUT_RESNET = 64
REFERENCE_INPUT_YOLO = 96

MAX_BATCH = 256


class DarknetWorkload(Workload):
    """Shared plumbing for the four network workloads."""

    suite = "darknet"
    domain = "machine learning"
    input_kind = "1d"
    builder: Callable[..., Network] = None  # type: ignore[assignment]
    full_input: int = RESNET_INPUT
    reference_input: int = REFERENCE_INPUT_RESNET

    def network(self, input_size: Optional[int] = None) -> Network:
        size = input_size if input_size is not None else self.full_input
        return type(self).builder(size)

    def batch_for(self, size: SizeClass) -> int:
        net = self.network()
        per_image = (net.activation_bytes_per_image()
                     + 4 * int(np.prod(net.input_shape)))
        available = max(0, size.mem_bytes - net.weight_bytes())
        return int(min(MAX_BATCH, max(1, available // max(per_image, 1))))

    def program(self, size: SizeClass) -> Program:
        net = self.network()
        program = net.build_program(batch=self.batch_for(size))
        # Program names come from the network; keep the registry key.
        return Program(name=self.name, buffers=program.buffers,
                       phases=program.phases)

    def reference(self, rng: Optional[np.random.Generator] = None) -> Dict[str, Any]:
        rng = self._rng(rng)
        net = self.network(self.reference_input)
        images = rng.random((2, *net.input_shape)).astype(np.float32)
        predictions = net.forward(images)
        return {"images": images, "predictions": predictions,
                "out_shape": net.out_shape}


class Resnet18(DarknetWorkload):
    """Residual network with 18 convolution layers (Table 2)."""

    name = "resnet18"
    description = "Residual Network with 18 convolution layers"
    builder = staticmethod(build_resnet18)


class Resnet50(DarknetWorkload):
    """Residual network with 50 convolution layers (Table 2)."""

    name = "resnet50"
    description = "Residual Network with 50 convolution layers"
    builder = staticmethod(build_resnet50)


class Yolov3Tiny(DarknetWorkload):
    """YOLOv3-tiny object detector on COCO-shaped inputs (Table 2)."""

    name = "yolov3-tiny"
    description = "Yolov3-tiny"
    builder = staticmethod(build_yolov3_tiny)
    full_input = YOLO_INPUT
    reference_input = REFERENCE_INPUT_YOLO


class Yolov3(DarknetWorkload):
    """YOLOv3 object detector on COCO-shaped inputs (Table 2)."""

    name = "yolov3"
    description = "Yolov3"
    builder = staticmethod(build_yolov3)
    full_input = YOLO_INPUT
    reference_input = REFERENCE_INPUT_YOLO
