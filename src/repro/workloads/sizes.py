"""Input-size classes (Table 3).

Six size classes from 1 MB to 32 GB memory footprint, with reference
dimensions for 1D vectors, 2D grids, and 3D grids (float32 elements).
Workloads with several buffers scale dimensions down so the *total*
footprint stays in class (e.g. two vectors of 128 K elements for a
Tiny 1D workload), exactly as the paper's Table 3 footnote describes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

FLOAT_BYTES = 4


@dataclass(frozen=True)
class SizeSpec:
    label: str
    mem_bytes: int
    elements_1d: int
    side_2d: int
    side_3d: int


class SizeClass(enum.Enum):
    """The six input-size classes of Table 3."""

    TINY = SizeSpec("tiny", 1 * MIB, 256 * KIB, 512, 64)
    SMALL = SizeSpec("small", 8 * MIB, 2 * MIB, 1 * KIB, 128)
    MEDIUM = SizeSpec("medium", 64 * MIB, 16 * MIB, 4 * KIB, 256)
    LARGE = SizeSpec("large", 512 * MIB, 128 * MIB, 8 * KIB, 512)
    SUPER = SizeSpec("super", 4 * GIB, 1 * GIB, 32 * KIB, 1 * KIB)
    MEGA = SizeSpec("mega", 32 * GIB, 8 * GIB, 64 * KIB, 2 * KIB)

    @property
    def label(self) -> str:
        return self.value.label

    @property
    def mem_bytes(self) -> int:
        return self.value.mem_bytes

    @property
    def elements_1d(self) -> int:
        return self.value.elements_1d

    @property
    def side_2d(self) -> int:
        return self.value.side_2d

    @property
    def side_3d(self) -> int:
        return self.value.side_3d

    def elements_for_buffers(self, buffer_count: int) -> int:
        """1D element count per buffer when the footprint is split.

        Table 3's footnote: with 2 vectors, each Tiny vector holds
        128 K elements so the total stays at 1 MB.
        """
        if buffer_count < 1:
            raise ValueError("buffer_count must be >= 1")
        return max(1, self.elements_1d // buffer_count)

    @classmethod
    def from_label(cls, label: str) -> "SizeClass":
        for size in cls:
            if size.label == label.lower():
                return size
        raise ValueError(
            f"unknown size class {label!r}; expected one of "
            f"{[s.label for s in cls]}"
        )

    @classmethod
    def ordered(cls) -> tuple:
        return (cls.TINY, cls.SMALL, cls.MEDIUM, cls.LARGE, cls.SUPER, cls.MEGA)


# The sizes the paper settles on for its main experiments (Takeaway 1).
STABLE_SIZES = (SizeClass.LARGE, SizeClass.SUPER)
