"""Workload registry: the 21 benchmarks of Table 2.

``MICRO_NAMES`` and ``APP_NAMES`` preserve the orderings of Figures 7
and 8 so the harness regenerates the plots' x-axes verbatim.
"""

from __future__ import annotations

from typing import Dict, List

from .base import Workload
from .darknet import DARKNET_WORKLOADS
from .micro import MICRO_WORKLOADS
from .rodinia import RODINIA_WORKLOADS
from .uvmbench import UVMBENCH_WORKLOADS

_ALL_CLASSES = (MICRO_WORKLOADS + RODINIA_WORKLOADS + UVMBENCH_WORKLOADS
                + DARKNET_WORKLOADS)

_REGISTRY: Dict[str, Workload] = {}
for _cls in _ALL_CLASSES:
    _instance = _cls()
    if _instance.name in _REGISTRY:
        raise RuntimeError(f"duplicate workload name {_instance.name!r}")
    _REGISTRY[_instance.name] = _instance

# Figure 7 x-axis order.
MICRO_NAMES = ("vector_seq", "vector_rand", "saxpy", "gemv", "gemm",
               "2DCONV", "3DCONV")

# Figure 8 x-axis order ("BN" is the paper's label for bayesian).
APP_NAMES = ("pathfinder", "backprop", "lud", "kmeans", "knn", "srad",
             "lavaMD", "resnet50", "yolov3-tiny", "resnet18", "yolov3",
             "bayesian", "nw", "hotspot")

ALL_NAMES = MICRO_NAMES + APP_NAMES

assert set(ALL_NAMES) == set(_REGISTRY), (
    sorted(set(ALL_NAMES) ^ set(_REGISTRY)))


def get_workload(name: str) -> Workload:
    """Look up a workload by its Table 2 name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def all_workloads() -> List[Workload]:
    """Every Table 2 workload, in figure order (micro then apps)."""
    return [_REGISTRY[name] for name in ALL_NAMES]


def micro_workloads() -> List[Workload]:
    """The 7 microbenchmarks, in Fig. 7 order."""
    return [_REGISTRY[name] for name in MICRO_NAMES]


def app_workloads() -> List[Workload]:
    """The 14 real-world applications, in Fig. 8 order."""
    return [_REGISTRY[name] for name in APP_NAMES]


def workloads_by_suite(suite: str) -> List[Workload]:
    """Workloads of one source suite (micro/rodinia/uvmbench/darknet)."""
    matches = [w for w in all_workloads() if w.suite == suite]
    if not matches:
        raise KeyError(f"unknown suite {suite!r}")
    return matches
