"""The benchmark suite: 7 microbenchmarks + 14 real-world applications."""

from .base import Workload, cycles_for_flops, cycles_for_int_ops
from .sizes import STABLE_SIZES, SizeClass

__all__ = [
    "STABLE_SIZES", "SizeClass", "Workload", "cycles_for_flops",
    "cycles_for_int_ops",
]
