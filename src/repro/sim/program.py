"""Workload program representation.

A :class:`Program` is the device-facing description of one benchmark:
the buffers it allocates, and the ordered kernel phases it launches.
Workloads build programs; the execution layer replays them under each
of the five data-transfer configurations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Tuple

from .kernel import KernelDescriptor


class BufferDirection(enum.Enum):
    """How a buffer crosses the host-device boundary."""

    IN = "in"          # host-produced, device-consumed
    OUT = "out"        # device-produced, host-consumed
    INOUT = "inout"    # both
    SCRATCH = "scratch"  # device-only temporary

    @property
    def host_to_device(self) -> bool:
        return self in (BufferDirection.IN, BufferDirection.INOUT)

    @property
    def device_to_host(self) -> bool:
        return self in (BufferDirection.OUT, BufferDirection.INOUT)


@dataclass(frozen=True)
class BufferSpec:
    """One allocation of the workload."""

    name: str
    size_bytes: int
    direction: BufferDirection = BufferDirection.IN
    # Fraction of the buffer the device actually touches (drives UVM
    # demand-migration volume).
    device_touched_fraction: float = 1.0
    # Fraction of a device-produced buffer the host reads afterwards
    # (drives UVM write-back volume; explicit configs copy the whole
    # buffer back regardless, which is the paper's uvm memcpy saving).
    host_read_fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"buffer {self.name!r}: size must be positive")
        if not 0.0 < self.device_touched_fraction <= 1.0:
            raise ValueError(
                f"buffer {self.name!r}: device_touched_fraction outside (0, 1]"
            )
        if not 0.0 <= self.host_read_fraction <= 1.0:
            raise ValueError(
                f"buffer {self.name!r}: host_read_fraction outside [0, 1]"
            )


@dataclass(frozen=True)
class KernelPhase:
    """A kernel launched ``count`` times in sequence.

    ``fresh_data`` marks phases whose every invocation streams new
    data from the host (otherwise repeats hit data already resident
    on the device under UVM). ``host_sync_bytes`` is the intermediate
    device-to-host traffic the *explicit-copy* implementation performs
    across the whole phase (per-iteration result copies in Rodinia's
    standard versions); managed configurations keep that data resident
    and skip it.
    """

    descriptor: KernelDescriptor
    count: int = 1
    fresh_data: bool = False
    host_sync_bytes: int = 0

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(
                f"phase {self.descriptor.name!r}: count must be >= 1"
            )
        if self.host_sync_bytes < 0:
            raise ValueError(
                f"phase {self.descriptor.name!r}: negative host_sync_bytes"
            )


@dataclass(frozen=True)
class Program:
    """A complete benchmark program."""

    name: str
    buffers: Tuple[BufferSpec, ...]
    phases: Tuple[KernelPhase, ...]

    def __post_init__(self) -> None:
        if not self.buffers:
            raise ValueError(f"program {self.name!r} declares no buffers")
        if not self.phases:
            raise ValueError(f"program {self.name!r} declares no kernel phases")
        names = [b.name for b in self.buffers]
        if len(set(names)) != len(names):
            raise ValueError(f"program {self.name!r} has duplicate buffer names")

    # ------------------------------------------------------------------
    # Aggregate sizes
    # ------------------------------------------------------------------
    @property
    def footprint_bytes(self) -> int:
        return sum(b.size_bytes for b in self.buffers)

    @property
    def h2d_bytes(self) -> int:
        """Bytes an explicit-copy configuration ships host-to-device."""
        return sum(b.size_bytes for b in self.buffers if b.direction.host_to_device)

    @property
    def d2h_bytes(self) -> int:
        """Bytes an explicit-copy configuration ships device-to-host."""
        return sum(b.size_bytes for b in self.buffers if b.direction.device_to_host)

    @property
    def managed_input_bytes(self) -> int:
        """Bytes UVM must migrate in (only what the device touches)."""
        return sum(int(b.size_bytes * b.device_touched_fraction)
                   for b in self.buffers if b.direction.host_to_device)

    @property
    def managed_writeback_bytes(self) -> int:
        """Bytes UVM migrates back (only what the host reads)."""
        return sum(int(b.size_bytes * b.host_read_fraction)
                   for b in self.buffers if b.direction.device_to_host)

    @property
    def total_kernel_launches(self) -> int:
        return sum(phase.count for phase in self.phases)

    def descriptors(self) -> List[KernelDescriptor]:
        return [phase.descriptor for phase in self.phases]


def simple_program(name: str, descriptor: KernelDescriptor,
                   in_bytes: int, out_bytes: int,
                   host_read_fraction: float = 0.1,
                   device_touched_fraction: float = 1.0,
                   iterations: int = 1) -> Program:
    """Convenience builder for single-kernel microbenchmarks."""
    buffers = [
        BufferSpec("input", in_bytes, BufferDirection.IN,
                   device_touched_fraction=device_touched_fraction),
        BufferSpec("output", out_bytes, BufferDirection.OUT,
                   host_read_fraction=host_read_fraction),
    ]
    return Program(
        name=name,
        buffers=tuple(buffers),
        phases=(KernelPhase(descriptor, count=iterations),),
    )
