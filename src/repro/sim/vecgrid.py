"""Vectorized whole-grid simulation engine (``--engine vector``).

Two cooperating pieces turn a sensitivity grid from thousands of
event-engine runs into a handful of array programs:

* :class:`AnalyticRuntime` replays a whole program **without the event
  heap**.  Every program the executor runs is strictly serial — one
  process issuing allocations, copies and kernel launches back to back
  — so each ``Resource.stream`` hold is uncontended and its timing is
  the closed form ``end = start + duration`` (bitwise: an uncontended
  train ends on the same float as the monolithic hold it refines, see
  :meth:`repro.sim.engine.Resource.stream`).  The only concurrency in
  the model is the UVM demand-migration train a kernel spawns; the
  runtime keeps those in a pending set and *settles* them in event
  order as the clock passes their end.  The moment anything would
  actually contend — a train ending exactly on another event boundary
  (heap order ambiguous), or more in-flight trains than DMA copy
  engines (FIFO queueing, re-anchored trains) — it raises
  :class:`ContentionDetected` and the caller falls back to the event
  engine, so the analytic path never has to approximate.

* :func:`simulate_phase_grid` batches the pure phase-timing closed
  forms of :mod:`repro.sim.timing` (memory / compute / control /
  barrier stages, fault stalls) and the occupancy integer math of
  :mod:`repro.sim.sm` over NumPy axes, one lane per ``(descriptor,
  flags, carveout, residency)`` cell.  Every array expression mirrors
  the scalar operation order exactly (IEEE-754 elementwise float64 ops
  are identical to Python's), so each lane is **bit-identical** to
  :func:`repro.sim.timing.simulate_kernel` — pinned element-wise by
  ``tests/sim/test_vecgrid_properties.py`` and end-to-end by the
  three-way differential battery.

Results are bit-identical to the ``fast`` engine per the PR 4
differential contract; the classifier only ever changes *how fast* an
answer is produced, never the answer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .calibration import Calibration
from .counters import CounterReport, collect_counters
from .hardware import SystemSpec
from .hostmem import place_host_data
from .kernel import AccessPattern, AsyncMechanism, KernelDescriptor
from .pcie import PcieLink, TransferKind, TransferTiming
from .phasecache import PhaseMemo
from .runtime import CudaRuntime
from .sm import (ASYNC_MLP_FACTOR, BYTES_PER_REGISTER,
                 FULL_UTILIZATION_THREADS, PER_SM_BANDWIDTH_CAP,
                 PER_THREAD_BANDWIDTH)
from .timing import ConfigFlags, KernelExecution
from .trace import merge_intervals

#: A phase cell: the exact :class:`~repro.sim.phasecache.PhaseMemo`
#: key — ``(descriptor, flags, smem_carveout_bytes, resident_fraction)``.
PhaseCell = Tuple[KernelDescriptor, ConfigFlags, int, float]


class ContentionDetected(Exception):
    """The analytic replay met genuine cross-stream contention.

    Raised by :class:`AnalyticRuntime` the moment event order would
    depend on heap arbitration (same-time boundaries, queued copy
    engines).  Callers catch it, restore the RNG state and re-run on
    the event engine — see ``repro.core.execution.execute_program``.
    """


class FamilyRerouted(Exception):
    """A sweep family failed the axis-fusion classifier's proof.

    ``rule`` names the obligation that failed (``shape-mismatch``,
    ``noise-pattern``, ``degenerate-duration``, ``duration-mismatch``,
    ``boundary-tie``, ``engine-queue``, ``schedule-divergence``,
    ``empty``).  Unlike :class:`ContentionDetected` this is a
    *family*-level verdict: the caller replays each member cell
    individually (PR 7 path), which is still bit-identical — rerouting
    only ever changes how fast the answer is produced.
    """

    def __init__(self, rule: str, detail: str = ""):
        super().__init__(detail or rule)
        self.rule = rule


@dataclass
class VecStats:
    """Process-wide accounting for the vector engine."""

    analytic_runs: int = 0    # programs fully replayed analytically
    fallbacks: int = 0        # runs rerouted to the event engine
    cells_batched: int = 0    # phase cells evaluated by array programs
    grids: int = 0            # simulate_phase_grid invocations
    compiled_groups: int = 0  # program structures compiled to op lists
    replayed: int = 0         # specs served by compiled-op replay
    fused_specs: int = 0      # specs served by axis-fused family replay
    families_fused: int = 0   # families that passed the fusion proof
    families_rerouted: int = 0  # families the classifier rejected
    prewarm_dedup: int = 0    # duplicate prewarm cells skipped
    prewarm_reused: int = 0   # prewarm cells already in the memo

    def __post_init__(self) -> None:
        #: reroute counts keyed by the FamilyRerouted rule that fired
        self.reroute_rules: Dict[str, int] = {}

    def reset(self) -> None:
        self.analytic_runs = 0
        self.fallbacks = 0
        self.cells_batched = 0
        self.grids = 0
        self.compiled_groups = 0
        self.replayed = 0
        self.fused_specs = 0
        self.families_fused = 0
        self.families_rerouted = 0
        self.prewarm_dedup = 0
        self.prewarm_reused = 0
        self.reroute_rules = {}


_STATS = VecStats()


def vec_stats() -> VecStats:
    """The process-wide :class:`VecStats` (tests and sweep summaries)."""
    return _STATS


class _AnalyticClock:
    """Bare simulation clock standing in for an ``Environment``.

    The analytic runtime never schedules events, so all it needs from
    its environment is the ``now`` attribute every primitive reads and
    advances.  Anything else (``process``, ``run``...) is deliberately
    absent: reaching for it is a bug, not a fallback.
    """

    def __init__(self) -> None:
        self.now: float = 0.0


class AnalyticRuntime(CudaRuntime):
    """Event-free replay of a serial program, bit-identical or bust.

    Overrides the four engine hooks of :class:`CudaRuntime` with
    closed-form equivalents.  The overrides stay *generators* (via an
    unreachable ``yield``) so the unmodified base-class process
    fragments (``malloc_*``, ``memcpy_*``, ``launch*``) drive them with
    ``yield from`` exactly as they drive the event engine — same code,
    same call order, same RNG draw order.
    """

    def __init__(self, system: SystemSpec, calib: Calibration,
                 rng: np.random.Generator,
                 footprint_bytes: int = 0,
                 smem_carveout_bytes: Optional[int] = None,
                 kernel_sim=None):
        super().__init__(system, calib, rng,
                         footprint_bytes=footprint_bytes,
                         smem_carveout_bytes=smem_carveout_bytes,
                         env=_AnalyticClock(),
                         kernel_sim=kernel_sim)
        #: in-flight demand-migration trains: (label, start, end),
        #: settled in end order as the clock passes them.
        self._pending: List[Tuple[str, float, float]] = []

    # ------------------------------------------------------------------
    # Pending-migration settlement (the contention classifier)
    # ------------------------------------------------------------------
    def _settle_through(self, boundary: float) -> None:
        """Complete every pending train that ends strictly before
        ``boundary``, in completion order.

        This is where the event heap's ordering is replayed: a train
        ending at time *t* draws its measurement noise and records its
        timeline event before anything that happens at a later time.
        A train ending *exactly at* ``boundary`` (or exactly with
        another train) would be ordered by heap sequence numbers in the
        event engine — ambiguous here, so it is contention by
        definition.
        """
        if not self._pending:
            return
        self._pending.sort(key=lambda entry: entry[2])
        while self._pending:
            label, start, end = self._pending[0]
            if end > boundary:
                break
            if end == boundary or (len(self._pending) > 1
                                   and end == self._pending[1][2]):
                raise ContentionDetected(
                    f"migration train {label!r} ends on a same-time event "
                    "boundary; completion order would depend on heap "
                    "sequence numbers")
            self._pending.pop(0)
            noisy_end = start + self._noisy(end - start,
                                            self.calib.noise.memcpy_sigma)
            self.timeline.record(label, "memcpy", start, max(noisy_end, start))

    def _require_free_engine(self, what: str) -> None:
        """A new link stream next to the pending trains must not queue."""
        if len(self._pending) + 1 > self.system.link.copy_engines:
            raise ContentionDetected(
                f"{what} would queue for a DMA copy engine "
                f"({len(self._pending)} trains already in flight, "
                f"{self.system.link.copy_engines} engines)")

    # ------------------------------------------------------------------
    # Engine hooks (closed-form replacements; still generators so the
    # base class' ``yield from`` call sites work unchanged)
    # ------------------------------------------------------------------
    def _host_op(self, name: str, duration_ns: float,
                 category: str = "allocation"):
        start = self.env.now
        end = start + duration_ns
        self._settle_through(end)
        self.env.now = end
        self.timeline.record(name, category, start, end)
        return
        yield  # pragma: no cover - keeps this a generator for yield from

    def _transfer(self, label: str, kind: TransferKind, num_bytes: int,
                  chunks: Optional[int] = None):
        if num_bytes <= 0:
            return None
        self._require_free_engine(f"transfer {label!r}")
        duration = self.link.duration_ns(kind, num_bytes,
                                         self.placement.time_multiplier)
        start = self.env.now
        end = start + duration
        self._settle_through(end)
        self.env.now = end
        noisy_end = start + self._noisy(self.env.now - start,
                                        self.calib.noise.memcpy_sigma)
        self.timeline.record(label, "memcpy", start, max(noisy_end, start))
        return TransferTiming(kind=kind, bytes=num_bytes, duration_ns=duration)
        yield  # pragma: no cover - keeps this a generator for yield from

    def _spawn_migration(self, desc: KernelDescriptor, migrate_bytes: int,
                         batches: int) -> None:
        self._require_free_engine(f"migration for kernel {desc.name!r}")
        duration = self.link.duration_ns(TransferKind.MIGRATE_H2D,
                                         migrate_bytes,
                                         self.placement.time_multiplier)
        start = self.env.now
        self._pending.append((f"uvm migrate:{desc.name}", start,
                              start + duration))

    def _hold_gpu(self, label: str, duration: float):
        start = self.env.now
        end = start + duration
        self._settle_through(end)
        self.env.now = end
        self.timeline.record(label, "gpu_kernel", start, end)
        return
        yield  # pragma: no cover - keeps this a generator for yield from

    # ------------------------------------------------------------------
    # Driver
    # ------------------------------------------------------------------
    def run(self, process) -> None:
        """Exhaust the program generator inline.

        With every engine hook closed-form, a serial program never
        yields a live event; if it somehow does, the analytic premise
        is broken and we bail rather than guess.
        """
        try:
            for _event in process:
                raise ContentionDetected(
                    "program suspended on a live event; analytic replay "
                    "cannot order it")
        finally:
            process.close()
        # Trains that outlive the program drain in completion order,
        # exactly as Environment.run() drains the heap.
        self._settle_through(math.inf)


# ----------------------------------------------------------------------
# Batched closed forms
# ----------------------------------------------------------------------
_PATTERNS = tuple(AccessPattern)
_PATTERN_INDEX = {pattern: index for index, pattern in enumerate(_PATTERNS)}
_INT_UNLIMITED = np.iinfo(np.int64).max


def simulate_phase_grid(cells: Sequence[PhaseCell], system: SystemSpec,
                        calib: Calibration) -> List[KernelExecution]:
    """Evaluate many kernel-phase cells as one array program.

    Each lane mirrors :func:`repro.sim.timing.simulate_kernel` exactly:
    identical operation order, identical branch structure (branches
    become per-lane masks), float64 throughout — so every returned
    :class:`KernelExecution` equals the scalar result *bitwise*.
    Counters stay scalar per cell (pure integer bookkeeping off the
    hot path).
    """
    if not cells:
        return []
    gpu = system.gpu
    kc = calib.kernel
    uvm = system.uvm

    descs = [cell[0] for cell in cells]
    flag_list = [cell[1] for cell in cells]

    resident = np.array([cell[3] for cell in cells], dtype=np.float64)
    if np.any((resident < 0.0) | (resident > 1.0)):
        bad = float(resident[(resident < 0.0) | (resident > 1.0)][0])
        raise ValueError(f"resident_fraction {bad} outside [0, 1]")

    # --- per-cell attribute extraction (pure descriptor math; the
    # values are identical however they are computed) -----------------
    blocks = np.array([d.blocks for d in descs], dtype=np.int64)
    threads = np.array([d.threads_per_block for d in descs], dtype=np.int64)
    tiles = np.array([d.tiles_per_block for d in descs], dtype=np.int64)
    tile_bytes = np.array([d.tile_bytes for d in descs], dtype=np.int64)
    smem_static = np.array([d.smem_static_bytes for d in descs],
                           dtype=np.int64)
    registers = np.array([d.registers_per_thread for d in descs],
                         dtype=np.int64)
    write_bytes = np.array([d.write_bytes for d in descs], dtype=np.int64)
    reuse = np.array([d.reuse for d in descs], dtype=np.float64)
    touched = np.array([d.touched_fraction for d in descs], dtype=np.float64)
    footprint = np.array([d.footprint_bytes for d in descs], dtype=np.float64)
    compute_cycles = np.array([d.compute_cycles for d in descs],
                              dtype=np.float64)
    copies = np.array([d.async_copies() * d.total_tiles for d in descs],
                      dtype=np.int64)
    total_tiles = np.array([d.total_tiles for d in descs], dtype=np.int64)
    sync_overlap = np.array([d.sync_overlap for d in descs], dtype=np.float64)
    accuracy = np.array([d.derived_prefetch_accuracy() for d in descs],
                        dtype=np.float64)
    per_copy = np.array(
        [d.async_control_cycles_per_copy
         if d.async_control_cycles_per_copy is not None
         else kc.async_control_cycles_per_copy for d in descs],
        dtype=np.float64)
    serializes = np.array([d.async_serializes for d in descs], dtype=bool)
    arrive_wait = np.array(
        [d.async_mechanism is AsyncMechanism.ARRIVE_WAIT for d in descs],
        dtype=bool)
    has_override = np.array(
        [d.bandwidth_efficiency is not None for d in descs], dtype=bool)
    override = np.array(
        [d.bandwidth_efficiency if d.bandwidth_efficiency is not None
         else 0.0 for d in descs], dtype=np.float64)
    pattern_idx = np.array([_PATTERN_INDEX[d.access_pattern] for d in descs],
                           dtype=np.int64)
    wpattern_idx = np.array(
        [_PATTERN_INDEX[d.effective_write_pattern] for d in descs],
        dtype=np.int64)
    pf_friendly = np.array(
        [d.access_pattern.prefetch_friendly for d in descs], dtype=bool)
    wpf_friendly = np.array(
        [d.effective_write_pattern.prefetch_friendly for d in descs],
        dtype=bool)

    use_async = np.array([fl.use_async for fl in flag_list], dtype=bool)
    managed = np.array([fl.managed for fl in flag_list], dtype=bool)
    prefetched = np.array([fl.prefetched for fl in flag_list], dtype=bool)
    carveout = np.array([cell[2] for cell in cells], dtype=np.int64)
    if np.any(managed & ((carveout < 0)
                         | (carveout > gpu.max_shared_mem_bytes))):
        bad = int(carveout[managed & ((carveout < 0)
                                      | (carveout > gpu.max_shared_mem_bytes))][0])
        raise ValueError(f"shared-memory carveout {bad} outside "
                         f"[0, {gpu.max_shared_mem_bytes}]")

    # --- occupancy_for: integer limit math, exact in int64 ------------
    limit = np.minimum(gpu.max_threads_per_sm // threads,
                       np.int64(gpu.max_blocks_per_sm))
    buffers = np.where(use_async, 2, 1).astype(np.int64)
    need_smem = smem_static + buffers * tile_bytes
    limit = np.minimum(limit, np.where(
        need_smem > 0, carveout // np.maximum(need_smem, 1), _INT_UNLIMITED))
    reg_bytes = registers * threads * BYTES_PER_REGISTER
    limit = np.minimum(limit, np.where(
        reg_bytes > 0, gpu.register_file_bytes // np.maximum(reg_bytes, 1),
        _INT_UNLIMITED))
    blocks_per_sm = np.maximum(1, limit)
    active_sms = np.minimum(np.int64(gpu.sm_count), blocks)
    resident_blocks = np.minimum(
        blocks_per_sm, np.ceil(blocks / active_sms).astype(np.int64))
    resident_threads = resident_blocks * threads
    occ_fraction = (np.minimum(1.0, resident_threads / gpu.max_threads_per_sm)
                    * (active_sms / gpu.sm_count))
    throughput = np.minimum(1.0, resident_threads / FULL_UTILIZATION_THREADS)

    # --- _memory_time_ns ----------------------------------------------
    eff_lookup = np.array([kc.pattern_efficiency[p] for p in _PATTERNS],
                          dtype=np.float64)
    thread_limited = ~has_override
    efficiency = np.where(has_override, override, eff_lookup[pattern_idx])
    roofline = gpu.hbm_bandwidth * efficiency
    per_thread = np.where(use_async,
                          PER_THREAD_BANDWIDTH * ASYNC_MLP_FACTOR,
                          PER_THREAD_BANDWIDTH)
    per_sm = np.minimum(PER_SM_BANDWIDTH_CAP, resident_threads * per_thread)
    bandwidth = np.where(thread_limited,
                         np.minimum(roofline, active_sms * per_sm), roofline)
    bandwidth = np.where(use_async, bandwidth * kc.async_bandwidth_gain,
                         bandwidth)
    irregular = pattern_idx == _PATTERN_INDEX[AccessPattern.IRREGULAR]
    bandwidth = np.where(use_async & irregular,
                         bandwidth * kc.async_irregular_gain, bandwidth)

    warm_l2 = managed & prefetched & pf_friendly
    strided = pattern_idx == _PATTERN_INDEX[AccessPattern.STRIDED]
    strided_gain = (1.0 + (kc.prefetch_l2_gain - 1.0)
                    * kc.strided_prefetch_retention)
    gain = np.where(strided, strided_gain, kc.prefetch_l2_gain)
    gain = 1.0 + (gain - 1.0) * accuracy
    bandwidth = np.where(warm_l2, bandwidth * gain, bandwidth)

    load_bytes = blocks * tiles * tile_bytes
    unique = load_bytes / reuse
    reused = load_bytes - unique
    load_ns = unique / bandwidth * 1e9
    load_ns = np.where(
        reused > 0,
        load_ns + reused / (bandwidth * kc.cached_reuse_bandwidth_factor) * 1e9,
        load_ns)

    write_eff = np.where(has_override, override, eff_lookup[wpattern_idx])
    store_roofline = gpu.hbm_bandwidth * write_eff
    store_per_sm = np.minimum(PER_SM_BANDWIDTH_CAP,
                              resident_threads * PER_THREAD_BANDWIDTH)
    store_bw = np.where(thread_limited,
                        np.minimum(store_roofline, active_sms * store_per_sm),
                        store_roofline)
    store_bw = np.where(warm_l2 & wpf_friendly,
                        store_bw * kc.prefetch_l2_gain, store_bw)
    load_ns = np.where(write_bytes != 0,
                       load_ns + write_bytes / store_bw * 1e9, load_ns)

    # --- compute / control / barrier stages ---------------------------
    denom = active_sms * np.maximum(throughput, 1e-9)
    compute_ns = compute_cycles / denom * gpu.clock_ns
    control_ns = (copies * per_copy) / denom * gpu.clock_ns
    barrier_ns = np.where(
        arrive_wait,
        (total_tiles * kc.arrive_wait_extra_cycles_per_tile)
        / denom * gpu.clock_ns,
        0.0)

    # --- core assembly (async overlap vs sync staging) ----------------
    compute_async = compute_ns + control_ns
    fits = (smem_static + 2 * tile_bytes) <= carveout
    fill = load_ns / tiles * kc.async_pipeline_fill_tiles
    core_async = np.where(fits & ~serializes,
                          np.maximum(load_ns, compute_async) + fill,
                          load_ns + compute_async) + barrier_ns
    overlapped = sync_overlap * np.minimum(load_ns, compute_ns)
    core_sync = load_ns + compute_ns - overlapped
    core = np.where(use_async, core_async, core_sync)
    compute_out = np.where(use_async, compute_async, compute_ns)

    # --- UVM effects (managed lanes only) ------------------------------
    l1_reference = gpu.l1_bytes(gpu.default_shared_mem_bytes)
    l1_now = gpu.unified_l1_bytes - carveout
    pressure = np.maximum(0.0, 1.0 - l1_now / l1_reference)
    core_managed = core * (1.0 + kc.uvm_page_walk_overhead)
    core_managed = core_managed + kc.uvm_launch_sync_ns
    core_managed = core_managed * (1.0 + kc.uvm_l1_pressure * pressure)
    missing = footprint * touched * (1.0 - resident)
    footprint_ns = missing / bandwidth * 1e9
    core_managed = core_managed + ((kc.uvm_demand_kernel_multiplier - 1.0)
                                   * footprint_ns)
    core = np.where(managed, core_managed, core)

    # --- _fault_stalls (shared batch math with repro.sim.uvm) ----------
    has_fault = managed & (missing > 0)
    mig_blocks = np.ceil(missing / uvm.migration_block_bytes)
    batches = np.where(has_fault,
                       np.ceil(mig_blocks / uvm.fault_batch_size), 0.0)
    stall_ns = np.where(has_fault,
                        batches * (uvm.fault_service_ns + uvm.fault_stall_ns),
                        0.0)
    demand_bytes = np.where(has_fault, missing, 0.0)

    duration = kc.launch_ns + core + stall_ns

    executions: List[KernelExecution] = []
    for index, (desc, flags, cell_carveout, _res) in enumerate(cells):
        occupancy = float(occ_fraction[index])
        counters = collect_counters(
            desc, gpu, calib, cell_carveout,
            use_async=flags.use_async, managed=flags.managed,
            prefetched=flags.prefetched, occupancy=occupancy)
        executions.append(KernelExecution(
            name=desc.name,
            duration_ns=float(duration[index]),
            load_ns=float(load_ns[index]),
            compute_ns=float(compute_out[index]),
            fault_stall_ns=float(stall_ns[index]),
            fault_batches=int(batches[index]),
            demand_migrated_bytes=int(demand_bytes[index]),
            occupancy_fraction=occupancy,
            counters=counters,
        ))
    _STATS.grids += 1
    _STATS.cells_batched += len(cells)
    return executions


def prewarm_phase_memo(memo: PhaseMemo,
                       cells: Sequence[PhaseCell]) -> int:
    """Batch-evaluate every not-yet-memoized cell and seed ``memo``.

    Deduplicates while preserving first-seen order, evaluates the
    missing cells with :func:`simulate_phase_grid`, and seeds the memo
    so subsequent runs hit without ever touching the scalar simulator.
    Returns the number of cells evaluated.  Seeded values are bitwise
    equal to what a miss would have computed, so this is purely a
    scheduling optimization — cells the enumeration missed simply fall
    back to scalar misses.

    Family members across sweep groups routinely share phase
    signatures (pageable/pinned differ only in transfer kinds, not in
    kernel cells), so each unique cell is hashed exactly once here and
    the saved work is accounted in :class:`VecStats`: ``prewarm_dedup``
    counts duplicate occurrences skipped, ``prewarm_reused`` counts
    unique cells the memo already held.
    """
    seen = set()
    fresh = []
    duplicates = 0
    reused = 0
    for cell in cells:
        if cell in seen:
            duplicates += 1
            continue
        seen.add(cell)
        if cell in memo:
            reused += 1
        else:
            fresh.append(cell)
    _STATS.prewarm_dedup += duplicates
    _STATS.prewarm_reused += reused
    if not fresh:
        return 0
    for cell, execution in zip(fresh,
                               simulate_phase_grid(fresh, memo.system,
                                                   memo.calib)):
        memo.seed(cell, execution)
    return len(fresh)


# ----------------------------------------------------------------------
# Whole-grid batching: compile once per program structure, replay per
# spec.  A sensitivity grid re-runs the same (program, mode, carveout)
# structure for every iteration and seed; the op *sequence* and every
# pre-noise duration are identical across those runs (noise multiplies
# recorded durations, it never reorders operations).  So the grid
# runner compiles the structure once — by driving the real process
# generators through a recording runtime, never by re-deriving the
# logic — and then replays the compiled ops per spec with only that
# spec's RNG draws, through the same settlement classifier as
# :class:`AnalyticRuntime`.
# ----------------------------------------------------------------------
#: Compiled opcodes (plain tuples keep the replay loop allocation-free).
_OP_HOST = 0     # (op, label, category, base_ns, sigma, charges_jitter)
_OP_XFER = 1     # (op, label, kind, bytes, duration_at_unit_multiplier)
_OP_SPAWN = 2    # (op, label, bytes, duration_at_unit_multiplier)
_OP_KERNEL = 3   # (op, label, total_ns, sigma)


@dataclass
class CompiledProgram:
    """One program structure lowered to a replayable op list.

    Everything here is seed-independent: op order, pre-noise
    durations (at host-placement multiplier 1.0), the aggregated
    counters and occupancy.  ``counters`` is shared by every
    :class:`~repro.core.results.RunResult` replayed from this compile —
    safe because results treat counter reports as immutable.
    """

    name: str
    footprint_bytes: int
    ops: Tuple
    counters: CounterReport
    occupancy: float
    draws: int             # upper bound of standard-normal draws/replay
    link: PcieLink         # duration math (pure; env never touched)
    copy_engines: int
    #: one (flags, count, resident_first, resident_rest) per
    #: ``launch_repeated`` call, in program order — the inputs a
    #: structure-equal sibling cell needs to re-derive its kernel and
    #: spawn ops without re-driving the program generators (see
    #: ``repro.core.execution.derive_compiled``).
    launches: Tuple = ()


class _NoDrawRng:
    """Compile-time RNG stand-in: any draw is a bug, not a fallback."""

    def __getattr__(self, name: str):
        raise RuntimeError(
            f"compile-time RNG draw via {name!r}; compiled programs must "
            "be seed-independent")


class CompilerRuntime(CudaRuntime):
    """Records a program's op sequence instead of executing it.

    The real process generators (``repro.core.execution``) drive this
    runtime exactly as they drive the event engine, so the compiled op
    list cannot drift from execution semantics.  ``_noisy`` and
    ``_alloc_duration`` latch the pre-noise duration and sigma instead
    of drawing; the engine hooks emit ops.  The RNG is never touched —
    placement, jitter and measurement noise are all replay-time.
    """

    def __init__(self, system: SystemSpec, calib: Calibration,
                 smem_carveout_bytes: Optional[int] = None,
                 kernel_sim=None):
        # footprint_bytes=0 keeps the constructor's placement draw-free;
        # the replay draws the real placement per spec.
        super().__init__(system, calib, _NoDrawRng(),
                         footprint_bytes=0,
                         smem_carveout_bytes=smem_carveout_bytes,
                         env=_AnalyticClock(),
                         kernel_sim=kernel_sim)
        self.ops: List[Tuple] = []
        self.launches: List[Tuple] = []
        self.draws = 0
        self._latch: Optional[Tuple[float, float, bool]] = None

    # -- noise latches (no draws at compile time) ----------------------
    def _noisy(self, value_ns: float, sigma: float) -> float:
        self._latch = (value_ns, sigma, False)
        return value_ns

    def _alloc_duration(self, base_ns: float, per_byte_ns: float,
                        num_bytes: int) -> float:
        # Mirrors CudaRuntime._alloc_duration with the jitter draw
        # deferred to replay time (flag recorded instead).
        duration = base_ns + per_byte_ns * num_bytes
        jitter = not self._jitter_charged
        self._jitter_charged = True
        noise = self.calib.noise
        mib = max(1.0, num_bytes / (1024.0 * 1024.0))
        sigma = noise.alloc_sigma + noise.small_alloc_sigma / mib ** 0.5
        self._latch = (duration, sigma, jitter)
        return duration

    def _take_latch(self, duration_ns: float,
                    what: str) -> Tuple[float, float, bool]:
        latch = self._latch
        self._latch = None
        if latch is None or latch[0] != duration_ns:
            raise RuntimeError(
                f"compile latch mismatch at {what}: the duration did not "
                "come from this runtime's noise path")
        return latch

    # -- engine hooks: emit ops ----------------------------------------
    def _host_op(self, name: str, duration_ns: float,
                 category: str = "allocation"):
        base, sigma, jitter = self._take_latch(duration_ns, name)
        self.ops.append((_OP_HOST, name, category, base, sigma, jitter))
        self.draws += 1 + (1 if jitter else 0)
        return
        yield  # pragma: no cover - keeps this a generator for yield from

    def _transfer(self, label: str, kind: TransferKind, num_bytes: int,
                  chunks: Optional[int] = None):
        if num_bytes <= 0:
            return None
        duration = self.link.duration_ns(kind, num_bytes, 1.0)
        self.ops.append((_OP_XFER, label, kind, num_bytes, duration))
        self.draws += 1
        return TransferTiming(kind=kind, bytes=num_bytes,
                              duration_ns=duration)
        yield  # pragma: no cover - keeps this a generator for yield from

    def _spawn_migration(self, desc: KernelDescriptor, migrate_bytes: int,
                         batches: int) -> None:
        duration = self.link.duration_ns(TransferKind.MIGRATE_H2D,
                                         migrate_bytes, 1.0)
        self.ops.append((_OP_SPAWN, f"uvm migrate:{desc.name}",
                         migrate_bytes, duration))
        self.draws += 1  # the train's settlement draw

    def _hold_gpu(self, label: str, duration: float):
        total_ns, sigma, _ = self._take_latch(duration, label)
        self.ops.append((_OP_KERNEL, label, total_ns, sigma))
        self.draws += 1
        return
        yield  # pragma: no cover - keeps this a generator for yield from

    def launch_repeated(self, desc: KernelDescriptor, flags: ConfigFlags,
                        count: int, resident_first: float = 1.0,
                        resident_rest: float = 1.0):
        # Record the launch inputs so sibling cells of a fused family
        # can re-derive their kernel/spawn ops (derive_compiled) without
        # re-driving the program generators.
        self.launches.append((flags, count, resident_first, resident_rest))
        return (yield from super().launch_repeated(
            desc, flags, count, resident_first, resident_rest))

    def run(self, process) -> None:
        try:
            for _event in process:
                raise RuntimeError(
                    "program suspended on a live event during compilation")
        finally:
            process.close()

    def finish(self, program) -> CompiledProgram:
        """Package the recorded ops once the program generator drained."""
        occupancy = self.counters.mean_occupancy()
        compiled = CompiledProgram(
            name=program.name,
            footprint_bytes=program.footprint_bytes,
            ops=tuple(self.ops),
            counters=self.counters,
            occupancy=occupancy,
            draws=self.draws,
            link=self.link,
            copy_engines=self.system.link.copy_engines,
            launches=tuple(self.launches),
        )
        _STATS.compiled_groups += 1
        return compiled


def replay_compiled(compiled: CompiledProgram, rng: np.random.Generator,
                    system: SystemSpec, calib: Calibration
                    ) -> Tuple[float, float, float, float, float]:
    """One spec's measurements from a compiled program.

    Bit-identical to running the spec through :class:`AnalyticRuntime`
    (and therefore to the event engines): identical draw order —
    placement first, then batched standard normals consumed in op order
    (``rng.standard_normal(n)`` yields the same stream as ``n`` scalar
    draws, ``lognormal(0, s)`` equals ``exp(s*z)`` and ``normal(0, s)``
    equals ``0.0 + s*z`` bitwise) — identical float expressions,
    identical settlement, and the same :class:`ContentionDetected`
    bail-outs.  Returns ``(alloc_ns, memcpy_ns, kernel_ns, wall_ns,
    gpu_busy_fraction)``.

    The generator may be advanced *past* what the per-spec path would
    consume (the draw batch is an upper bound); callers that need the
    exact post-run stream must not reuse ``rng`` afterwards.
    """
    noise = calib.noise
    placement = place_host_data(compiled.footprint_bytes, system.cpu,
                                noise, rng)
    multiplier = placement.time_multiplier
    unit = multiplier == 1.0
    z = rng.standard_normal(compiled.draws).tolist() if compiled.draws \
        else []
    cursor = 0
    total_draws = len(z)
    os_jitter = noise.os_jitter_ns
    memcpy_sigma = noise.memcpy_sigma
    duration_ns = compiled.link.duration_ns
    copy_engines = compiled.copy_engines

    now = 0.0
    pending: List[Tuple[str, float, float]] = []
    alloc_ns = 0.0
    memcpy_ns = 0.0
    kernel_ns = 0.0
    gpu_spans: List[Tuple[float, float]] = []
    min_start = math.inf
    max_end = -math.inf

    def settle_through(boundary: float) -> None:
        nonlocal memcpy_ns, min_start, max_end, cursor
        if not pending:
            return
        pending.sort(key=lambda entry: entry[2])
        while pending:
            label, start, end = pending[0]
            if end > boundary:
                break
            if end == boundary or (len(pending) > 1
                                   and end == pending[1][2]):
                raise ContentionDetected(
                    f"migration train {label!r} ends on a same-time event "
                    "boundary; completion order would depend on heap "
                    "sequence numbers")
            pending.pop(0)
            value = end - start
            if memcpy_sigma > 0 and value > 0:
                if cursor < total_draws:
                    draw = z[cursor]
                else:  # pragma: no cover - draw-count upper bound holds
                    draw = float(rng.standard_normal())
                cursor += 1
                value = value * math.exp(memcpy_sigma * draw)
            noisy_end = start + value
            event_end = max(noisy_end, start)
            memcpy_ns += event_end - start
            if start < min_start:
                min_start = start
            if event_end > max_end:
                max_end = event_end

    for op in compiled.ops:
        code = op[0]
        if code == _OP_HOST:
            _, _label, category, duration, sigma, jitter = op
            if jitter:
                if cursor < total_draws:
                    draw = z[cursor]
                else:  # pragma: no cover - draw-count upper bound holds
                    draw = float(rng.standard_normal())
                cursor += 1
                duration = duration + abs(0.0 + os_jitter * draw)
            if sigma > 0 and duration > 0:
                if cursor < total_draws:
                    draw = z[cursor]
                else:  # pragma: no cover - draw-count upper bound holds
                    draw = float(rng.standard_normal())
                cursor += 1
                duration = duration * math.exp(sigma * draw)
            start = now
            end = start + duration
            settle_through(end)
            now = end
            alloc_ns += end - start
            if start < min_start:
                min_start = start
            if end > max_end:
                max_end = end
        elif code == _OP_XFER:
            if len(pending) + 1 > copy_engines:
                raise ContentionDetected(
                    f"transfer {op[1]!r} would queue for a DMA copy engine "
                    f"({len(pending)} trains already in flight, "
                    f"{copy_engines} engines)")
            duration = op[4] if unit else duration_ns(op[2], op[3],
                                                      multiplier)
            start = now
            end = start + duration
            settle_through(end)
            now = end
            value = end - start
            if memcpy_sigma > 0 and value > 0:
                if cursor < total_draws:
                    draw = z[cursor]
                else:  # pragma: no cover - draw-count upper bound holds
                    draw = float(rng.standard_normal())
                cursor += 1
                value = value * math.exp(memcpy_sigma * draw)
            noisy_end = start + value
            event_end = max(noisy_end, start)
            memcpy_ns += event_end - start
            if start < min_start:
                min_start = start
            if event_end > max_end:
                max_end = event_end
        elif code == _OP_SPAWN:
            if len(pending) + 1 > copy_engines:
                raise ContentionDetected(
                    f"migration {op[1]!r} would queue for a DMA copy engine "
                    f"({len(pending)} trains already in flight, "
                    f"{copy_engines} engines)")
            duration = op[3] if unit else duration_ns(
                TransferKind.MIGRATE_H2D, op[2], multiplier)
            pending.append((op[1], now, now + duration))
        else:  # _OP_KERNEL
            _, _label, duration, sigma = op
            if sigma > 0 and duration > 0:
                if cursor < total_draws:
                    draw = z[cursor]
                else:  # pragma: no cover - draw-count upper bound holds
                    draw = float(rng.standard_normal())
                cursor += 1
                duration = duration * math.exp(sigma * draw)
            start = now
            end = start + duration
            settle_through(end)
            now = end
            kernel_ns += end - start
            gpu_spans.append((start, end))
            if start < min_start:
                min_start = start
            if end > max_end:
                max_end = end

    settle_through(math.inf)

    if max_end < min_start:  # no events at all
        wall = 0.0
    else:
        wall = max_end - min_start
    if wall > 0 and gpu_spans:
        busy = sum(end - start
                   for start, end in merge_intervals(gpu_spans))
        gpu_busy = busy / wall
    else:
        gpu_busy = 0.0
    _STATS.replayed += 1
    _STATS.analytic_runs += 1
    return (alloc_ns, memcpy_ns, kernel_ns, wall, gpu_busy)


# ----------------------------------------------------------------------
# Axis fusion: compile a whole sweep *family* — every cell sharing a
# ``(workload, mode)``, varying along one sensitivity axis (threads /
# blocks / carveout / size) — into one 2-D array program, evaluated as
# one NumPy call per op over a ``[spec, op]`` matrix.
#
# The family-level contention classifier works in two stages:
#
# 1. **Static proof at compile time** (``compile_family``): every cell
#    must share the op-code sequence, draw pattern and copy-engine
#    budget, and the *canonical schedule* — which op boundary each
#    migration train settles at, computed noise-free at host-placement
#    multiplier 1.0 — must be identical across the whole axis.  One
#    representative proves the shape; equality across the edge cells
#    extends the proof to the family (the closed forms are monotone in
#    the axis coordinate, so a schedule that holds at both ends and
#    never changes in between holds everywhere).  Any violated
#    obligation raises :class:`FamilyRerouted` naming the rule.
#
# 2. **Per-spec residual guards at replay time** (``replay_family``):
#    noise, OS jitter and the per-spec host-placement multiplier can
#    still perturb a realized schedule off the canonical one.  Each
#    guard is the exact vectorized form of a branch the scalar replay
#    takes (train settles strictly inside its canonical window, no
#    same-time boundaries, every conditional noise draw actually taken,
#    GPU busy-groups strictly separated).  Specs that fail any guard
#    are *invalid* in the returned mask and the caller replays them
#    per-cell — the family result is used only where it is provably
#    the bitwise-identical answer.
# ----------------------------------------------------------------------


def _exp_map(values: np.ndarray) -> np.ndarray:
    """Elementwise ``math.exp`` over a 1-D array (libm, not ``np.exp``).

    The scalar engines draw measurement noise through ``math.exp``;
    NumPy's SIMD exp kernels may differ from libm in the last ulp and
    pick different code paths per CPU, which would silently break the
    bitwise-identity contract.  Routing every noise factor through the
    same libm call the scalar path makes keeps the fused replay exact.
    """
    return np.fromiter(map(math.exp, values.tolist()),
                       dtype=np.float64, count=values.shape[0])


def _canonical_schedule(ops: Tuple, copy_engines: int
                        ) -> Tuple[List[List[int]], List[int]]:
    """The noise-free settlement schedule of one compiled cell.

    Walks the op list with all noise at zero and the host-placement
    multiplier at 1.0 and records, for every migration train, the op
    whose boundary settles it (``settles[j]`` lists spawn-op indices in
    settlement order) or that it drains after the last op (``drains``).
    Raises :class:`FamilyRerouted` where the scalar replay would raise
    :class:`ContentionDetected` (same-time boundaries, queued engines):
    a family whose *canonical* schedule already contends has nothing to
    fuse.
    """
    now = 0.0
    pending: List[Tuple[float, int]] = []
    settles: List[List[int]] = [[] for _ in ops]
    drains: List[int] = []

    def settle(boundary: float, sink: List[int]) -> None:
        pending.sort()
        while pending:
            end, idx = pending[0]
            if end > boundary:
                break
            if end == boundary or (len(pending) > 1
                                   and end == pending[1][0]):
                raise FamilyRerouted(
                    "boundary-tie",
                    "canonical schedule has a same-time event boundary")
            pending.pop(0)
            sink.append(idx)

    for j, op in enumerate(ops):
        code = op[0]
        if code == _OP_SPAWN:
            if len(pending) + 1 > copy_engines:
                raise FamilyRerouted(
                    "engine-queue",
                    "canonical schedule queues for a DMA copy engine")
            pending.append((now + op[3], j))
            continue
        if code == _OP_HOST:
            duration = op[3]
        elif code == _OP_XFER:
            if len(pending) + 1 > copy_engines:
                raise FamilyRerouted(
                    "engine-queue",
                    "canonical schedule queues for a DMA copy engine")
            duration = op[4]
        else:  # _OP_KERNEL
            duration = op[2]
        end = now + duration
        settle(end, settles[j])
        now = end
    settle(math.inf, drains)
    return settles, drains


@dataclass
class CompiledFamily:
    """One sensitivity axis lowered to a 2-D array program.

    Row ``c`` of the ``[cell, op]`` matrices holds cell ``c``'s
    pre-noise durations; :func:`replay_family` gathers rows per spec
    and evaluates every spec of the family in one vectorized pass per
    op.  Everything here is static: the op codes, the draw-column map
    (which slot of the batched standard-normal vector each op
    consumes — exact cursor positions of the scalar replay), the
    canonical settlement plan and the GPU busy-groups.
    """

    cells: Tuple[CompiledProgram, ...]
    codes: Tuple[int, ...]
    base: np.ndarray          # [cell, op] pre-noise / fixed durations
    wire: np.ndarray          # [cell, op] per-unit-multiplier wire time
    sigma: np.ndarray         # [cell, op] lognormal sigma (host/kernel)
    jitter_cols: Tuple[int, ...]   # OS-jitter z column per op (-1: none)
    noise_cols: Tuple[int, ...]    # sigma z column per op (-1: none)
    #: per op: ((spawn_op, z_col), ...) trains settling at its boundary
    settle_plan: Tuple[Tuple[Tuple[int, int], ...], ...]
    drain_plan: Tuple[Tuple[int, int], ...]
    #: maximal runs of kernel ops separated only by zero-width spawns —
    #: statically merged GPU busy spans (first_op, last_op)
    kernel_groups: Tuple[Tuple[int, int], ...]
    cols: int                 # z columns actually consumed per spec
    copy_engines: int
    os_jitter_ns: float
    memcpy_sigma: float


def _reroute(rule: str, detail: str) -> None:
    _STATS.families_rerouted += 1
    _STATS.reroute_rules[rule] = _STATS.reroute_rules.get(rule, 0) + 1
    raise FamilyRerouted(rule, detail)


def compile_family(cells: Sequence[CompiledProgram],
                   calib: Calibration) -> CompiledFamily:
    """Fuse structure-verified sibling cells into one array program.

    ``cells`` are the compiled tapes of every coordinate along one
    sensitivity axis (same workload and transfer mode).  Verifies the
    static proof obligations (see the section comment above) and
    precomputes the per-op matrices and draw-column map.  Raises
    :class:`FamilyRerouted` — with the rule that fired — when the
    family cannot be proven fusable; the caller then replays each cell
    individually, so rerouting never changes results.
    """
    if not cells:
        _reroute("empty", "no cells to fuse")
    head = cells[0]
    nops = len(head.ops)
    codes = tuple(op[0] for op in head.ops)
    if not any(code != _OP_SPAWN for code in codes):
        _reroute("empty", "no clock-advancing ops to fuse")
    for cell in cells[1:]:
        if tuple(op[0] for op in cell.ops) != codes:
            _reroute("shape-mismatch",
                     "cells disagree on the op-code sequence")
        if cell.draws != head.draws:
            _reroute("shape-mismatch", "cells disagree on the draw count")
        if cell.copy_engines != head.copy_engines:
            _reroute("shape-mismatch",
                     "cells disagree on the copy-engine budget")

    noise = calib.noise
    memcpy_sigma = noise.memcpy_sigma

    # --- static draw-pattern verification per op ----------------------
    host_jitter = [False] * nops
    op_draws = [False] * nops  # host/kernel sigma draw taken (static)
    for j in range(nops):
        code = codes[j]
        if code == _OP_HOST:
            flags = {cell.ops[j][5] for cell in cells}
            if len(flags) != 1:
                _reroute("shape-mismatch",
                         "cells disagree on the OS-jitter charge")
            host_jitter[j] = flags.pop()
            takes = set()
            for cell in cells:
                op = cell.ops[j]
                if op[4] > 0 and op[3] <= 0 and host_jitter[j]:
                    # duration = |jitter| alone: whether the sigma draw
                    # happens depends on the jitter draw's value.
                    _reroute("degenerate-duration",
                             f"host op {op[1]!r} duration is jitter-only")
                takes.add(op[4] > 0 and op[3] > 0)
            if len(takes) != 1:
                _reroute("noise-pattern",
                         "cells disagree on a host noise draw")
            op_draws[j] = takes.pop()
        elif code == _OP_KERNEL:
            takes = {cell.ops[j][3] > 0 and cell.ops[j][2] > 0
                     for cell in cells}
            if len(takes) != 1:
                _reroute("noise-pattern",
                         "cells disagree on a kernel noise draw")
            op_draws[j] = takes.pop()

    # --- canonical schedule: representative + equality across the axis
    try:
        schedule = _canonical_schedule(head.ops, head.copy_engines)
    except FamilyRerouted as exc:
        _reroute(exc.rule, str(exc))
    for cell in cells[1:]:
        try:
            other = _canonical_schedule(cell.ops, cell.copy_engines)
        except FamilyRerouted as exc:
            _reroute(exc.rule, str(exc))
        if other != schedule:
            _reroute("schedule-divergence",
                     "canonical settlement schedules differ across the "
                     "axis")
    settles, drains = schedule

    # --- draw-column map: exact scalar cursor positions ---------------
    col = 0
    jitter_cols = [-1] * nops
    noise_cols = [-1] * nops
    train_cols: Dict[int, int] = {}
    for j in range(nops):
        code = codes[j]
        if code == _OP_HOST:
            if host_jitter[j]:
                jitter_cols[j] = col
                col += 1
            if op_draws[j]:
                noise_cols[j] = col
                col += 1
        elif code == _OP_KERNEL and op_draws[j]:
            noise_cols[j] = col
            col += 1
        for t in settles[j]:
            train_cols[t] = col if memcpy_sigma > 0 else -1
            col += 1 if memcpy_sigma > 0 else 0
        if code == _OP_XFER and memcpy_sigma > 0:
            noise_cols[j] = col
            col += 1
    for t in drains:
        train_cols[t] = col if memcpy_sigma > 0 else -1
        col += 1 if memcpy_sigma > 0 else 0
    if col > head.draws:  # pragma: no cover - draws is an upper bound
        _reroute("shape-mismatch", "draw-column map exceeds the batch")

    # --- per-op matrices ----------------------------------------------
    ncells = len(cells)
    base = np.zeros((ncells, nops), dtype=np.float64)
    wire = np.zeros((ncells, nops), dtype=np.float64)
    sigma = np.zeros((ncells, nops), dtype=np.float64)
    # Sibling cells derived from one head share the head's link object
    # and, on a non-size axis, its transfer tuples — memoize the
    # decomposition per (link, kind, bytes) instead of re-deriving the
    # bandwidth model per cell.
    parts_memo: Dict[Tuple, Tuple[float, float]] = {}

    def parts_for(link, kind, nbytes):
        # repro: allow[D407] -- call-local dedup key; the id never
        # outlives this compile or reaches any result or cache key
        memo_key = (id(link), kind, nbytes)
        value = parts_memo.get(memo_key)
        if value is None:
            value = link.duration_parts(kind, nbytes)
            parts_memo[memo_key] = value
        return value

    for c, cell in enumerate(cells):
        link = cell.link
        for j, op in enumerate(cell.ops):
            code = codes[j]
            if code == _OP_HOST:
                base[c, j] = op[3]
                sigma[c, j] = op[4]
            elif code == _OP_XFER:
                fixed, unit = parts_for(link, op[2], op[3])
                if fixed + unit * 1.0 != op[4]:
                    _reroute("duration-mismatch",
                             f"transfer {op[1]!r} decomposition drifted "
                             "from the recorded duration")
                base[c, j] = fixed
                wire[c, j] = unit
            elif code == _OP_SPAWN:
                fixed, unit = parts_for(link, TransferKind.MIGRATE_H2D,
                                        op[2])
                if fixed + unit * 1.0 != op[3]:
                    _reroute("duration-mismatch",
                             f"migration {op[1]!r} decomposition drifted "
                             "from the recorded duration")
                base[c, j] = fixed
                wire[c, j] = unit
            else:  # _OP_KERNEL
                base[c, j] = op[2]
                sigma[c, j] = op[3]

    # --- static GPU busy-groups (see replay_compiled: spans separated
    # only by zero-width spawn ops abut exactly and always merge) ------
    groups: List[Tuple[int, int]] = []
    first = last = -1
    for j, code in enumerate(codes):
        if code == _OP_KERNEL:
            if first < 0:
                first = j
            last = j
        elif code != _OP_SPAWN and first >= 0:
            groups.append((first, last))
            first = last = -1
    if first >= 0:
        groups.append((first, last))

    _STATS.families_fused += 1
    return CompiledFamily(
        cells=tuple(cells),
        codes=codes,
        base=base,
        wire=wire,
        sigma=sigma,
        jitter_cols=tuple(jitter_cols),
        noise_cols=tuple(noise_cols),
        settle_plan=tuple(
            tuple((t, train_cols[t]) for t in settles[j])
            for j in range(nops)),
        drain_plan=tuple((t, train_cols[t]) for t in drains),
        kernel_groups=tuple(groups),
        cols=col,
        copy_engines=head.copy_engines,
        os_jitter_ns=noise.os_jitter_ns,
        memcpy_sigma=memcpy_sigma,
    )


@dataclass
class FamilyReplay:
    """Per-spec measurements of one fused family replay.

    ``valid[i]`` is True iff spec ``i`` provably followed the canonical
    schedule, in which case row ``i`` of every array is bitwise equal
    to the scalar replay.  Invalid rows hold unverified garbage and
    must be recomputed per-cell by the caller.
    """

    alloc_ns: np.ndarray
    memcpy_ns: np.ndarray
    kernel_ns: np.ndarray
    wall_ns: np.ndarray
    gpu_busy: np.ndarray
    valid: np.ndarray


def replay_family(fam: CompiledFamily, cell_index: np.ndarray,
                  multipliers: np.ndarray, z: np.ndarray) -> FamilyReplay:
    """Replay every spec of a family as one array program.

    ``cell_index[i]`` selects spec ``i``'s row of the family matrices,
    ``multipliers[i]`` is its host-placement time multiplier (drawn by
    the caller, placement-first like the scalar replay) and ``z`` is
    the ``[spec, col]`` matrix of batched standard-normal draws — each
    row the exact prefix of the spec's post-placement stream.  Every
    array expression mirrors the scalar ``replay_compiled`` operation
    order per lane (same float ops, same libm exp), and every branch
    the scalar replay could take differently is guarded into the
    ``valid`` mask, so valid lanes are bitwise identical to the scalar
    engines.
    """
    n = multipliers.shape[0]
    with np.errstate(all="ignore"):
        base = fam.base[cell_index]
        wire = fam.wire[cell_index]
        sigma = fam.sigma[cell_index]
        memcpy_sigma = fam.memcpy_sigma
        os_jitter = fam.os_jitter_ns

        now = np.zeros(n, dtype=np.float64)
        alloc = np.zeros(n, dtype=np.float64)
        memcpy = np.zeros(n, dtype=np.float64)
        kernel = np.zeros(n, dtype=np.float64)
        busy = np.zeros(n, dtype=np.float64)
        max_end = np.zeros(n, dtype=np.float64)
        valid = np.ones(n, dtype=bool)
        trains: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        group_first = {f: g for g, (f, _l) in enumerate(fam.kernel_groups)}
        group_last = {l: g for g, (_f, l) in enumerate(fam.kernel_groups)}
        group_spans: List[Tuple[np.ndarray, np.ndarray]] = []
        group_start: List[Optional[np.ndarray]] = \
            [None] * len(fam.kernel_groups)

        def settle(plan, boundary) -> None:
            # Trains settling at this boundary, canonical order.  The
            # guards are exactly the scalar replay's branches: a train
            # settles here iff its end lies strictly inside
            # (previous boundary, this boundary) — `now` is the highest
            # earlier boundary, so end > now covers every intermediate
            # settle call and every same-time tie below it — and
            # co-settling trains must keep strictly ordered ends.
            # Accumulators mutate in place: they are owned zeros-born
            # arrays never aliased by trains or group spans.
            nonlocal memcpy, valid
            prev_end = None
            for t, t_col in plan:
                t_start, t_end = trains.pop(t)
                if boundary is None:
                    valid &= t_end > now
                else:
                    valid &= (t_end > now) & (t_end < boundary)
                if prev_end is not None:
                    valid &= prev_end < t_end
                prev_end = t_end
                value = t_end - t_start
                if t_col >= 0:
                    valid &= value > 0
                    value = value * _exp_map(memcpy_sigma * z[:, t_col])
                noisy_end = t_start + value
                event_end = np.maximum(noisy_end, t_start)
                memcpy += event_end - t_start
                np.maximum(max_end, event_end, out=max_end)

        for j, code in enumerate(fam.codes):
            if code == _OP_SPAWN:
                duration = base[:, j] + wire[:, j] * multipliers
                trains[j] = (now, now + duration)
                continue
            if code == _OP_HOST:
                duration = base[:, j]
                j_col = fam.jitter_cols[j]
                if j_col >= 0:
                    duration = duration + np.abs(0.0 + os_jitter
                                                 * z[:, j_col])
                n_col = fam.noise_cols[j]
                if n_col >= 0:
                    duration = duration * _exp_map(sigma[:, j]
                                                   * z[:, n_col])
                end = now + duration
                settle(fam.settle_plan[j], end)
                alloc += end - now
                np.maximum(max_end, end, out=max_end)
                now = end
            elif code == _OP_KERNEL:
                duration = base[:, j]
                n_col = fam.noise_cols[j]
                if n_col >= 0:
                    duration = duration * _exp_map(sigma[:, j]
                                                   * z[:, n_col])
                end = now + duration
                settle(fam.settle_plan[j], end)
                kernel += end - now
                np.maximum(max_end, end, out=max_end)
                g = group_first.get(j)
                if g is not None:
                    group_start[g] = now
                g = group_last.get(j)
                if g is not None:
                    busy += end - group_start[g]
                    group_spans.append((group_start[g], end))
                now = end
            else:  # _OP_XFER
                duration = base[:, j] + wire[:, j] * multipliers
                end = now + duration
                settle(fam.settle_plan[j], end)
                value = end - now
                n_col = fam.noise_cols[j]
                if n_col >= 0:
                    valid &= value > 0
                    value = value * _exp_map(memcpy_sigma * z[:, n_col])
                noisy_end = now + value
                event_end = np.maximum(noisy_end, now)
                memcpy += event_end - now
                np.maximum(max_end, event_end, out=max_end)
                now = end

        settle(fam.drain_plan, None)

        # Busy-groups must stay strictly separated per spec, or the
        # scalar merge_intervals would have coalesced them.
        for g in range(1, len(group_spans)):
            valid &= group_spans[g][0] > group_spans[g - 1][1]

        # min_start is 0.0 (the first event starts at the epoch), so
        # wall == max_end bitwise.
        wall = max_end
        if group_spans:
            positive = wall > 0
            gpu_busy = np.where(positive,
                                busy / np.where(positive, wall, 1.0), 0.0)
        else:
            gpu_busy = np.zeros(n, dtype=np.float64)

    served = int(np.count_nonzero(valid))
    _STATS.fused_specs += served
    _STATS.replayed += served
    _STATS.analytic_runs += served
    return FamilyReplay(alloc_ns=alloc, memcpy_ns=memcpy, kernel_ns=kernel,
                        wall_ns=wall, gpu_busy=gpu_busy, valid=valid)
