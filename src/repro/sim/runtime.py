"""CUDA-like runtime executing on the discrete-event engine.

:class:`CudaRuntime` exposes the primitives the paper's five
configurations are built from - ``cudaMalloc``/``cudaMallocManaged``,
``cudaMemcpy``, ``cudaMemPrefetchAsync``, kernel launch, ``cudaFree`` -
as process fragments over shared resources (host allocator thread,
PCIe copy engines, GPU compute). Every operation lands in a
:class:`~repro.sim.trace.Timeline` under the paper's three accounting
categories: ``allocation``, ``memcpy``, ``gpu_kernel``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .calibration import Calibration
from .counters import CounterReport, KernelCounters
from .engine import Environment, Resource
from .hardware import SystemSpec
from .hostmem import HostPlacement, place_host_data
from .kernel import KernelDescriptor
from .pcie import PcieLink, TransferKind
from .timing import ConfigFlags, KernelExecution, simulate_kernel
from .trace import Timeline
from .uvm import ManagedSpace, fault_batches


def combine_repeat_counters(first: KernelExecution,
                            rest: Optional[KernelExecution],
                            count: int) -> KernelCounters:
    """Aggregate counters for ``count`` launches of one kernel.

    The single source of the repeat-aggregation rule, shared by
    :meth:`CudaRuntime.launch_repeated` and the vector engine's
    derived-tape path (:func:`repro.core.execution.derive_compiled`) so
    the two can never drift: instructions scale by the warm repeat,
    DRAM traffic by the launch count, L1 and occupancy stay the cold
    launch's.
    """
    base = first.counters
    repeats = (rest.counters if rest is not None else base)
    return KernelCounters(
        kernel_name=base.kernel_name,
        instructions=base.instructions.plus(
            repeats.instructions.scaled(count - 1)),
        l1=base.l1,
        dram_load_bytes=base.dram_load_bytes * count,
        dram_store_bytes=base.dram_store_bytes * count,
        occupancy=base.occupancy,
    )


class CudaRuntime:
    """One simulated process' view of the CUDA runtime."""

    def __init__(self, system: SystemSpec, calib: Calibration,
                 rng: np.random.Generator,
                 footprint_bytes: int = 0,
                 smem_carveout_bytes: Optional[int] = None,
                 env: Optional[Environment] = None,
                 host_cpu: Optional[Resource] = None,
                 kernel_sim=None):
        self.system = system
        self.calib = calib
        self.rng = rng
        self.env = env or Environment()
        #: kernel-phase simulator; injection point for the executor's
        #: phase memo (must be call-compatible with ``simulate_kernel``
        #: and return identical results for identical arguments).
        self.kernel_sim = kernel_sim if kernel_sim is not None else simulate_kernel
        self.link = PcieLink(self.env, system, calib)
        self.gpu_compute = Resource(self.env, capacity=1, name="gpu_compute")
        # Multi-GPU setups share one host allocator thread across the
        # per-device runtimes.
        self.host_cpu = host_cpu if host_cpu is not None else Resource(
            self.env, capacity=1, name="host_cpu")
        self.timeline = Timeline()
        self.counters = CounterReport()
        self.managed = ManagedSpace(system.uvm, system.gpu.hbm_bytes)
        self.smem_carveout_bytes = (smem_carveout_bytes
                                    if smem_carveout_bytes is not None
                                    else system.gpu.default_shared_mem_bytes)
        self.placement: HostPlacement = place_host_data(
            footprint_bytes, system.cpu, calib.noise, rng)
        self.executions: list = []
        #: runtime-wide ledger of stream enqueues (StreamOpRecord), in
        #: host order; the static stream-graph analyzer reads this.
        self.stream_ops: list = []
        self._jitter_charged = False

    # ------------------------------------------------------------------
    # Noise helpers
    # ------------------------------------------------------------------
    def _noisy(self, value_ns: float, sigma: float) -> float:
        if sigma <= 0 or value_ns <= 0:
            return value_ns
        return value_ns * float(self.rng.lognormal(mean=0.0, sigma=sigma))

    def _alloc_duration(self, base_ns: float, per_byte_ns: float,
                        num_bytes: int) -> float:
        duration = base_ns + per_byte_ns * num_bytes
        if not self._jitter_charged:
            # Once per run: OS scheduling / driver lock jitter.
            duration += abs(float(self.rng.normal(0.0, self.calib.noise.os_jitter_ns)))
            self._jitter_charged = True
        noise = self.calib.noise
        mib = max(1.0, num_bytes / (1024.0 * 1024.0))
        sigma = noise.alloc_sigma + noise.small_alloc_sigma / mib ** 0.5
        return self._noisy(duration, sigma)

    # ------------------------------------------------------------------
    # Allocation primitives (host-CPU resource, "allocation" category)
    # ------------------------------------------------------------------
    def _host_op(self, name: str, duration_ns: float, category: str = "allocation"):
        start, end = yield from self.host_cpu.stream(1, duration_ns)
        self.timeline.record(name, category, start, end)

    def malloc_host(self, name: str, num_bytes: int, pinned: bool = False):
        """Host allocation: pageable ``malloc`` or page-locked
        ``cudaMallocHost`` (required for async copies, costs pin time)."""
        costs = self.calib.alloc
        if pinned:
            duration = (costs.pinned_base_ns
                        + costs.pinned_per_byte_ns * num_bytes)
            label = f"cudaMallocHost:{name}"
        else:
            duration = (costs.host_base_ns
                        + costs.host_per_byte_ns * num_bytes)
            label = f"malloc_host:{name}"
        duration = self._noisy(duration, self.calib.noise.alloc_sigma)
        yield from self._host_op(label, duration)

    def malloc_device(self, name: str, num_bytes: int):
        costs = self.calib.alloc
        duration = self._alloc_duration(costs.device_base_ns,
                                        costs.device_per_byte_ns, num_bytes)
        yield from self._host_op(f"cudaMalloc:{name}", duration)

    def malloc_managed(self, name: str, num_bytes: int,
                       host_populated: bool = True):
        """cudaMallocManaged. ``host_populated`` ranges are initialized
        by the host, which faults in and populates every backing page;
        device-only ranges (scratch, outputs) stay lazily mapped."""
        costs = self.calib.alloc
        per_byte = costs.managed_per_byte_ns if host_populated \
            else costs.device_per_byte_ns
        duration = self._alloc_duration(costs.managed_base_ns, per_byte,
                                        num_bytes)
        self.managed.allocate(name, num_bytes)
        yield from self._host_op(f"cudaMallocManaged:{name}", duration)

    def free(self, name: str, num_bytes: int, managed: bool = False):
        costs = self.calib.alloc
        duration = self._noisy(costs.free_base_ns + costs.free_per_byte_ns * num_bytes,
                               self.calib.noise.alloc_sigma)
        if managed:
            self.managed.free(name)
        yield from self._host_op(f"cudaFree:{name}", duration)

    # ------------------------------------------------------------------
    # Transfer primitives (PCIe link, "memcpy" category)
    # ------------------------------------------------------------------
    def _transfer(self, label: str, kind: TransferKind, num_bytes: int,
                  chunks: Optional[int] = None):
        """Run one copy as a chunked DMA train (see :meth:`PcieLink.transfer`).

        ``chunks=None`` uses the link's ``chunk_bytes`` granularity
        (explicit memcpy / prefetch submissions); UVM migrations pass
        their fault-batch count instead.  Uncontended trains are
        bit-identical to the historical monolithic transfer, so this
        only changes behavior where transfers actually compete for the
        copy engines (multi-job pipelines), where chunk-granular
        interleaving is the truthful model.
        """
        if num_bytes <= 0:
            return None
        if chunks is None:
            chunks = self.link.chunk_count(num_bytes)
        start = self.env.now
        timing = yield from self.link.transfer(
            kind, num_bytes, host_multiplier=self.placement.time_multiplier,
            chunks=chunks)
        # Re-time with measurement noise: the queueing already happened,
        # noise perturbs the recorded duration symmetrically.
        noisy_end = start + self._noisy(self.env.now - start,
                                        self.calib.noise.memcpy_sigma)
        self.timeline.record(label, "memcpy", start, max(noisy_end, start))
        return timing

    def memcpy_h2d(self, name: str, num_bytes: int):
        yield from self._transfer(f"cudaMemcpy H2D:{name}", TransferKind.H2D,
                                  num_bytes)

    def memcpy_d2h(self, name: str, num_bytes: int):
        yield from self._transfer(f"cudaMemcpy D2H:{name}", TransferKind.D2H,
                                  num_bytes)

    def uvm_prefetch(self, name: str, fraction: float = 1.0):
        plan = self.managed.prefetch(name, fraction)
        yield from self._transfer(f"cudaMemPrefetchAsync:{name}",
                                  TransferKind.PREFETCH, plan.h2d_bytes)

    def uvm_host_read(self, name: str, fraction: float):
        # Host faults drive the writeback, so the train is one burst
        # per serviced fault batch (not per DMA chunk_bytes).
        plan = self.managed.host_read(name, fraction)
        batches = fault_batches(plan.d2h_bytes, self.system.uvm)
        yield from self._transfer(f"uvm writeback:{name}",
                                  TransferKind.MIGRATE_D2H, plan.d2h_bytes,
                                  chunks=self.link.train_length(batches))

    # ------------------------------------------------------------------
    # Kernel launch ("gpu_kernel" category)
    # ------------------------------------------------------------------
    def _spawn_migration(self, desc: KernelDescriptor, migrate_bytes: int,
                         batches: int) -> None:
        """Start a demand-migration DMA train concurrent with the kernel.

        Demand migration streams over the link concurrently with the
        (stalling) kernel; it is accounted as memcpy time, exactly as
        nvprof reports "Unified Memory Memcpy". The train is one burst
        per serviced fault batch (the batch count the timing model
        already derived).  Overridable engine hook: the analytic vector
        engine (:mod:`repro.sim.vecgrid`) replays the train arithmetic
        without spawning a process.
        """
        self.env.process(
            self._transfer(f"uvm migrate:{desc.name}",
                           TransferKind.MIGRATE_H2D, migrate_bytes,
                           chunks=self.link.train_length(batches)),
            name=f"migrate:{desc.name}",
        )

    def _hold_gpu(self, label: str, duration: float):
        """Process fragment: hold GPU compute and record the kernel event.

        Overridable engine hook, paired with :meth:`_spawn_migration`
        (the analytic vector engine settles the pending migration here,
        in event order, before recording the kernel).
        """
        start, end = yield from self.gpu_compute.stream(1, duration)
        self.timeline.record(label, "gpu_kernel", start, end)

    def launch(self, desc: KernelDescriptor, flags: ConfigFlags,
               resident_fraction: float = 1.0):
        execution = self.kernel_sim(
            desc, flags, self.system, self.calib,
            smem_carveout_bytes=self.smem_carveout_bytes,
            resident_fraction=resident_fraction,
        )
        duration = self._noisy(execution.duration_ns,
                               self.calib.noise.kernel_sigma)

        if execution.demand_migrated_bytes > 0:
            self._spawn_migration(desc, execution.demand_migrated_bytes,
                                  execution.fault_batches)

        yield from self._hold_gpu(f"kernel:{desc.name}", duration)
        self.counters.add(execution.counters)
        self.executions.append(execution)
        return execution

    def launch_repeated(self, desc: KernelDescriptor, flags: ConfigFlags,
                        count: int, resident_first: float = 1.0,
                        resident_rest: float = 1.0):
        """Launch the same kernel ``count`` times.

        Iterative applications (kmeans, srad, pathfinder) launch one
        kernel hundreds of times; only the first launch can fault on
        cold data. The kernel is simulated at most twice (cold + warm)
        and the GPU is held for the combined duration, so the cost of
        simulating a run stays independent of the iteration count.
        """
        if count < 1:
            raise ValueError("count must be >= 1")
        first = self.kernel_sim(desc, flags, self.system, self.calib,
                                smem_carveout_bytes=self.smem_carveout_bytes,
                                resident_fraction=resident_first)
        rest = None
        if count > 1:
            if resident_rest == resident_first:
                rest = first
            else:
                rest = self.kernel_sim(desc, flags, self.system, self.calib,
                                       smem_carveout_bytes=self.smem_carveout_bytes,
                                       resident_fraction=resident_rest)

        total_ns = first.duration_ns + (count - 1) * (rest.duration_ns if rest else 0.0)
        duration = self._noisy(total_ns, self.calib.noise.kernel_sigma)

        migrate_bytes = first.demand_migrated_bytes
        migrate_batches = first.fault_batches
        if rest is not None:
            migrate_bytes += (count - 1) * rest.demand_migrated_bytes
            migrate_batches += (count - 1) * rest.fault_batches
        if migrate_bytes > 0:
            self._spawn_migration(desc, migrate_bytes, migrate_batches)

        yield from self._hold_gpu(f"kernel:{desc.name} x{count}", duration)

        # Aggregate counters across the repeats.
        self.counters.add(combine_repeat_counters(first, rest, count))
        self.executions.append(first)
        return first

    # ------------------------------------------------------------------
    # Run-level results
    # ------------------------------------------------------------------
    def run(self, process) -> None:
        """Drive a composed program process to completion."""
        self.env.run_process(process, name="program")

    def breakdown(self) -> dict:
        return self.timeline.breakdown()
