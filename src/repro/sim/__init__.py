"""Discrete-event simulator of a CPU-GPU heterogeneous system.

This package is the substrate substituting for the paper's A100
testbed: hardware description, event engine, memory/interconnect
models, the UVM driver model, the cp.async pipeline model, and a
CUDA-like runtime that executes workload programs while recording the
paper's three-way time breakdown and CUPTI-style counters.
"""

from .calibration import Calibration, default_calibration
from .cache import MissRates, l1_miss_rates
from .counters import CounterReport, KernelCounters
from .engine import (Deadline, Environment, Event, Process, Resource,
                     SimulationError, Timeout)
from .export import export_chrome_trace, timeline_to_trace_events
from .fastpath import FastEnvironment
from .phasecache import PhaseMemo, clear_phase_memos, phase_memo_for
from .hardware import (CpuSpec, GpuSpec, LinkSpec, SystemSpec, UvmSpec,
                       default_system, GIB, KIB, MIB)
from .hostmem import HostPlacement, place_host_data
from .kernel import (AccessPattern, AsyncMechanism, InstructionMix,
                     KernelDescriptor)
from .pagesim import (PageSimResult, fault_study, generate_access_trace,
                      replay_trace)
from .pcie import MAX_TRAIN_CHUNKS, PcieLink, TransferKind
from .program import (BufferDirection, BufferSpec, KernelPhase, Program,
                      simple_program)
from .runtime import CudaRuntime
from .streams import CudaStream, device_synchronize
from .sm import Occupancy, occupancy_for, pipeline_fits, smem_per_block
from .timing import ConfigFlags, KernelExecution, simulate_kernel
from .trace import Timeline, TraceEvent
from .uvm import (ManagedAllocation, ManagedSpace, MigrationPlan, UvmError,
                  fault_batches, migration_blocks)
from .vecgrid import (AnalyticRuntime, CompiledProgram, ContentionDetected,
                      VecStats, prewarm_phase_memo, replay_compiled,
                      simulate_phase_grid, vec_stats)

__all__ = [
    "AccessPattern", "AsyncMechanism", "BufferDirection", "BufferSpec", "Calibration",
    "ConfigFlags", "CounterReport", "CpuSpec", "CudaRuntime", "Deadline",
    "Environment",
    "Event", "GIB", "GpuSpec", "HostPlacement", "InstructionMix",
    "KernelCounters", "KernelDescriptor", "KernelExecution", "KernelPhase",
    "KIB", "LinkSpec", "ManagedAllocation", "ManagedSpace",
    "MAX_TRAIN_CHUNKS", "MIB",
    "MigrationPlan", "MissRates", "Occupancy", "PcieLink", "Process",
    "Program", "Resource", "SimulationError", "SystemSpec", "Timeline",
    "TraceEvent", "TransferKind", "UvmError", "UvmSpec",
    "default_calibration", "default_system", "fault_batches",
    "l1_miss_rates", "migration_blocks",
    "occupancy_for", "pipeline_fits", "place_host_data", "simple_program",
    "simulate_kernel", "smem_per_block", "export_chrome_trace",
    "timeline_to_trace_events", "PageSimResult", "fault_study",
    "generate_access_trace", "replay_trace", "CudaStream",
    "device_synchronize", "FastEnvironment", "PhaseMemo", "Timeout",
    "clear_phase_memos", "phase_memo_for",
    "AnalyticRuntime", "CompiledProgram", "ContentionDetected", "VecStats",
    "prewarm_phase_memo", "replay_compiled", "simulate_phase_grid",
    "vec_stats",
]
