"""Host DRAM placement model.

Reproduces the Fig. 6 effect: once a workload's host footprint
approaches the capacity of a single DRAM chip, part of the data lands
on another chip, and host-side transfer bandwidth becomes a per-run
random variable. This is why the paper rejects the Mega input size
for its main experiments (Takeaway 1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .calibration import NoiseModel
from .hardware import CpuSpec


@dataclass(frozen=True)
class HostPlacement:
    """Where a run's host data landed, and what it costs."""

    footprint_bytes: int
    spill_fraction: float      # fraction of data on a remote chip
    time_multiplier: float     # >= 1.0 applied to host-side transfer time

    def __post_init__(self) -> None:
        if not 0.0 <= self.spill_fraction <= 1.0:
            raise ValueError("spill fraction outside [0, 1]")
        if self.time_multiplier < 1.0:
            raise ValueError("time multiplier below 1")


def place_host_data(footprint_bytes: int, cpu: CpuSpec, noise: NoiseModel,
                    rng: np.random.Generator) -> HostPlacement:
    """Assign host data to DRAM chips for one run.

    Below ``noise.spill_threshold`` of a chip's capacity, allocation
    always fits locally. Above it, a uniformly random fraction of the
    excess lands remote, where bandwidth drops by
    ``cpu.remote_chip_penalty``.
    """
    if footprint_bytes < 0:
        raise ValueError("negative footprint")
    capacity = cpu.dram_chip_bytes
    ratio = footprint_bytes / capacity
    headroom = noise.spill_threshold
    if ratio <= headroom:
        return HostPlacement(footprint_bytes, 0.0, 1.0)

    # The closer the footprint is to chip capacity, the larger the
    # possible remote share. Draw the realized share per run.
    max_spill = min(1.0, (ratio - headroom) / max(1.0 - headroom, 1e-9))
    spill = float(rng.uniform(0.0, max_spill))
    # Remote portion moves at penalty bandwidth; the blended transfer
    # time multiplier follows from splitting the bytes.
    multiplier = (1.0 - spill) + spill / cpu.remote_chip_penalty
    return HostPlacement(footprint_bytes, spill, multiplier)
