"""Unified L1/texture cache model.

Models the global load/store miss rates in the unified L1 cache that
the paper reads out of CUPTI (Fig. 10), including:

* pattern-dependent baseline miss rates,
* capacity scaling with the L1/shared-memory carveout (Fig. 13),
* the cp.async bypass effect - staged bulk loads stop thrashing the
  L1, so the remaining demand accesses of irregular kernels hit far
  more often (the paper's lud result), and
* mild prefetch-pollution effects under UVM prefetch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from .hardware import GpuSpec
from .kernel import AccessPattern, KernelDescriptor

# Baseline unified-L1 miss rates under the standard configuration,
# measured at the reference carveout (32 KiB shared -> 160 KiB L1).
BASE_LOAD_MISS: Dict[AccessPattern, float] = {
    AccessPattern.SEQUENTIAL: 0.86,
    AccessPattern.STRIDED: 0.90,
    AccessPattern.RANDOM: 0.96,
    AccessPattern.IRREGULAR: 0.89,
}

BASE_STORE_MISS: Dict[AccessPattern, float] = {
    AccessPattern.SEQUENTIAL: 0.74,
    AccessPattern.STRIDED: 0.84,
    AccessPattern.RANDOM: 0.95,
    AccessPattern.IRREGULAR: 0.90,
}

# Multipliers applied when cp.async stages bulk data around the L1.
# Irregular kernels benefit most: their reusable lines stop being
# evicted by streaming fills (lud: -35.96 % load, -69.99 % store).
ASYNC_LOAD_MISS_FACTOR: Dict[AccessPattern, float] = {
    AccessPattern.SEQUENTIAL: 1.00,
    AccessPattern.STRIDED: 0.97,
    AccessPattern.RANDOM: 0.92,
    AccessPattern.IRREGULAR: 0.64,
}

ASYNC_STORE_MISS_FACTOR: Dict[AccessPattern, float] = {
    AccessPattern.SEQUENTIAL: 1.00,
    AccessPattern.STRIDED: 0.95,
    AccessPattern.RANDOM: 0.88,
    AccessPattern.IRREGULAR: 0.30,
}

# How strongly miss rates respond to L1 capacity changes; miss rates
# on streaming kernels are mostly compulsory, so the exponent is mild.
CAPACITY_EXPONENT = 0.18

# UVM prefetch streams through the L2 and nudges L1 residency.
PREFETCH_POLLUTION = 0.02

REFERENCE_CARVEOUT = 32 * 1024


@dataclass(frozen=True)
class MissRates:
    load: float
    store: float

    def __post_init__(self) -> None:
        for value in (self.load, self.store):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"miss rate {value} outside [0, 1]")


def _clamp(value: float) -> float:
    return min(1.0, max(0.0, value))


def capacity_factor(gpu: GpuSpec, smem_carveout_bytes: int) -> float:
    """Miss-rate multiplier for a non-reference L1 capacity."""
    l1 = max(gpu.l1_bytes(smem_carveout_bytes), 1)
    reference = max(gpu.l1_bytes(REFERENCE_CARVEOUT), 1)
    return (reference / l1) ** CAPACITY_EXPONENT


def l1_miss_rates(desc: KernelDescriptor, gpu: GpuSpec,
                  smem_carveout_bytes: int, use_async: bool,
                  managed: bool, prefetched: bool) -> MissRates:
    """Global load/store miss rates in the unified L1 for one kernel."""
    load = desc.l1_load_miss if desc.l1_load_miss is not None \
        else BASE_LOAD_MISS[desc.access_pattern]
    store = desc.l1_store_miss if desc.l1_store_miss is not None \
        else BASE_STORE_MISS[desc.effective_write_pattern]

    scale = capacity_factor(gpu, smem_carveout_bytes)
    load *= scale
    store *= scale

    if use_async:
        load *= ASYNC_LOAD_MISS_FACTOR[desc.access_pattern]
        store *= ASYNC_STORE_MISS_FACTOR[desc.access_pattern]

    if managed and prefetched:
        load += PREFETCH_POLLUTION
        store += PREFETCH_POLLUTION

    return MissRates(load=_clamp(load), store=_clamp(store))
