"""Kernel characterization descriptors.

A :class:`KernelDescriptor` captures the structural facts about one
CUDA kernel that determine how it responds to the five data-transfer
configurations: its launch geometry, its tiling of global memory into
shared memory, its compute density, its access regularity, and its
instruction mix. Workloads produce descriptors; the timing and counter
models consume them.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field, replace
from typing import Optional


class AsyncMechanism(enum.Enum):
    """How a kernel synchronizes its cp.async copies.

    Sec. 3.2.1: the suite uses the CUDA Pipeline API "since it showed
    better performance than Arrive/Wait Barriers" (both are modelled so
    that claim is checkable). Arrive/wait barriers synchronize whole
    thread groups per stage, costing extra cycles per copy batch.
    """

    PIPELINE = "pipeline"
    ARRIVE_WAIT = "arrive_wait"


class AccessPattern(enum.Enum):
    """Global-memory access regularity classes used throughout the paper.

    * ``SEQUENTIAL`` - fully coalesced streaming (vector_seq, saxpy).
    * ``STRIDED`` - regular but with stride > 1 line (gemv columns, stencils).
    * ``RANDOM`` - data-dependent scatter/gather (vector_rand).
    * ``IRREGULAR`` - input-dependent, partially local (lud, kmeans).
    """

    SEQUENTIAL = "sequential"
    STRIDED = "strided"
    RANDOM = "random"
    IRREGULAR = "irregular"

    @property
    def prefetch_friendly(self) -> bool:
        """Whether the UVM/L2 prefetcher can predict this pattern."""
        return self in (AccessPattern.SEQUENTIAL, AccessPattern.STRIDED)


@dataclass(frozen=True)
class InstructionMix:
    """Dynamic instruction counts for one kernel invocation (whole grid)."""

    memory: float = 0.0
    fp: float = 0.0
    integer: float = 0.0
    control: float = 0.0

    def __post_init__(self) -> None:
        for name in ("memory", "fp", "integer", "control"):
            if getattr(self, name) < 0:
                raise ValueError(f"instruction count {name} must be >= 0")

    @property
    def total(self) -> float:
        return self.memory + self.fp + self.integer + self.control

    def scaled(self, factor: float) -> "InstructionMix":
        return InstructionMix(
            memory=self.memory * factor,
            fp=self.fp * factor,
            integer=self.integer * factor,
            control=self.control * factor,
        )

    def plus(self, other: "InstructionMix") -> "InstructionMix":
        return InstructionMix(
            memory=self.memory + other.memory,
            fp=self.fp + other.fp,
            integer=self.integer + other.integer,
            control=self.control + other.control,
        )


@dataclass(frozen=True)
class KernelDescriptor:
    """Structural characterization of one GPU kernel.

    Sizes describe the *whole grid*: the kernel loads
    ``blocks * tiles_per_block * tile_bytes`` bytes from global memory
    (before reuse through caches) and writes ``write_bytes`` back.
    """

    name: str
    blocks: int
    threads_per_block: int
    tiles_per_block: int
    tile_bytes: int
    # GPU cycles one block spends computing on one tile (at full
    # thread utilization within the block).
    compute_cycles_per_tile: float
    access_pattern: AccessPattern = AccessPattern.SEQUENTIAL
    write_bytes: int = 0
    write_pattern: Optional[AccessPattern] = None  # defaults to access_pattern
    # Shared memory statically used per block *excluding* the staging
    # buffers (which are tile_bytes for sync staging, 2x for async
    # double buffering).
    smem_static_bytes: int = 0
    registers_per_thread: int = 32
    # Number of cp.async instructions needed per tile per block. Small
    # scattered rows (conv halos) need many; bulk vectors need few.
    async_copies_per_tile: Optional[int] = None
    # SM cycles of front-end work per cp.async copy; defaults to the
    # calibration value. Kernels staging tiny, misaligned segments
    # (stencil halo rows) pay far more per copy than bulk copies.
    async_control_cycles_per_copy: Optional[float] = None
    # Set when the kernel's staging loop must barrier per copy batch
    # (halo exchanges): cp.async then pays its control cost without
    # gaining overlap, regardless of buffer capacity.
    async_serializes: bool = False
    # Which cp.async synchronization primitive the kernel uses
    # (Sec. 3.2.1 compares them; Pipeline is the suite's default).
    async_mechanism: AsyncMechanism = AsyncMechanism.PIPELINE
    # Fraction of peak HBM bandwidth this kernel achieves, overriding
    # the pattern-derived default. Set for tuned kernels (the paper's
    # CUTLASS-validated gemm) whose loads are wide and pipelined; such
    # kernels are not limited by per-thread memory-level parallelism.
    bandwidth_efficiency: Optional[float] = None
    # Average number of times each staged global byte is consumed.
    reuse: float = 1.0
    # Fraction of the kernel's nominal input footprint actually touched
    # (drives UVM demand-migration volume).
    touched_fraction: float = 1.0
    # Unique bytes of input data the kernel reads (the demand-paging
    # footprint). Defaults to load_bytes / reuse; kernels whose tiling
    # re-streams data many times (gemm) must set it to the actual
    # buffer size so UVM does not re-migrate every re-read.
    data_footprint_bytes: Optional[int] = None
    # Baseline unified-L1 miss rates under the standard config; if
    # None they are derived from the access pattern.
    l1_load_miss: Optional[float] = None
    l1_store_miss: Optional[float] = None
    # Instruction mix per *tile per block* (grid totals are derived).
    insts_per_tile: InstructionMix = field(default_factory=InstructionMix)
    # How much of min(load, compute) the *synchronous* staging version
    # already hides via warp scheduling / manual double buffering.
    # 0.0 = barrier-bound naive staging (the Svedin-style vector
    # kernels); 1.0 = fully software-pipelined (the paper's gemm, which
    # they validated against CUTLASS).
    sync_overlap: float = 0.0
    # Set when a later kernel re-reads this kernel's working set; a
    # bulk prefetch for the *other* kernel then invalidates locality
    # (the paper's nw case).
    shares_data_with_next: bool = False
    # Prefetcher accuracy override (defaults derived from pattern).
    prefetch_accuracy: Optional[float] = None

    def __post_init__(self) -> None:
        if self.blocks < 1:
            raise ValueError(f"kernel {self.name!r}: blocks must be >= 1")
        if not 1 <= self.threads_per_block <= 1024:
            raise ValueError(
                f"kernel {self.name!r}: threads_per_block must be in [1, 1024], "
                f"got {self.threads_per_block}"
            )
        if self.tiles_per_block < 1:
            raise ValueError(f"kernel {self.name!r}: tiles_per_block must be >= 1")
        if self.tile_bytes < 1:
            raise ValueError(f"kernel {self.name!r}: tile_bytes must be >= 1")
        if self.compute_cycles_per_tile < 0:
            raise ValueError(f"kernel {self.name!r}: negative compute cycles")
        if self.write_bytes < 0:
            raise ValueError(f"kernel {self.name!r}: negative write bytes")
        if self.reuse < 1.0:
            raise ValueError(f"kernel {self.name!r}: reuse must be >= 1")
        if not 0.0 < self.touched_fraction <= 1.0:
            raise ValueError(
                f"kernel {self.name!r}: touched_fraction must be in (0, 1]"
            )
        if not 0.0 <= self.sync_overlap <= 1.0:
            raise ValueError(f"kernel {self.name!r}: sync_overlap must be in [0, 1]")
        if self.bandwidth_efficiency is not None and not 0.0 < self.bandwidth_efficiency <= 1.0:
            raise ValueError(
                f"kernel {self.name!r}: bandwidth_efficiency must be in (0, 1]"
            )
        for attr in ("l1_load_miss", "l1_store_miss", "prefetch_accuracy"):
            value = getattr(self, attr)
            if value is not None and not 0.0 <= value <= 1.0:
                raise ValueError(f"kernel {self.name!r}: {attr} must be in [0, 1]")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def footprint_bytes(self) -> float:
        """Unique input bytes (what UVM must migrate on first touch)."""
        if self.data_footprint_bytes is not None:
            return float(self.data_footprint_bytes)
        return self.load_bytes / self.reuse

    @property
    def load_bytes(self) -> int:
        """Total global-memory load traffic staged through shared memory."""
        return self.blocks * self.tiles_per_block * self.tile_bytes

    @property
    def total_tiles(self) -> int:
        return self.blocks * self.tiles_per_block

    @property
    def compute_cycles(self) -> float:
        """Total block-level compute cycles across the grid."""
        return self.total_tiles * self.compute_cycles_per_tile

    @property
    def effective_write_pattern(self) -> AccessPattern:
        return self.write_pattern or self.access_pattern

    def async_copies(self) -> int:
        """cp.async instructions issued per tile per block."""
        if self.async_copies_per_tile is not None:
            return self.async_copies_per_tile
        # Default: one 16-byte cp.async per thread strip-mined over the tile.
        per_copy = 16
        return max(1, math.ceil(self.tile_bytes / per_copy / self.threads_per_block))

    def base_instructions(self) -> InstructionMix:
        """Grid-total dynamic instruction mix (standard configuration)."""
        return self.insts_per_tile.scaled(self.total_tiles)

    def derived_prefetch_accuracy(self) -> float:
        """Fraction of this kernel's pages a bulk prefetcher stages usefully."""
        if self.prefetch_accuracy is not None:
            return self.prefetch_accuracy
        return {
            AccessPattern.SEQUENTIAL: 0.98,
            AccessPattern.STRIDED: 0.90,
            AccessPattern.RANDOM: 0.55,
            AccessPattern.IRREGULAR: 0.35,
        }[self.access_pattern]

    def with_geometry(self, blocks: Optional[int] = None,
                      threads_per_block: Optional[int] = None) -> "KernelDescriptor":
        """Re-tile the same total work onto a different launch geometry.

        Used by the sensitivity studies (Figs. 11 and 12): the total
        byte traffic and compute are conserved *exactly* while the
        grid/block shape changes. Tiles-per-block is chosen as the
        divisor of the per-block byte share closest to the proportional
        ideal; if ``blocks`` does not divide the total traffic at all,
        no exact re-tiling exists and a :class:`ValueError` is raised -
        silently rounding the tile size would skew every point of a
        sensitivity sweep by a different amount.
        """
        new_blocks = blocks if blocks is not None else self.blocks
        new_threads = (threads_per_block if threads_per_block is not None
                       else self.threads_per_block)
        if new_blocks < 1:
            raise ValueError("blocks must be >= 1")
        total_bytes = self.load_bytes
        if total_bytes % new_blocks:
            raise ValueError(
                f"kernel {self.name!r}: cannot re-tile {total_bytes} bytes "
                f"onto {new_blocks} blocks without changing total traffic "
                f"({new_blocks} does not divide the byte total); pick a "
                "block count that divides the traffic exactly")
        per_block_bytes = total_bytes // new_blocks
        # Choose the divisor of the per-block share nearest the
        # proportional ideal (tiles = 1 always divides, so the search
        # terminates; ties prefer the coarser tiling).
        ideal = self.total_tiles / new_blocks
        start = max(1, min(per_block_bytes, round(ideal)))
        new_tiles_per_block = 1
        for offset in range(per_block_bytes):
            down, up = start - offset, start + offset
            if down >= 1 and per_block_bytes % down == 0:
                new_tiles_per_block = down
                break
            if up <= per_block_bytes and per_block_bytes % up == 0:
                new_tiles_per_block = up
                break
        new_tile_bytes = per_block_bytes // new_tiles_per_block
        # Compute per tile scales with tile size; thread shortfall is
        # handled by the SM utilization model, not here.
        cycles_per_byte = (self.compute_cycles_per_tile / self.tile_bytes
                           if self.tile_bytes else 0.0)
        insts_scale = new_tile_bytes / self.tile_bytes
        return replace(
            self,
            blocks=new_blocks,
            threads_per_block=new_threads,
            tiles_per_block=new_tiles_per_block,
            tile_bytes=new_tile_bytes,
            compute_cycles_per_tile=cycles_per_byte * new_tile_bytes,
            insts_per_tile=self.insts_per_tile.scaled(insts_scale),
            async_copies_per_tile=None,
        )
