"""Unified-virtual-memory state tracking.

Keeps the residency bookkeeping the UVM driver would: which fraction
of each managed allocation currently lives in GPU memory, which pages
are dirty on the device, and how much data each operation (demand
fault storm, bulk prefetch, host read-back) has to move. The *costs*
of those movements live in :mod:`repro.sim.pcie` and
:mod:`repro.sim.timing`; this module decides the byte volumes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict

from .hardware import UvmSpec


class UvmError(RuntimeError):
    """Illegal managed-memory operation."""


def migration_blocks(num_bytes: float, spec: UvmSpec) -> int:
    """Driver vablocks covering ``num_bytes`` (ceil at block granularity).

    Shared by the residency tracker (:class:`ManagedSpace`), the kernel
    timing model (:func:`repro.sim.timing.simulate_kernel`'s fault-stall
    term), and the runtime's migration DMA trains, so all three agree
    on how many blocks — and therefore fault batches — a byte volume
    implies.
    """
    if num_bytes <= 0:
        return 0
    return math.ceil(num_bytes / spec.migration_block_bytes)


def fault_batches(num_bytes: float, spec: UvmSpec) -> int:
    """Fault batches the driver services to migrate ``num_bytes``.

    The GPU raises far faults per vablock; the driver coalesces
    ``fault_batch_size`` of them per servicing batch.  Each batch is
    one burst on the link, which is why migration transfers stream as
    trains of this length (:meth:`repro.sim.runtime.CudaRuntime.launch`).
    """
    blocks = migration_blocks(num_bytes, spec)
    if blocks == 0:
        return 0
    return math.ceil(blocks / spec.fault_batch_size)


@dataclass
class ManagedAllocation:
    """One cudaMallocManaged range."""

    name: str
    size_bytes: int
    resident_fraction: float = 0.0   # share currently in GPU memory
    device_dirty_fraction: float = 0.0  # share written by GPU, not yet on host

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise UvmError(f"allocation {self.name!r} must have positive size")

    @property
    def resident_bytes(self) -> int:
        return int(self.size_bytes * self.resident_fraction)


@dataclass
class MigrationPlan:
    """Bytes a UVM operation must move, block-aligned."""

    h2d_bytes: int = 0
    d2h_bytes: int = 0
    fault_blocks: int = 0

    @property
    def total_bytes(self) -> int:
        return self.h2d_bytes + self.d2h_bytes


class ManagedSpace:
    """Residency tracker for every managed allocation of one run."""

    def __init__(self, spec: UvmSpec, gpu_capacity_bytes: int):
        self.spec = spec
        self.gpu_capacity_bytes = gpu_capacity_bytes
        self.allocations: Dict[str, ManagedAllocation] = {}

    # ------------------------------------------------------------------
    # Allocation lifecycle
    # ------------------------------------------------------------------
    def allocate(self, name: str, size_bytes: int) -> ManagedAllocation:
        if name in self.allocations:
            raise UvmError(f"allocation {name!r} already exists")
        allocation = ManagedAllocation(name=name, size_bytes=size_bytes)
        self.allocations[name] = allocation
        return allocation

    def free(self, name: str) -> None:
        if name not in self.allocations:
            raise UvmError(f"free of unknown allocation {name!r}")
        del self.allocations[name]

    def __getitem__(self, name: str) -> ManagedAllocation:
        try:
            return self.allocations[name]
        except KeyError:
            raise UvmError(f"unknown managed allocation {name!r}") from None

    @property
    def resident_bytes(self) -> int:
        return sum(a.resident_bytes for a in self.allocations.values())

    def oversubscribed(self) -> bool:
        total = sum(a.size_bytes for a in self.allocations.values())
        return total > self.gpu_capacity_bytes

    # ------------------------------------------------------------------
    # Data movement planning
    # ------------------------------------------------------------------
    def _blocks(self, num_bytes: float) -> int:
        return migration_blocks(num_bytes, self.spec)

    def demand_access(self, name: str, touched_fraction: float) -> MigrationPlan:
        """GPU touches ``touched_fraction`` of an allocation on demand.

        Pages not yet resident fault over; already-resident pages cost
        nothing. Residency grows to cover the touched range.
        """
        if not 0.0 < touched_fraction <= 1.0:
            raise UvmError("touched_fraction must be in (0, 1]")
        allocation = self[name]
        missing = max(0.0, touched_fraction - allocation.resident_fraction)
        moved = int(allocation.size_bytes * missing)
        allocation.resident_fraction = max(allocation.resident_fraction,
                                           touched_fraction)
        return MigrationPlan(h2d_bytes=moved, fault_blocks=self._blocks(moved))

    def prefetch(self, name: str, fraction: float = 1.0) -> MigrationPlan:
        """cudaMemPrefetchAsync of a managed range to the device."""
        if not 0.0 < fraction <= 1.0:
            raise UvmError("prefetch fraction must be in (0, 1]")
        allocation = self[name]
        missing = max(0.0, fraction - allocation.resident_fraction)
        moved = int(allocation.size_bytes * missing)
        allocation.resident_fraction = max(allocation.resident_fraction, fraction)
        return MigrationPlan(h2d_bytes=moved)

    def device_wrote(self, name: str, fraction: float) -> None:
        """Mark a device-side write (pages become host-stale)."""
        allocation = self[name]
        if not 0.0 <= fraction <= 1.0:
            raise UvmError("written fraction must be in [0, 1]")
        allocation.device_dirty_fraction = max(allocation.device_dirty_fraction,
                                               fraction)
        allocation.resident_fraction = max(allocation.resident_fraction, fraction)

    def host_read(self, name: str, fraction: float) -> MigrationPlan:
        """Host touches results: dirty device pages migrate back.

        Only the intersection of the host-read range and the dirty
        range has to move (UVM migrates at page granularity on host
        faults).
        """
        allocation = self[name]
        if not 0.0 <= fraction <= 1.0:
            raise UvmError("host read fraction must be in [0, 1]")
        migrate = min(fraction, allocation.device_dirty_fraction)
        moved = int(allocation.size_bytes * migrate *
                    self.spec.writeback_fraction)
        allocation.device_dirty_fraction -= migrate
        return MigrationPlan(d2h_bytes=moved, fault_blocks=self._blocks(moved))

    def evict(self, name: str, fraction: float) -> MigrationPlan:
        """Evict resident pages (prefetching another range displaced them).

        Dirty pages must be written back; clean pages are dropped.
        Used to model the paper's nw anomaly, where prefetching data
        for one kernel displaces the shared working set of the next.
        """
        allocation = self[name]
        if not 0.0 <= fraction <= 1.0:
            raise UvmError("evict fraction must be in [0, 1]")
        evicted = min(fraction, allocation.resident_fraction)
        dirty_out = min(evicted, allocation.device_dirty_fraction)
        allocation.resident_fraction -= evicted
        allocation.device_dirty_fraction -= dirty_out
        return MigrationPlan(d2h_bytes=int(allocation.size_bytes * dirty_out))
