"""Execution timeline recording.

Every runtime operation records a :class:`TraceEvent`; the resulting
:class:`Timeline` supports the per-category accounting the paper uses
(allocation / memcpy / gpu_kernel) plus busy-interval queries used for
the Section 6 occupancy analysis, and a small ASCII Gantt renderer for
the examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

CATEGORIES = ("allocation", "memcpy", "gpu_kernel", "host")


@dataclass(frozen=True)
class TraceEvent:
    name: str
    category: str
    start_ns: float
    end_ns: float

    def __post_init__(self) -> None:
        if self.category not in CATEGORIES:
            raise ValueError(f"unknown trace category {self.category!r}")
        if self.end_ns < self.start_ns:
            raise ValueError(f"event {self.name!r} ends before it starts")

    @property
    def duration_ns(self) -> float:
        return self.end_ns - self.start_ns


def merge_intervals(intervals: Iterable[Tuple[float, float]]) -> List[Tuple[float, float]]:
    """Union of possibly-overlapping [start, end) intervals."""
    ordered = sorted(intervals)
    merged: List[Tuple[float, float]] = []
    for start, end in ordered:
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


@dataclass
class Timeline:
    events: List[TraceEvent] = field(default_factory=list)

    def record(self, name: str, category: str, start_ns: float, end_ns: float) -> None:
        self.events.append(TraceEvent(name, category, start_ns, end_ns))

    def category_time(self, category: str) -> float:
        """Summed durations of one category (paper-style accounting)."""
        return sum(e.duration_ns for e in self.events if e.category == category)

    def busy_time(self, category: str) -> float:
        """Wall-clock time with >= 1 event of the category active."""
        spans = merge_intervals(
            (e.start_ns, e.end_ns) for e in self.events if e.category == category
        )
        return sum(end - start for start, end in spans)

    def span(self) -> Tuple[float, float]:
        if not self.events:
            return (0.0, 0.0)
        return (min(e.start_ns for e in self.events),
                max(e.end_ns for e in self.events))

    def wall_ns(self) -> float:
        start, end = self.span()
        return end - start

    def breakdown(self) -> Dict[str, float]:
        return {category: self.category_time(category) for category in CATEGORIES}

    def render(self, width: int = 72) -> str:
        """ASCII Gantt chart, one lane per category."""
        start, end = self.span()
        total = max(end - start, 1e-9)
        glyphs = {"allocation": "A", "memcpy": "M", "gpu_kernel": "K", "host": "h"}
        lines = []
        for category in CATEGORIES:
            lane = [" "] * width
            for event in self.events:
                if event.category != category:
                    continue
                lo = int((event.start_ns - start) / total * (width - 1))
                hi = max(lo, int((event.end_ns - start) / total * (width - 1)))
                for index in range(lo, hi + 1):
                    lane[index] = glyphs[category]
            lines.append(f"{category:>10} |{''.join(lane)}|")
        lines.append(f"{'':>10}  0{'':{width - 10}}{total / 1e6:,.2f} ms")
        return "\n".join(lines)
