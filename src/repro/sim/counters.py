"""CUPTI-style performance-counter collection.

The paper reads two counter families off the GPU (Sec. 4.2): the
dynamic instruction mix (memory / FP / integer / control) and the
global load/store miss rates of the unified L1. This module derives
both from a kernel descriptor under a given configuration, applying
the same structural effects the paper identifies:

* cp.async adds control and integer instructions per issued copy
  (address generation, commit/wait bookkeeping) - Fig. 9;
* cp.async replaces ld.global/st.shared pairs, trimming the memory
  instruction count;
* UVM leaves the instruction mix essentially untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .cache import MissRates, l1_miss_rates
from .calibration import Calibration
from .hardware import GpuSpec
from .kernel import InstructionMix, KernelDescriptor

# Fraction of staging memory instructions eliminated by cp.async
# (one async copy replaces a load-to-register plus a store-to-shared).
ASYNC_MEMORY_INST_FACTOR = 0.82


@dataclass(frozen=True)
class KernelCounters:
    """Counters for one kernel invocation."""

    kernel_name: str
    instructions: InstructionMix
    l1: MissRates
    dram_load_bytes: float
    dram_store_bytes: float
    occupancy: float

    @property
    def total_instructions(self) -> float:
        return self.instructions.total


def collect_counters(desc: KernelDescriptor, gpu: GpuSpec, calib: Calibration,
                     smem_carveout_bytes: int, use_async: bool,
                     managed: bool, prefetched: bool,
                     occupancy: float) -> KernelCounters:
    """Derive the CUPTI-visible counters for one kernel invocation."""
    mix = desc.base_instructions()
    if use_async:
        copies = desc.async_copies() * desc.total_tiles
        mix = InstructionMix(
            memory=mix.memory * ASYNC_MEMORY_INST_FACTOR,
            fp=mix.fp,
            integer=mix.integer + copies * calib.kernel.async_int_per_copy,
            control=mix.control + copies * calib.kernel.async_ctrl_per_copy,
        )

    misses = l1_miss_rates(desc, gpu, smem_carveout_bytes,
                           use_async=use_async, managed=managed,
                           prefetched=prefetched)
    unique_loads = desc.load_bytes / desc.reuse
    return KernelCounters(
        kernel_name=desc.name,
        instructions=mix,
        l1=misses,
        dram_load_bytes=unique_loads,
        dram_store_bytes=float(desc.write_bytes),
        occupancy=occupancy,
    )


@dataclass
class CounterReport:
    """Aggregated counters across every kernel of a run."""

    kernels: List[KernelCounters] = field(default_factory=list)

    def add(self, counters: KernelCounters) -> None:
        self.kernels.append(counters)

    @property
    def instructions(self) -> InstructionMix:
        total = InstructionMix()
        for entry in self.kernels:
            total = total.plus(entry.instructions)
        return total

    def mean_miss_rates(self) -> MissRates:
        """Traffic-weighted average L1 miss rates across kernels."""
        if not self.kernels:
            return MissRates(load=0.0, store=0.0)
        load_traffic = sum(k.dram_load_bytes for k in self.kernels)
        store_traffic = sum(k.dram_store_bytes for k in self.kernels)
        load = (sum(k.l1.load * k.dram_load_bytes for k in self.kernels)
                / load_traffic) if load_traffic else 0.0
        store = (sum(k.l1.store * k.dram_store_bytes for k in self.kernels)
                 / store_traffic) if store_traffic else 0.0
        return MissRates(load=load, store=store)

    def mean_occupancy(self) -> float:
        if not self.kernels:
            return 0.0
        return sum(k.occupancy for k in self.kernels) / len(self.kernels)

    def by_category(self) -> Dict[str, float]:
        mix = self.instructions
        return {
            "memory": mix.memory,
            "fp": mix.fp,
            "integer": mix.integer,
            "control": mix.control,
        }
