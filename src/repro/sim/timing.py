"""Configuration-dependent kernel timing model.

Given a :class:`~repro.sim.kernel.KernelDescriptor` and the active
data-transfer configuration, this module predicts the SM-visible
kernel duration, decomposed the way the paper reasons about it:

* **Load stage** - global->shared staging traffic at the achievable
  bandwidth for the kernel's access pattern and residency (occupancy
  drives memory-level parallelism).
* **Compute stage** - block-cycles retired by the active SMs, plus the
  cp.async control-instruction overhead when the async pipeline is on.
* **Overlap** - synchronous staging serializes load and compute inside
  a block; cp.async overlaps them when the double buffer fits the
  shared-memory carveout (Takeaway 5).
* **UVM effects** - page-walk tax, far-fault stalls for bytes not yet
  resident, L2-warming gains after an accurate bulk prefetch, and L1
  pressure when the carveout squeezes the cache (Fig. 13).
"""

from __future__ import annotations

from dataclasses import dataclass

from .calibration import Calibration
from .counters import KernelCounters, collect_counters
from .hardware import SystemSpec
from .kernel import AccessPattern, AsyncMechanism, KernelDescriptor
from .sm import Occupancy, occupancy_for, pipeline_fits
from .uvm import fault_batches


@dataclass(frozen=True)
class ConfigFlags:
    """How one kernel is executed under a transfer configuration."""

    use_async: bool = False
    managed: bool = False
    prefetched: bool = False

    def __post_init__(self) -> None:
        if self.prefetched and not self.managed:
            raise ValueError("prefetch only applies to managed (UVM) memory")


@dataclass(frozen=True)
class KernelExecution:
    """Outcome of simulating one kernel launch."""

    name: str
    duration_ns: float          # SM-visible time, including fault stalls
    load_ns: float              # memory-stage component
    compute_ns: float           # compute + control component
    fault_stall_ns: float       # far-fault servicing serialized into the kernel
    fault_batches: int
    demand_migrated_bytes: int  # bytes the UVM driver moves during this kernel
    occupancy_fraction: float
    counters: KernelCounters

    def __post_init__(self) -> None:
        if self.duration_ns < 0:
            raise ValueError("negative kernel duration")


def _memory_time_ns(desc: KernelDescriptor, occ: Occupancy, system: SystemSpec,
                    calib: Calibration, flags: ConfigFlags,
                    smem_carveout_bytes: int) -> tuple:
    """(time to move the kernel's global-memory traffic, load bandwidth)."""
    gpu = system.gpu
    thread_limited = desc.bandwidth_efficiency is None
    efficiency = (desc.bandwidth_efficiency if desc.bandwidth_efficiency is not None
                  else calib.kernel.pattern_efficiency[desc.access_pattern])
    bandwidth = occ.memory_bandwidth(gpu, efficiency, use_async=flags.use_async,
                                     thread_limited=thread_limited)
    if flags.use_async:
        bandwidth *= calib.kernel.async_bandwidth_gain
        if desc.access_pattern is AccessPattern.IRREGULAR:
            # L1-bypass effect: irregular kernels keep their reusable
            # lines resident once bulk fills stop evicting them.
            bandwidth *= calib.kernel.async_irregular_gain

    warm_l2 = (flags.managed and flags.prefetched
               and desc.access_pattern.prefetch_friendly)
    if warm_l2:
        # Bulk prefetch leaves migrated pages warm in the L2, so
        # staging loads stream from L2 rather than HBM. Strided
        # patterns retain only part of the gain.
        gain = calib.kernel.prefetch_l2_gain
        if desc.access_pattern is AccessPattern.STRIDED:
            gain = 1.0 + (gain - 1.0) * calib.kernel.strided_prefetch_retention
        gain = 1.0 + (gain - 1.0) * desc.derived_prefetch_accuracy()
        bandwidth *= gain

    unique = desc.load_bytes / desc.reuse
    reused = desc.load_bytes - unique
    load_ns = unique / bandwidth * 1e9
    if reused > 0:
        load_ns += reused / (bandwidth * calib.kernel.cached_reuse_bandwidth_factor) * 1e9

    if desc.write_bytes:
        write_eff = (desc.bandwidth_efficiency
                     if desc.bandwidth_efficiency is not None
                     else calib.kernel.pattern_efficiency[desc.effective_write_pattern])
        store_bw = occ.memory_bandwidth(gpu, write_eff, use_async=False,
                                        thread_limited=thread_limited)
        if warm_l2 and desc.effective_write_pattern.prefetch_friendly:
            # Stores coalesce into L2-resident, freshly migrated pages.
            store_bw *= calib.kernel.prefetch_l2_gain
        load_ns += desc.write_bytes / store_bw * 1e9
    return load_ns, bandwidth


def _compute_time_ns(desc: KernelDescriptor, occ: Occupancy,
                     system: SystemSpec) -> float:
    throughput = occ.compute_throughput()  # block-cycles per cycle per SM
    cycles = desc.compute_cycles / (occ.active_sms * max(throughput, 1e-9))
    return cycles * system.gpu.clock_ns


def _control_time_ns(desc: KernelDescriptor, occ: Occupancy, system: SystemSpec,
                     calib: Calibration) -> float:
    """SM time spent issuing/retiring cp.async control work."""
    copies = desc.async_copies() * desc.total_tiles
    per_copy = (desc.async_control_cycles_per_copy
                if desc.async_control_cycles_per_copy is not None
                else calib.kernel.async_control_cycles_per_copy)
    cycles = copies * per_copy
    throughput = occ.compute_throughput()
    return cycles / (occ.active_sms * max(throughput, 1e-9)) * system.gpu.clock_ns


def _barrier_time_ns(desc: KernelDescriptor, occ: Occupancy,
                     system: SystemSpec, calib: Calibration) -> float:
    """Serial arrive/wait-barrier stalls (Sec. 3.2.1).

    Unlike Pipeline-API bookkeeping, a whole-group barrier arrival
    cannot be hidden behind the copies - every thread blocks at the
    phase boundary, so this cost adds to the critical path.
    """
    if desc.async_mechanism is not AsyncMechanism.ARRIVE_WAIT:
        return 0.0
    cycles = desc.total_tiles * calib.kernel.arrive_wait_extra_cycles_per_tile
    throughput = occ.compute_throughput()
    return cycles / (occ.active_sms * max(throughput, 1e-9)) * system.gpu.clock_ns


def _fault_stalls(desc: KernelDescriptor, system: SystemSpec,
                  resident_fraction: float) -> tuple:
    """Far-fault batches and the SM stall they serialize into the kernel.

    Batch math is shared with the UVM driver model
    (:func:`repro.sim.uvm.fault_batches`) so the stall term here and
    the migration DMA train in :mod:`repro.sim.runtime` always agree
    on the batch count.
    """
    uvm = system.uvm
    footprint = desc.footprint_bytes * desc.touched_fraction
    missing = footprint * (1.0 - resident_fraction)
    if missing <= 0:
        return 0, 0, 0.0
    batches = fault_batches(missing, uvm)
    stall_ns = batches * (uvm.fault_service_ns + uvm.fault_stall_ns)
    return int(missing), batches, stall_ns


def simulate_kernel(desc: KernelDescriptor, flags: ConfigFlags,
                    system: SystemSpec, calib: Calibration,
                    smem_carveout_bytes: int,
                    resident_fraction: float = 0.0) -> KernelExecution:
    """Predict the SM-visible execution of one kernel launch.

    ``resident_fraction`` is the fraction of the kernel's touched
    footprint already present in GPU memory when the kernel starts
    (1.0 for explicitly copied data, the prefetch coverage for
    uvm_prefetch, 0.0 for cold demand paging).
    """
    if not 0.0 <= resident_fraction <= 1.0:
        raise ValueError(f"resident_fraction {resident_fraction} outside [0, 1]")
    gpu = system.gpu
    occ = occupancy_for(desc, gpu, smem_carveout_bytes, flags.use_async)

    load_ns, load_bandwidth = _memory_time_ns(desc, occ, system, calib, flags,
                                              smem_carveout_bytes)
    compute_ns = _compute_time_ns(desc, occ, system)

    if flags.use_async:
        control_ns = _control_time_ns(desc, occ, system, calib)
        compute_ns += control_ns
        if pipeline_fits(desc, gpu, smem_carveout_bytes) and not desc.async_serializes:
            # Double-buffered: load and compute overlap; pay a pipeline
            # fill of one tile's load at loop start.
            fill = (load_ns / desc.tiles_per_block
                    * calib.kernel.async_pipeline_fill_tiles)
            core_ns = max(load_ns, compute_ns) + fill
        else:
            # Buffers don't fit: all the control overhead, none of the
            # overlap (Takeaway 5).
            core_ns = load_ns + compute_ns
        core_ns += _barrier_time_ns(desc, occ, system, calib)
    else:
        # Synchronous staging: barrier-separated load/compute phases.
        # A kernel's own software pipelining (sync_overlap) hides part
        # of the shorter phase.
        overlapped = desc.sync_overlap * min(load_ns, compute_ns)
        core_ns = load_ns + compute_ns - overlapped

    demand_bytes, batches, stall_ns = 0, 0, 0.0
    if flags.managed:
        core_ns *= 1.0 + calib.kernel.uvm_page_walk_overhead
        core_ns += calib.kernel.uvm_launch_sync_ns
        # Squeezing the L1 (large carveout) hurts managed configs: the
        # migration/prefetch streams evict demand lines (Takeaway 5).
        l1_reference = gpu.l1_bytes(gpu.default_shared_mem_bytes)
        l1_now = gpu.l1_bytes(smem_carveout_bytes)
        pressure = max(0.0, 1.0 - l1_now / l1_reference)
        core_ns *= 1.0 + calib.kernel.uvm_l1_pressure * pressure
        # Demand paging interleaves fault handling with execution:
        # every *first* touch of a page stalls for driver servicing,
        # so the penalty scales with the time the kernel would need to
        # pull its missing footprint through the memory system (pages
        # fault once - re-reads of migrated data do not re-fault).
        # This is the paper's 2.0-2.2x micro kernel-time inflation.
        missing_bytes = (desc.footprint_bytes * desc.touched_fraction
                         * (1.0 - resident_fraction))
        footprint_ns = missing_bytes / load_bandwidth * 1e9
        core_ns += ((calib.kernel.uvm_demand_kernel_multiplier - 1.0)
                    * footprint_ns)
        demand_bytes, batches, stall_ns = _fault_stalls(desc, system,
                                                        resident_fraction)

    duration = calib.kernel.launch_ns + core_ns + stall_ns
    counters = collect_counters(
        desc, gpu, calib, smem_carveout_bytes,
        use_async=flags.use_async, managed=flags.managed,
        prefetched=flags.prefetched,
        occupancy=occ.occupancy_fraction(gpu),
    )
    return KernelExecution(
        name=desc.name,
        duration_ns=duration,
        load_ns=load_ns,
        compute_ns=compute_ns,
        fault_stall_ns=stall_ns,
        fault_batches=batches,
        demand_migrated_bytes=demand_bytes,
        occupancy_fraction=occ.occupancy_fraction(gpu),
        counters=counters,
    )
