"""Calibration constants for the performance models.

These constants capture costs the hardware dataclasses cannot express
(driver software paths, instruction issue costs, modelled efficiency
factors). They were tuned once against the percentages reported in the
paper (see EXPERIMENTS.md) and are deliberately centralized so that a
single file documents every "magic number" in the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from .kernel import AccessPattern


@dataclass(frozen=True)
class AllocationCosts:
    """cudaMalloc / cudaMallocManaged / cudaFree cost model.

    The large constant term models CUDA context/driver work that the
    paper's end-to-end measurements include (it is why Tiny inputs in
    Fig. 4 still take ~2.5e8 ns and why allocation dominates once the
    transfer pipeline is optimized, Sec. 6.1).
    """

    device_base_ns: float = 5.0e7        # per cudaMalloc call
    device_per_byte_ns: float = 0.006    # VA + page-table setup
    managed_base_ns: float = 5.5e7       # per cudaMallocManaged call
    managed_per_byte_ns: float = 0.013   # managed ranges also populate host mappings
    free_base_ns: float = 2.0e7
    free_per_byte_ns: float = 0.002
    host_base_ns: float = 1.5e6          # pageable host malloc (standard path)
    host_per_byte_ns: float = 0.001
    # cudaMallocHost: page-locking is slow (~10 GB/s pin rate) - the
    # price of full-bandwidth cudaMemcpyAsync transfers.
    pinned_base_ns: float = 1.0e7
    pinned_per_byte_ns: float = 0.1


@dataclass(frozen=True)
class KernelCosts:
    """GPU kernel-side cost model parameters."""

    launch_ns: float = 8_000.0            # per kernel launch
    # Effective fraction of HBM bandwidth these benchmark kernels
    # achieve per access pattern. The absolute level is low - the
    # suite's kernels are straightforward ports staging one element
    # per thread per iteration, not CUTLASS-grade streaming code - but
    # the ratios track coalescing quality.
    pattern_efficiency: Dict[AccessPattern, float] = field(
        default_factory=lambda: {
            AccessPattern.SEQUENTIAL: 0.0643,
            AccessPattern.STRIDED: 0.0450,
            AccessPattern.RANDOM: 0.0280,
            AccessPattern.IRREGULAR: 0.0350,
        }
    )
    # cp.async path: bypasses the register file, slightly better
    # sustained bandwidth for bulk copies.
    async_bandwidth_gain: float = 1.06
    # Extra bandwidth gain for *irregular* kernels under cp.async: the
    # bypass stops streaming fills from thrashing the unified L1, so
    # reusable lines survive (the Fig. 10 lud miss-rate reductions).
    async_irregular_gain: float = 1.30
    # Cycles of SM front-end work per cp.async instruction (commit,
    # mbarrier bookkeeping) - the control-overhead source (Fig. 9).
    async_control_cycles_per_copy: float = 10.0
    # Extra integer instructions per cp.async copy (address generation).
    async_int_per_copy: float = 4.0
    # Extra control instructions per cp.async copy.
    async_ctrl_per_copy: float = 6.0
    # Pipeline fill: one extra tile-load latency at loop start.
    async_pipeline_fill_tiles: float = 1.0
    # Extra SM cycles per tile when synchronizing with arrive/wait
    # barriers instead of the Pipeline API (whole-group arrival plus
    # phase-token bookkeeping; Sec. 3.2.1 / Svedin et al.).
    arrive_wait_extra_cycles_per_tile: float = 220.0
    # L2-warming speedup of global loads after a bulk prefetch, for
    # prefetch-friendly (sequential/strided) patterns.
    prefetch_l2_gain: float = 3.4
    # Fraction of that gain retained for strided patterns.
    strided_prefetch_retention: float = 0.65
    # Managed-memory TLB/page-walk tax on kernel time (UVM configs).
    uvm_page_walk_overhead: float = 0.06
    # Kernel-time multiplier while demand paging (no prefetch) is
    # resolving the kernel's footprint: fault handling interleaves
    # with execution across the whole kernel (the paper's 2.0-2.2x
    # micro kernel-time inflation under plain uvm).
    uvm_demand_kernel_multiplier: float = 3.6
    # Per-launch page-table synchronization for managed kernels. Apps
    # that launch hundreds of small kernels (kmeans, srad, pathfinder)
    # accumulate this, which is why their UVM kernel time exceeds the
    # standard config even with prefetch (Sec. 4.1.2).
    uvm_launch_sync_ns: float = 25_000.0
    # Bandwidth multiplier for re-reads served out of L1/L2 instead of HBM.
    cached_reuse_bandwidth_factor: float = 4.0
    # Kernel-time penalty factor for managed configs as the L1 shrinks
    # below its reference capacity (prefetch/migration streams evict
    # demand lines; Fig. 13).
    uvm_l1_pressure: float = 0.55


@dataclass(frozen=True)
class TransferCosts:
    """Host-device copy cost model parameters."""

    memcpy_call_ns: float = 10_000.0   # per cudaMemcpy API call
    pageable_factor: float = 0.78      # pageable (non-pinned) host memory penalty
    d2h_bandwidth_factor: float = 0.92 # D2H slightly slower than H2D on this platform


@dataclass(frozen=True)
class NoiseModel:
    """Run-to-run variation, seeded per run.

    ``memcpy_sigma`` is the baseline lognormal sigma of copy time;
    cross-chip placement (hostmem.py) adds the Mega-size instability of
    Fig. 6 on top.
    """

    alloc_sigma: float = 0.012
    # Small allocations are dominated by a handful of driver lock
    # acquisitions and page-table RPCs - high relative variance; large
    # allocations average over many page operations. The effective
    # sigma is alloc_sigma + small_alloc_sigma / sqrt(MiB). This is
    # what makes Tiny..Medium inputs noisy in Fig. 5.
    small_alloc_sigma: float = 0.10
    kernel_sigma: float = 0.008
    memcpy_sigma: float = 0.025
    # One-per-run additive OS/driver jitter, folded into allocation
    # time (dominates the relative variance of Tiny inputs, Fig. 5).
    os_jitter_ns: float = 1.2e7
    # Footprint/chip-capacity ratio above which host placement may
    # spill across DRAM chips.
    spill_threshold: float = 0.20


@dataclass(frozen=True)
class Calibration:
    alloc: AllocationCosts = field(default_factory=AllocationCosts)
    kernel: KernelCosts = field(default_factory=KernelCosts)
    transfer: TransferCosts = field(default_factory=TransferCosts)
    noise: NoiseModel = field(default_factory=NoiseModel)


def default_calibration() -> Calibration:
    """The constants EXPERIMENTS.md was measured with."""
    return Calibration()
