"""CUDA stream semantics on top of the runtime.

The paper's related work (Gregg & Hazelwood; Hestness et al.) overlaps
transfer and compute *explicitly*, with multiple streams and chunked
``cudaMemcpyAsync`` - the hand-tuned baseline UVM aims to replace.
This module adds stream objects to the runtime: per-stream FIFO
ordering, cross-stream concurrency arbitrated by the hardware
resources (copy engines, GPU queue), and event-style dependencies.

Every enqueue is also recorded as a :class:`StreamOpRecord` (per-stream
``ops`` plus the runtime-wide ``stream_ops`` ledger) so the static
analyzer in :mod:`repro.analysis.streamcheck` can rebuild the
happens-before DAG and detect races, cycles, and dead synchronizes
without re-running the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional, Tuple

from .engine import Event, Process
from .runtime import CudaRuntime


@dataclass(frozen=True)
class StreamOpRecord:
    """Static record of one enqueued stream operation.

    ``process`` identifies the operation for cross-stream ``after``
    matching; ``reads``/``writes`` name the buffers (or buffer chunks)
    the operation touches, which is what the race analyzer keys on.
    Synchronize records carry ``kind="sync"`` and ``pending`` - whether
    the stream actually had in-flight work to wait for.
    """

    stream: str
    sequence: int
    label: str
    kind: str = "op"
    reads: Tuple[str, ...] = ()
    writes: Tuple[str, ...] = ()
    process: Optional[Process] = None
    after: Tuple[Event, ...] = ()
    pending: bool = True


class CudaStream:
    """One in-order queue of asynchronous runtime operations.

    Operations enqueued on the same stream execute in order; operations
    on different streams overlap wherever the copy engines / GPU queue
    allow - exactly CUDA's model.
    """

    def __init__(self, rt: CudaRuntime, name: str = "stream"):
        self.rt = rt
        self.name = name
        self._tail: Optional[Process] = None
        self._sequence = 0
        #: static enqueue ledger for this stream (see StreamOpRecord)
        self.ops: List[StreamOpRecord] = []

    def _record(self, record: StreamOpRecord) -> None:
        self.ops.append(record)
        ledger = getattr(self.rt, "stream_ops", None)
        if ledger is not None:
            ledger.append(record)

    def enqueue(self, fragment: Generator,
                after: Optional[Event] = None, *,
                label: str = "", kind: str = "op",
                reads: Tuple[str, ...] = (),
                writes: Tuple[str, ...] = ()) -> Process:
        """Queue a runtime process fragment on this stream.

        ``after`` adds a cross-stream dependency (cudaStreamWaitEvent):
        the operation starts only once both the stream's previous
        operation and ``after`` have completed. ``label``, ``kind``,
        ``reads``, and ``writes`` annotate the static ledger the
        stream-graph analyzer consumes; they do not affect timing.
        """
        self._sequence += 1
        # Short-circuit dependencies that already fired: waiting on a
        # processed event is a no-op, and capturing it would both hold
        # the dead event alive and cost a relay wake-up per enqueue.
        if after is not None and after.processed:
            after = None
        predecessor = self._tail
        if predecessor is not None and predecessor.processed:
            predecessor = None

        def op():
            if predecessor is not None and not predecessor.processed:
                yield predecessor
            if after is not None and not after.processed:
                yield after
            result = yield from fragment
            return result

        process = self.rt.env.process(
            op(), name=f"{self.name}:{self._sequence}")
        self._tail = process
        self._record(StreamOpRecord(
            stream=self.name, sequence=self._sequence,
            label=label or f"{self.name}:{self._sequence}", kind=kind,
            reads=tuple(reads), writes=tuple(writes), process=process,
            after=(after,) if after is not None else ()))
        return process

    def synchronize(self) -> Generator:
        """Process fragment: wait until the stream drains
        (cudaStreamSynchronize)."""
        tail = self._tail
        pending = tail is not None and not tail.processed
        self._sequence += 1
        self._record(StreamOpRecord(
            stream=self.name, sequence=self._sequence,
            label=f"{self.name}:synchronize", kind="sync",
            process=None, after=(tail,) if pending else (),
            pending=pending))
        if pending:
            yield tail
        return None

    @property
    def pending(self) -> bool:
        return self._tail is not None and not self._tail.processed


def device_synchronize(rt: CudaRuntime, *streams: CudaStream) -> Generator:
    """Process fragment: wait for every given stream
    (cudaDeviceSynchronize over the streams in use)."""
    for stream in streams:
        yield from stream.synchronize()
    return None
