"""CUDA stream semantics on top of the runtime.

The paper's related work (Gregg & Hazelwood; Hestness et al.) overlaps
transfer and compute *explicitly*, with multiple streams and chunked
``cudaMemcpyAsync`` - the hand-tuned baseline UVM aims to replace.
This module adds stream objects to the runtime: per-stream FIFO
ordering, cross-stream concurrency arbitrated by the hardware
resources (copy engines, GPU queue), and event-style dependencies.
"""

from __future__ import annotations

from typing import Generator, Optional

from .engine import Event, Process
from .runtime import CudaRuntime


class CudaStream:
    """One in-order queue of asynchronous runtime operations.

    Operations enqueued on the same stream execute in order; operations
    on different streams overlap wherever the copy engines / GPU queue
    allow - exactly CUDA's model.
    """

    def __init__(self, rt: CudaRuntime, name: str = "stream"):
        self.rt = rt
        self.name = name
        self._tail: Optional[Process] = None
        self._sequence = 0

    def enqueue(self, fragment: Generator,
                after: Optional[Event] = None) -> Process:
        """Queue a runtime process fragment on this stream.

        ``after`` adds a cross-stream dependency (cudaStreamWaitEvent):
        the operation starts only once both the stream's previous
        operation and ``after`` have completed.
        """
        self._sequence += 1
        predecessor = self._tail

        def op():
            if predecessor is not None and not predecessor.processed:
                yield predecessor
            if after is not None and not after.processed:
                yield after
            result = yield from fragment
            return result

        process = self.rt.env.process(
            op(), name=f"{self.name}:{self._sequence}")
        self._tail = process
        return process

    def synchronize(self) -> Generator:
        """Process fragment: wait until the stream drains
        (cudaStreamSynchronize)."""
        tail = self._tail
        if tail is not None and not tail.processed:
            yield tail
        return None

    @property
    def pending(self) -> bool:
        return self._tail is not None and not self._tail.processed


def device_synchronize(rt: CudaRuntime, *streams: CudaStream) -> Generator:
    """Process fragment: wait for every given stream
    (cudaDeviceSynchronize over the streams in use)."""
    for stream in streams:
        yield from stream.synchronize()
    return None
