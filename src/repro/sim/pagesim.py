"""Page-granular UVM fault simulation.

The timing model in :mod:`repro.sim.timing` treats demand paging
analytically (missing bytes -> fault batches). This module provides
the detailed, mechanism-level view the UVM literature studies (Allen &
Ge; Kim et al.'s batch processing): a synthetic per-page access trace
is replayed against a page table with

* 64 KiB migration blocks ("vablocks"),
* batched far-fault servicing (one driver round trip per batch), and
* a sequential-detection prefetcher that widens migrations when the
  fault stream looks like a stream.

It is used two ways: the test suite validates that the analytic model's
migration volumes and batch counts agree with the detailed replay, and
the ablation/benchmark layer uses it to show *why* fault batching and
prefetch matter (Fig. 9/10-adjacent mechanism analysis).

Everything is vectorized NumPy — including the IRREGULAR pointer-chase
walk, which is a segment scan over precomputed jump points rather than
a per-access Python loop; traces of millions of accesses generate and
replay in milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .hardware import UvmSpec
from .kernel import AccessPattern


def generate_access_trace(pattern: AccessPattern, total_pages: int,
                          accesses: int,
                          rng: Optional[np.random.Generator] = None,
                          stride_pages: int = 8,
                          locality: float = 0.7) -> np.ndarray:
    """Synthetic page-index trace for one access-pattern class.

    * SEQUENTIAL - ascending pages, wrap-around.
    * STRIDED    - ascending with a fixed page stride, interleaved
      across stride lanes (a column sweep).
    * RANDOM     - uniform page indices.
    * IRREGULAR  - a mixture: with probability ``locality`` the next
      access stays within a small window of the previous one,
      otherwise it jumps uniformly (pointer chasing with hot regions).
    """
    if total_pages < 1:
        raise ValueError("total_pages must be >= 1")
    if accesses < 1:
        raise ValueError("accesses must be >= 1")
    rng = rng or np.random.default_rng(0)

    if pattern is AccessPattern.SEQUENTIAL:
        return np.arange(accesses, dtype=np.int64) % total_pages
    if pattern is AccessPattern.STRIDED:
        # Lane-major column sweep: within one lane consecutive accesses
        # advance by `lanes` pages, which is still sequential at
        # migration-block granularity - the reason strided patterns
        # remain prefetch-friendly (Takeaway 2).
        lanes = max(1, min(stride_pages, total_pages))
        steps_per_lane = max(1, accesses // lanes)
        index = np.arange(accesses, dtype=np.int64)
        lane = (index // steps_per_lane) % lanes
        offset = index % steps_per_lane
        return (lane + (offset * lanes) % total_pages) % total_pages
    if pattern is AccessPattern.RANDOM:
        return rng.integers(0, total_pages, size=accesses, dtype=np.int64)
    if pattern is AccessPattern.IRREGULAR:
        jumps = rng.integers(0, total_pages, size=accesses, dtype=np.int64)
        local_steps = rng.integers(-4, 5, size=accesses, dtype=np.int64)
        is_local = rng.random(accesses) < locality
        # Segment scan over precomputed jump points (no Python loop):
        # every non-local access re-anchors the walk at ``jumps[i]``,
        # and the local accesses after it sit at the anchor plus a
        # running sum of the small steps.  The scalar walk's per-step
        # modulo distributes over that sum ((a % m + b) % m ==
        # (a + b) % m for floored modulo), so one vectorized modulo at
        # the end reproduces the iterated walk bit-for-bit (pinned by
        # the golden-trace test).
        index = np.arange(accesses, dtype=np.int64)
        anchor = np.where(is_local, np.int64(-1), index)
        np.maximum.accumulate(anchor, out=anchor)
        running = np.cumsum(np.where(is_local, local_steps, np.int64(0)))
        # anchor == -1 (leading locals) walks from the virtual initial
        # position jumps[0], with the full running sum as its offset.
        base = jumps[np.maximum(anchor, 0)]
        offset = running - np.where(anchor >= 0, running[anchor], np.int64(0))
        return (base + offset) % total_pages
    raise ValueError(f"unknown pattern {pattern!r}")


@dataclass(frozen=True)
class PageSimResult:
    """Outcome of replaying one trace against the UVM page table."""

    total_pages: int
    accesses: int
    faults: int                 # vablock far-faults taken
    fault_batches: int          # driver service rounds
    migrated_blocks: int        # vablocks moved H2D (incl. prefetched)
    prefetched_blocks: int      # moved ahead of demand
    prefetch_useful_blocks: int  # prefetched and later touched

    @property
    def fault_rate(self) -> float:
        return self.faults / self.accesses

    @property
    def prefetch_accuracy(self) -> float:
        if self.prefetched_blocks == 0:
            return 0.0
        return self.prefetch_useful_blocks / self.prefetched_blocks

    @property
    def migrated_bytes(self) -> int:
        return self.migrated_blocks * 64 * 1024


def replay_trace(trace: np.ndarray, total_pages: int, spec: UvmSpec,
                 prefetch: bool = False,
                 prefetch_window_blocks: int = 16) -> PageSimResult:
    """Replay a page trace against a cold page table.

    With ``prefetch`` enabled, a run of 3 consecutive faulting vablocks
    triggers the sequential detector, which migrates the next
    ``prefetch_window_blocks`` vablocks eagerly (the driver's
    tree-based density heuristic, simplified).
    """
    if trace.ndim != 1:
        raise ValueError("trace must be 1-D")
    pages_per_block = max(1, spec.migration_block_bytes // spec.page_bytes)
    total_blocks = -(-total_pages // pages_per_block)
    blocks = np.asarray(trace, dtype=np.int64) // pages_per_block
    if blocks.size and (blocks.min() < 0 or blocks.max() >= total_blocks):
        raise ValueError("trace references pages outside the allocation")

    resident = np.zeros(total_blocks, dtype=bool)
    prefetched = np.zeros(total_blocks, dtype=bool)
    touched = np.zeros(total_blocks, dtype=bool)

    faults = 0
    run_length = 0
    previous_block = -2
    for block in blocks:
        touched[block] = True
        if resident[block]:
            if block == previous_block + 1 or block == previous_block:
                run_length = run_length if block == previous_block \
                    else run_length + 1
            previous_block = block
            continue
        faults += 1
        resident[block] = True
        if block == previous_block + 1:
            run_length += 1
        else:
            run_length = 1
        previous_block = block
        if prefetch and run_length >= 3:
            lo = block + 1
            hi = min(total_blocks, lo + prefetch_window_blocks)
            window = np.arange(lo, hi)
            fresh = window[~resident[window]]
            resident[fresh] = True
            prefetched[fresh] = True

    migrated = int(resident.sum())
    prefetched_count = int(prefetched.sum())
    useful = int((prefetched & touched).sum())
    batch = max(1, spec.fault_batch_size)
    return PageSimResult(
        total_pages=total_pages,
        accesses=int(blocks.size),
        faults=faults,
        fault_batches=-(-faults // batch),
        migrated_blocks=migrated,
        prefetched_blocks=prefetched_count,
        prefetch_useful_blocks=useful,
    )


def fault_study(total_pages: int = 16384, accesses: int = 65536,
                spec: Optional[UvmSpec] = None,
                seed: int = 0) -> dict:
    """Fault/prefetch behaviour per access pattern (mechanism table).

    Returns, per pattern, the demand fault rate and the sequential
    prefetcher's accuracy - the mechanism behind Takeaway 2's
    regular-vs-irregular split.
    """
    spec = spec or UvmSpec()
    rng = np.random.default_rng(seed)
    study = {}
    for pattern in AccessPattern:
        trace = generate_access_trace(pattern, total_pages, accesses,
                                      rng=rng)
        demand = replay_trace(trace, total_pages, spec, prefetch=False)
        with_prefetch = replay_trace(trace, total_pages, spec,
                                     prefetch=True)
        study[pattern.value] = {
            "fault_rate": demand.fault_rate,
            "faults": demand.faults,
            "faults_with_prefetch": with_prefetch.faults,
            "prefetch_accuracy": with_prefetch.prefetch_accuracy,
            "fault_reduction": 1.0 - (with_prefetch.faults
                                      / max(demand.faults, 1)),
        }
    return study
