"""Minimal discrete-event simulation core.

The simulator is built on a classic event-heap + coroutine-process
design (in the style of SimPy, reimplemented here so the package has
no dependency beyond NumPy):

* :class:`Environment` owns the clock and the event heap.
* :class:`Event` is a one-shot occurrence other processes can wait on.
* :class:`Process` wraps a generator; every ``yield`` suspends the
  process until the yielded :class:`Event` fires.
* :class:`Resource` is a counted FIFO server (used for the PCIe link,
  GPU copy engines, the host allocator thread, and GPU compute).

Time is a float in **nanoseconds** throughout the simulator.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable, List, Optional


class SimulationError(RuntimeError):
    """Raised for illegal uses of the simulation core."""


class Event:
    """A one-shot occurrence processes can wait on.

    An event is *triggered* with an optional value; every registered
    callback then runs when the environment reaches the event's
    scheduled time.
    """

    __slots__ = ("env", "callbacks", "_triggered", "_processed", "value", "name")

    def __init__(self, env: "Environment", name: str = ""):
        self.env = env
        self.callbacks: List[Callable[["Event"], None]] = []
        self._triggered = False
        self._processed = False
        self.value: Any = None
        self.name = name

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event ``delay`` ns from now."""
        if self._triggered:
            raise SimulationError(f"event {self.name!r} already triggered")
        self._triggered = True
        self.value = value
        self.env._schedule(self, delay)
        return self

    def _run_callbacks(self) -> None:
        self._processed = True
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self._triggered else "pending"
        return f"<Event {self.name or hex(id(self))} {state}>"


class Timeout(Event):
    """An event that fires a fixed delay after creation."""

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(env, name=f"timeout({delay:g})")
        self._triggered = True
        self.value = value
        env._schedule(self, delay)


class AllOf(Event):
    """Fires once every child event has fired."""

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, name="all_of")
        self._pending = 0
        events = list(events)
        for event in events:
            if event.processed:
                continue
            self._pending += 1
            event.callbacks.append(self._child_done)
        if self._pending == 0:
            self.succeed([e.value for e in events])
        else:
            self._children = events

    def _child_done(self, _event: Event) -> None:
        self._pending -= 1
        if self._pending == 0 and not self._triggered:
            self.succeed([e.value for e in self._children])


class Process(Event):
    """A running coroutine; itself an event that fires on completion."""

    def __init__(self, env: "Environment", generator: Generator, name: str = ""):
        super().__init__(env, name=name or getattr(generator, "__name__", "process"))
        self._generator = generator
        # Bootstrap: resume once at the current time.
        bootstrap = Event(env, name=f"start:{self.name}")
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed()

    def _resume(self, event: Event) -> None:
        try:
            target = self._generator.send(event.value)
        except StopIteration as stop:
            if not self._triggered:
                self.succeed(stop.value)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must yield Event objects"
            )
        if target.processed:
            # Already fired: resume immediately (still via the heap so
            # ordering stays deterministic).
            relay = Event(self.env, name=f"relay:{self.name}")
            relay.callbacks.append(self._resume)
            relay.succeed(target.value)
        else:
            target.callbacks.append(self._resume)


class Environment:
    """Simulation environment: clock plus event heap."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[tuple] = []
        self._sequence = 0

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        self._sequence += 1
        heapq.heappush(self._heap, (self.now + delay, self._sequence, event))

    def event(self, name: str = "") -> Event:
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name)

    def run(self, until: Optional[float] = None) -> float:
        """Execute events until the heap empties (or ``until`` is reached).

        Returns the final simulation time.
        """
        while self._heap:
            at, _seq, event = self._heap[0]
            if until is not None and at > until:
                self.now = until
                return self.now
            heapq.heappop(self._heap)
            self.now = at
            event._run_callbacks()
        return self.now

    def run_process(self, generator: Generator, name: str = "") -> Any:
        """Convenience: run a single process to completion, return its value."""
        process = self.process(generator, name)
        self.run()
        if not process.processed:
            raise SimulationError(f"process {process.name!r} deadlocked")
        return process.value


class Resource:
    """A counted FIFO resource (``capacity`` concurrent holders)."""

    def __init__(self, env: Environment, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._queue: deque = deque()
        # Utilization accounting.
        self._busy_time = 0.0
        self._last_change = 0.0

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queued(self) -> int:
        return len(self._queue)

    def _account(self) -> None:
        now = self.env.now
        self._busy_time += self._in_use * (now - self._last_change)
        self._last_change = now

    def busy_time(self) -> float:
        """Integral of holders over time (ns x holders), up to *now*."""
        self._account()
        return self._busy_time

    def request(self) -> Event:
        """Return an event that fires when the resource is granted."""
        self._account()
        grant = Event(self.env, name=f"grant:{self.name}")
        if self._in_use < self.capacity:
            self._in_use += 1
            grant.succeed()
        else:
            self._queue.append(grant)
        return grant

    def release(self) -> None:
        self._account()
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._queue:
            grant = self._queue.popleft()
            grant.succeed()
        else:
            self._in_use -= 1

    def use(self, duration: float) -> Generator:
        """Process fragment: acquire, hold for ``duration`` ns, release."""
        yield self.request()
        try:
            yield self.env.timeout(duration)
        finally:
            self.release()
