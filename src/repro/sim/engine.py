"""Minimal discrete-event simulation core.

The simulator is built on a classic event-heap + coroutine-process
design (in the style of SimPy, reimplemented here so the package has
no dependency beyond NumPy):

* :class:`Environment` owns the clock and the event heap.
* :class:`Event` is a one-shot occurrence other processes can wait on.
* :class:`Process` wraps a generator; every ``yield`` suspends the
  process until the yielded :class:`Event` fires.
* :class:`Resource` is a counted FIFO server (used for the PCIe link,
  GPU copy engines, the host allocator thread, and GPU compute).

Time is a float in **nanoseconds** throughout the simulator.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable, List, Optional


class SimulationError(RuntimeError):
    """Raised for illegal uses of the simulation core."""


class Event:
    """A one-shot occurrence processes can wait on.

    An event is *triggered* with an optional value; every registered
    callback then runs when the environment reaches the event's
    scheduled time.
    """

    __slots__ = ("env", "callbacks", "_triggered", "_processed", "value", "name")

    def __init__(self, env: "Environment", name: str = ""):
        self.env = env
        self.callbacks: List[Callable[["Event"], None]] = []
        self._triggered = False
        self._processed = False
        self.value: Any = None
        self.name = name

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event ``delay`` ns from now."""
        if self._triggered:
            raise SimulationError(f"event {self.name!r} already triggered")
        return self._trigger(value, delay)

    def _trigger(self, value: Any, delay: float) -> "Event":
        """Internal trigger path shared by :meth:`succeed` and subclasses.

        Every trigger funnels through here so the already-triggered
        guard in :meth:`succeed` can never be bypassed by a subclass
        scheduling itself directly (the historical :class:`Timeout`
        bug: it set ``_triggered`` by hand, so a later ``succeed``
        call would double-schedule the event instead of raising).
        """
        self._triggered = True
        self.value = value
        self.env._schedule(self, delay)
        return self

    def _trigger_at(self, value: Any, at: float) -> "Event":
        """Absolute-time twin of :meth:`_trigger` (same guard discipline)."""
        self._triggered = True
        self.value = value
        self.env._schedule_at(self, at)
        return self

    def _run_callbacks(self) -> None:
        self._processed = True
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self._triggered else "pending"
        return f"<Event {self.name or hex(id(self))} {state}>"


class Timeout(Event):
    """An event that fires a fixed delay after creation.

    Hot path: timeouts carry no eagerly-formatted name (the label is
    derived on demand in :meth:`__repr__`); naming every timeout cost
    one f-string per simulated operation.
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(env, name="timeout")
        self.delay = delay
        # Through the guarded trigger path (not a bare ``_triggered``
        # write): a Timeout is born triggered, and any later
        # ``succeed`` must raise instead of double-scheduling.
        self._trigger(value, delay)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self._processed else "scheduled"
        return f"<Timeout({self.delay:g}) {state}>"


class Deadline(Event):
    """An event that fires at an *absolute* simulation time.

    Chunk trains schedule their boundaries as deadlines rather than
    accumulated relative timeouts: ``fl(now + fl(t - now))`` is not
    ``t`` in floating point, so N relative hops would land the train's
    end a few ulps off the monolithic hold it refines.  A deadline
    pins every boundary to the exact float the train arithmetic
    produced, which is what makes an N-chunk train end bit-identically
    to the single hold it replaces (see :meth:`Resource.stream`).
    """

    __slots__ = ("at",)

    def __init__(self, env: "Environment", at: float, value: Any = None):
        if at < env.now:
            raise SimulationError(
                f"deadline {at!r} is in the past (now={env.now!r})")
        super().__init__(env, name="deadline")
        self.at = at
        # Guarded path, as for Timeout: born triggered, a later
        # ``succeed`` must raise instead of double-scheduling.
        self._trigger_at(value, at)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self._processed else "scheduled"
        return f"<Deadline({self.at:g}) {state}>"


class AllOf(Event):
    """Fires once every child event has fired."""

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, name="all_of")
        self._pending = 0
        events = list(events)
        for event in events:
            if event.processed:
                continue
            self._pending += 1
            event.callbacks.append(self._child_done)
        if self._pending == 0:
            self.succeed([e.value for e in events])
        else:
            self._children = events

    def _child_done(self, _event: Event) -> None:
        self._pending -= 1
        if self._pending == 0 and not self._triggered:
            self.succeed([e.value for e in self._children])


class Process(Event):
    """A running coroutine; itself an event that fires on completion."""

    def __init__(self, env: "Environment", generator: Generator, name: str = ""):
        super().__init__(env, name=name or getattr(generator, "__name__", "process"))
        self._generator = generator
        # Bootstrap: resume once at the current time.
        bootstrap = Event(env, name=f"start:{self.name}")
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed()

    def _resume(self, event: Event) -> None:
        send = self._generator.send
        value = event.value
        while True:
            try:
                target = send(value)
            except StopIteration as stop:
                if not self._triggered:
                    self.succeed(stop.value)
                return
            if not isinstance(target, Event):
                raise SimulationError(
                    f"process {self.name!r} yielded {target!r}; processes must yield Event objects"
                )
            if target.processed:
                # Already fired. When the environment certifies that no
                # other event is runnable right now (fast engine, sole
                # runner), a relay through the queue is a no-op and the
                # generator can be resumed inline - the callback-free
                # hot path. Otherwise resume via a relay event so the
                # ordering against same-time events stays deterministic.
                if self.env._can_inline():
                    value = target.value
                    continue
                relay = Event(self.env, name=f"relay:{self.name}")
                relay.callbacks.append(self._resume)
                relay.succeed(target.value)
            else:
                target.callbacks.append(self._resume)
            return


class Environment:
    """Simulation environment: clock plus event heap."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[tuple] = []
        self._sequence = 0

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        self._sequence += 1
        heapq.heappush(self._heap, (self.now + delay, self._sequence, event))

    def _schedule_at(self, event: Event, at: float) -> None:
        """Schedule at an absolute time (see :class:`Deadline`)."""
        self._sequence += 1
        heapq.heappush(self._heap, (at, self._sequence, event))

    # ------------------------------------------------------------------
    # Fast-path hooks (overridden by repro.sim.fastpath.FastEnvironment)
    # ------------------------------------------------------------------
    def _can_inline(self) -> bool:
        """Whether a processed-event relay may resume a process inline.

        The reference engine always answers ``False``: every resume
        goes through the event queue so same-time ordering is governed
        purely by schedule sequence numbers.
        """
        return False

    def coalesce_train(self, resource: "Resource", count: int,
                       total_ns: float) -> bool:
        """Try to collapse an N-chunk train into one analytic hold.

        The reference engine never coalesces (``False``: the caller
        simulates per chunk). :class:`~repro.sim.fastpath.FastEnvironment`
        coalesces exactly when it can prove nothing can interleave
        before the train's end - see its docstring for the safety
        argument.
        """
        return False

    def event(self, name: str = "") -> Event:
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def timeout_until(self, at: float, value: Any = None) -> Deadline:
        """An event firing at absolute time ``at`` (>= now)."""
        return Deadline(self, at, value)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name)

    def run(self, until: Optional[float] = None) -> float:
        """Execute events until the heap empties (or ``until`` is reached).

        Returns the final simulation time.
        """
        while self._heap:
            at, _seq, event = self._heap[0]
            if until is not None and at > until:
                self.now = until
                return self.now
            heapq.heappop(self._heap)
            self.now = at
            event._run_callbacks()
        return self.now

    def run_process(self, generator: Generator, name: str = "") -> Any:
        """Convenience: run a single process to completion, return its value."""
        process = self.process(generator, name)
        self.run()
        if not process.processed:
            raise SimulationError(f"process {process.name!r} deadlocked")
        return process.value


class Resource:
    """A counted FIFO resource (``capacity`` concurrent holders)."""

    def __init__(self, env: Environment, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._queue: deque = deque()
        # Utilization accounting.
        self._busy_time = 0.0
        self._last_change = 0.0

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queued(self) -> int:
        return len(self._queue)

    def _account(self) -> None:
        now = self.env.now
        self._busy_time += self._in_use * (now - self._last_change)
        self._last_change = now

    def busy_time(self) -> float:
        """Integral of holders over time (ns x holders), up to *now*."""
        self._account()
        return self._busy_time

    def request(self) -> Event:
        """Return an event that fires when the resource is granted."""
        self._account()
        grant = Event(self.env, name=f"grant:{self.name}")
        if self._in_use < self.capacity:
            self._in_use += 1
            grant.succeed()
        else:
            self._queue.append(grant)
        return grant

    def release(self) -> None:
        self._account()
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._queue:
            grant = self._queue.popleft()
            grant.succeed()
        else:
            self._in_use -= 1

    def use(self, duration: float) -> Generator:
        """Process fragment: acquire, hold for ``duration`` ns, release."""
        yield self.request()
        try:
            yield self.env.timeout(duration)
        finally:
            self.release()

    def stream(self, count: int, total_ns: float) -> Generator:
        """Process fragment: hold for ``count`` back-to-back chunks
        totalling ``total_ns``.

        Chunk ``k`` targets the *absolute* boundary ``anchor +
        total_ns * (k+1)/count``, where ``anchor`` is the time the
        first chunk was granted.  The final boundary is ``anchor +
        total_ns`` exactly (``count/count == 1.0`` and multiplication
        by 1.0 are exact in IEEE-754), so an uncontended N-chunk train
        ends on the *same float* as the monolithic ``stream(1,
        total_ns)`` hold it refines - chunk granularity changes event
        traffic, never results.  Boundaries are scheduled as
        :class:`Deadline` events: iterating relative timeouts would
        accumulate rounding and break that identity.

        If a competing holder delays a grant past its boundary, the
        train re-anchors at the grant time and the remaining chunks
        play out event by event from there - contention is arbitrated
        per chunk through the FIFO queue, exactly as ``count``
        sequential :meth:`use` calls would be.

        The environment may *coalesce* the whole train into one
        analytic hold when it can prove no other event could
        interleave before the train ends (see
        :meth:`Environment.coalesce_train`); the reference engine
        never does, so every chunk round-trips through the event heap.

        Returns ``(start, end)``: the time the first chunk was granted
        the resource and the time the last chunk released it.
        """
        if count < 0:
            raise SimulationError(f"negative stream count: {count}")
        if total_ns < 0:
            raise SimulationError(f"negative stream duration: {total_ns}")
        env = self.env
        if count == 0:
            return env.now, env.now
        start = env.now
        if env.coalesce_train(self, count, total_ns):
            # Coalesced: the environment advanced the clock and charged
            # the busy-time integral analytically (a grant would have
            # been immediate, so ``start`` is the pre-train clock).
            return start, env.now
        anchor = start
        granted = False
        for chunk in range(count):
            yield self.request()
            if not granted:
                anchor = start = env.now
                granted = True
            target = anchor + total_ns * ((chunk + 1) / count)
            if target < env.now:
                # A delayed grant pushed us past the boundary:
                # re-anchor so the remaining chunks keep their width.
                anchor = env.now - total_ns * (chunk / count)
                target = anchor + total_ns * ((chunk + 1) / count)
                if target < env.now:  # float guard on the re-anchor
                    target = env.now
            try:
                yield env.timeout_until(target)
            finally:
                self.release()
        return start, env.now
