"""Streaming-multiprocessor occupancy and throughput model.

Maps a kernel launch onto SMs: how many blocks are resident per SM
(limited by threads, shared memory, registers, and the hardware block
cap), how many SMs are active, the achievable memory-level parallelism
(which depends on resident threads), and the occupancy metric the
paper reports in Section 6.1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .hardware import GpuSpec
from .kernel import KernelDescriptor

# Threads needed per SM to keep the FP32 pipes fully fed (two warps per
# scheduler on A100-class parts).
FULL_UTILIZATION_THREADS = 128

# Per-SM load/store unit ceiling on sustained global-memory bandwidth.
PER_SM_BANDWIDTH_CAP = 8.0e9  # bytes/s

# Sustained global bandwidth one resident thread's outstanding loads
# generate through the register-file path. The benchmark kernels issue
# one dependent element at a time (Fig. 3's staging loop), so a thread
# sustains far below the LSU peak; ~4096 resident threads saturate the
# bandwidth these kernels can extract (this is what makes Fig. 11's
# block sweep flat and Fig. 12's thread sweep steep).
PER_THREAD_BANDWIDTH = 16.1e6  # bytes/s

# cp.async lets each thread keep several copies in flight, multiplying
# its effective memory-level parallelism.
ASYNC_MLP_FACTOR = 4.0

BYTES_PER_REGISTER = 4


@dataclass(frozen=True)
class Occupancy:
    """Residency of one kernel on the GPU."""

    blocks_per_sm: int
    active_sms: int
    resident_threads_per_sm: int
    limiter: str

    @property
    def concurrent_blocks(self) -> int:
        return self.blocks_per_sm * self.active_sms

    def occupancy_fraction(self, gpu: GpuSpec) -> float:
        """Resident warps / max warps, weighted by active SM share."""
        per_sm = self.resident_threads_per_sm / gpu.max_threads_per_sm
        return min(1.0, per_sm) * (self.active_sms / gpu.sm_count)

    def compute_throughput(self) -> float:
        """Block-cycles of work retired per GPU cycle per active SM."""
        return min(1.0, self.resident_threads_per_sm / FULL_UTILIZATION_THREADS)

    def memory_bandwidth(self, gpu: GpuSpec, pattern_efficiency: float,
                         use_async: bool = False,
                         thread_limited: bool = True) -> float:
        """Achievable global-memory load bandwidth (bytes/s) for this launch.

        ``thread_limited`` kernels (the naive one-element-per-thread
        staging loops of the benchmark suite) are additionally bounded
        by the memory-level parallelism their resident threads provide;
        tuned kernels with wide, pipelined loads are not.
        """
        roofline = gpu.hbm_bandwidth * pattern_efficiency
        if not thread_limited:
            return roofline
        per_thread = PER_THREAD_BANDWIDTH * (ASYNC_MLP_FACTOR if use_async else 1.0)
        per_sm = min(PER_SM_BANDWIDTH_CAP, self.resident_threads_per_sm * per_thread)
        return min(roofline, self.active_sms * per_sm)


def smem_per_block(desc: KernelDescriptor, use_async: bool) -> int:
    """Shared memory one block needs: static usage plus staging buffers.

    Synchronous staging needs one tile buffer; the async pipeline needs
    two (double buffering).
    """
    buffers = 2 if use_async else 1
    return desc.smem_static_bytes + buffers * desc.tile_bytes


def occupancy_for(desc: KernelDescriptor, gpu: GpuSpec,
                  smem_carveout_bytes: int, use_async: bool) -> Occupancy:
    """Compute block residency for a launch under a given smem carveout."""
    limits = {
        "threads": gpu.max_threads_per_sm // desc.threads_per_block,
        "blocks": gpu.max_blocks_per_sm,
    }
    need_smem = smem_per_block(desc, use_async)
    if need_smem > 0:
        limits["shared_memory"] = smem_carveout_bytes // need_smem
    reg_bytes = desc.registers_per_thread * desc.threads_per_block * BYTES_PER_REGISTER
    if reg_bytes > 0:
        limits["registers"] = gpu.register_file_bytes // reg_bytes

    limiter, blocks_per_sm = min(limits.items(), key=lambda item: item[1])
    # Even if a block's tile does not fit the carveout, the launch still
    # runs (the real compiler would spill or the programmer would shrink
    # tiles); residency bottoms out at one block per SM and the timing
    # model separately disables double-buffering overlap.
    blocks_per_sm = max(1, blocks_per_sm)

    # The hardware scheduler spreads blocks across SMs round-robin, so a
    # 64-block grid occupies 64 SMs with one block each - it never packs
    # them onto a handful of SMs.
    active_sms = min(gpu.sm_count, desc.blocks)
    resident_blocks = min(blocks_per_sm, math.ceil(desc.blocks / active_sms))
    resident_threads = resident_blocks * desc.threads_per_block
    return Occupancy(
        blocks_per_sm=blocks_per_sm,
        active_sms=active_sms,
        resident_threads_per_sm=resident_threads,
        limiter=limiter,
    )


def pipeline_fits(desc: KernelDescriptor, gpu: GpuSpec,
                  smem_carveout_bytes: int) -> bool:
    """Whether the async double buffer fits the shared-memory carveout.

    When it does not, cp.async degenerates to a single-buffer copy:
    all overhead, no overlap (Takeaway 5).
    """
    return smem_per_block(desc, use_async=True) <= smem_carveout_bytes
