"""Kernel-phase memoization.

:func:`repro.sim.timing.simulate_kernel` is a *pure* function of
``(descriptor, flags, system, calibration, carveout, residency)`` — it
draws no randomness and mutates nothing — so caching its results is
result-preserving by construction.  Sweeps re-simulate the same kernel
phase thousands of times (every iteration of every spec sharing a
workload/geometry hits the identical arguments); a :class:`PhaseMemo`
lets all of them share one evaluation.

A memo instance is *bound* to one ``(system, calibration)`` pair: the
pair cannot participate in the dict key because :class:`Calibration`
holds unhashable mapping fields.  Binding by equality (not identity) is
deliberate — ``default_system()`` returns a fresh instance per call.
Calls against a different environment fall through to the real
simulator (counted as ``bypasses``), so a mismatched memo can never
return a stale phase.

Invalidation rules (documented in docs/PERFORMANCE.md): a memo is only
ever valid for the environment it was created with, and both
:class:`~repro.sim.kernel.KernelDescriptor` and
:class:`~repro.sim.timing.ConfigFlags` are frozen dataclasses whose
*values* key the memo — editing a workload produces different
descriptors and therefore different entries, never stale hits.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

from .calibration import Calibration
from .hardware import SystemSpec
from .timing import simulate_kernel


class PhaseMemo:
    """In-process memo over :func:`simulate_kernel` for one environment.

    ``simulate`` is call-compatible with :func:`simulate_kernel` and is
    injected into :class:`~repro.sim.runtime.CudaRuntime` via its
    ``kernel_sim`` hook.  Thread-safe under CPython: the table is a
    plain dict (atomic get/set under the GIL); a racing miss at worst
    re-simulates a phase, never corrupts an entry, because every stored
    value is a frozen :class:`~repro.sim.timing.KernelExecution` equal
    to what any other thread would store.
    """

    def __init__(self, system: SystemSpec, calib: Calibration,
                 maxsize: int = 4096):
        self.system = system
        self.calib = calib
        self.maxsize = maxsize
        self._table: Dict[Tuple, object] = {}
        self.hits = 0
        self.misses = 0
        self.bypasses = 0
        self.seeded = 0

    def __len__(self) -> int:
        return len(self._table)

    def __contains__(self, key: Tuple) -> bool:
        """Whether a ``(desc, flags, carveout, residency)`` key is cached."""
        return key in self._table

    def seed(self, key: Tuple, execution) -> None:
        """Insert a precomputed phase (the vector engine's grid batcher).

        ``key`` must be the exact memo key shape ``(desc, flags,
        smem_carveout_bytes, resident_fraction)`` and ``execution`` must
        equal what :func:`simulate_kernel` would return for it —
        :func:`repro.sim.vecgrid.simulate_phase_grid` guarantees this
        bitwise (pinned by ``tests/sim/test_vecgrid_properties.py``).
        Seeds count separately from misses so sweep summaries can
        report grid-batched cells.
        """
        if len(self._table) >= self.maxsize:
            self._table.clear()
        self._table[key] = execution
        self.seeded += 1

    def matches(self, system: SystemSpec, calib: Calibration) -> bool:
        """Whether this memo is valid for the given environment."""
        return ((system is self.system or system == self.system)
                and (calib is self.calib or calib == self.calib))

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def stats(self) -> Tuple[int, int]:
        """(hits, misses) snapshot, for delta accounting."""
        return self.hits, self.misses

    def simulate(self, desc, flags, system, calib,
                 smem_carveout_bytes=None, resident_fraction: float = 0.0):
        """Memoized :func:`simulate_kernel`."""
        if not self.matches(system, calib):
            # Foreign environment: never serve from this memo.
            self.bypasses += 1
            return simulate_kernel(
                desc, flags, system, calib,
                smem_carveout_bytes=smem_carveout_bytes,
                resident_fraction=resident_fraction)
        key = (desc, flags, smem_carveout_bytes, resident_fraction)
        execution = self._table.get(key)
        if execution is not None:
            self.hits += 1
            return execution
        self.misses += 1
        execution = simulate_kernel(
            desc, flags, system, calib,
            smem_carveout_bytes=smem_carveout_bytes,
            resident_fraction=resident_fraction)
        if len(self._table) >= self.maxsize:
            # Sweeps see a few hundred distinct phases at most; a full
            # table means pathological churn, so start over rather than
            # tracking recency on the hot path.
            self._table.clear()
        self._table[key] = execution
        return execution


# ----------------------------------------------------------------------
# Process-local memo registry
# ----------------------------------------------------------------------
# Pool workers cannot share a coordinator-owned memo (pickling a memo
# per task would defeat it), so each process resolves its memo here by
# environment equality.  Bounded: sweeps use one environment almost
# always, sensitivity studies a handful.
_MEMOS: list = []
_MEMOS_CAP = 8
_MEMOS_LOCK = threading.Lock()


def phase_memo_for(system: SystemSpec, calib: Calibration) -> PhaseMemo:
    """The process-local :class:`PhaseMemo` for an environment."""
    for memo in _MEMOS:
        if memo.matches(system, calib):
            return memo
    with _MEMOS_LOCK:
        for memo in _MEMOS:  # re-check under the lock
            if memo.matches(system, calib):
                return memo
        memo = PhaseMemo(system, calib)
        if len(_MEMOS) >= _MEMOS_CAP:
            _MEMOS.pop(0)
        _MEMOS.append(memo)
        return memo


def clear_phase_memos() -> None:
    """Drop every process-local memo (tests and benchmarks)."""
    with _MEMOS_LOCK:
        _MEMOS.clear()
