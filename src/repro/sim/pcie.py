"""Host-device interconnect model.

The link is a counted resource (one slot per DMA copy engine); each
transfer holds an engine for its duration. Durations follow the
bandwidth model of the active path:

* explicit ``cudaMemcpy`` from pageable host memory pays the pageable
  staging penalty,
* UVM demand migration moves 64 KiB blocks at fault-limited bandwidth,
* UVM bulk prefetch streams at close to peak link bandwidth.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .calibration import Calibration
from .engine import Environment, Resource
from .hardware import SystemSpec


#: Upper bound on chunks per DMA train.  Bounds the reference engine's
#: per-chunk event cost on huge copies (a Mega-class 32 GiB memcpy at
#: 2 MiB granularity would otherwise be 16 K heap round-trips) while
#: matching the motivating scale: a 1 GiB copy at the default 2 MiB
#: ``chunk_bytes`` is exactly 512 chunks.  Above the cap the effective
#: chunk grows so the train stays at 512 uniform chunks.
MAX_TRAIN_CHUNKS = 512


class TransferKind(enum.Enum):
    """The host-device transfer paths, each with its own bandwidth."""

    H2D = "h2d"
    D2H = "d2h"
    H2D_PINNED = "h2d_pinned"
    D2H_PINNED = "d2h_pinned"
    MIGRATE_H2D = "uvm_migrate_h2d"
    MIGRATE_D2H = "uvm_migrate_d2h"
    PREFETCH = "uvm_prefetch"


@dataclass(frozen=True)
class TransferTiming:
    kind: TransferKind
    bytes: int
    duration_ns: float


class PcieLink:
    """The PCIe link with its DMA copy engines."""

    def __init__(self, env: Environment, system: SystemSpec, calib: Calibration):
        self.env = env
        self.system = system
        self.calib = calib
        self.engines = Resource(env, capacity=system.link.copy_engines, name="pcie")

    def effective_bandwidth(self, kind: TransferKind) -> float:
        """Bytes/s for one transfer kind (before host-placement effects)."""
        link = self.system.link
        uvm = self.system.uvm
        transfer = self.calib.transfer
        bandwidth = link.bandwidth
        if kind is TransferKind.H2D:
            bandwidth *= transfer.pageable_factor
        elif kind is TransferKind.D2H:
            bandwidth *= transfer.pageable_factor * transfer.d2h_bandwidth_factor
        elif kind is TransferKind.D2H_PINNED:
            # Page-locked memory: full DMA bandwidth, no staging copy.
            bandwidth *= transfer.d2h_bandwidth_factor
        elif kind in (TransferKind.MIGRATE_H2D, TransferKind.MIGRATE_D2H):
            bandwidth *= uvm.migration_bandwidth_factor
        elif kind is TransferKind.PREFETCH:
            bandwidth *= uvm.prefetch_bandwidth_factor
        return bandwidth

    def duration_parts(self, kind: TransferKind,
                       num_bytes: int) -> "tuple[float, float]":
        """``(fixed_ns, wire_unit_ns)`` decomposition of a transfer.

        ``duration_ns(kind, n, m) == fixed + wire_unit * m`` *bitwise*
        (same association order as the historical single expression),
        which lets batched replays (:mod:`repro.sim.vecgrid`) scale a
        whole axis of transfers by per-spec host-placement multipliers
        without re-entering this method per spec.
        """
        if num_bytes < 0:
            raise ValueError("negative transfer size")
        if num_bytes == 0:
            return 0.0, 0.0
        bandwidth = self.effective_bandwidth(kind)
        wire_unit_ns = num_bytes / bandwidth * 1e9
        explicit = kind in (TransferKind.H2D, TransferKind.D2H,
                            TransferKind.H2D_PINNED,
                            TransferKind.D2H_PINNED)
        call_ns = self.calib.transfer.memcpy_call_ns if explicit else 0.0
        return self.system.link.latency_ns + call_ns, wire_unit_ns

    def duration_ns(self, kind: TransferKind, num_bytes: int,
                    host_multiplier: float = 1.0) -> float:
        """Predicted duration of a transfer (excluding queueing)."""
        if num_bytes == 0:
            return 0.0
        fixed_ns, wire_unit_ns = self.duration_parts(kind, num_bytes)
        return fixed_ns + wire_unit_ns * host_multiplier

    def chunk_count(self, num_bytes: int) -> int:
        """DMA chunks for an explicit copy: ``ceil(bytes / chunk_bytes)``,
        clamped to [1, :data:`MAX_TRAIN_CHUNKS`]."""
        if num_bytes <= 0:
            return 1
        chunk = self.system.link.chunk_bytes
        return self.train_length(-(-num_bytes // chunk))  # ceil division

    @staticmethod
    def train_length(chunks: int) -> int:
        """Clamp a proposed train length to [1, :data:`MAX_TRAIN_CHUNKS`]."""
        if chunks < MAX_TRAIN_CHUNKS:
            return max(1, chunks)
        return MAX_TRAIN_CHUNKS

    def transfer(self, kind: TransferKind, num_bytes: int,
                 host_multiplier: float = 1.0, chunks: int = 1):
        """Process fragment: run one transfer through a copy engine.

        ``chunks > 1`` streams the copy as a train of that many
        boundary-scheduled DMA chunks (a pipelined ``cudaMemcpyAsync``
        submission: the driver splits the copy at ``chunk_bytes``
        granularity, UVM at fault-batch granularity) instead of one
        monolithic hold.  An *uncontended* train is bit-identical to
        ``chunks=1`` — same grant time, same release float (see
        :meth:`~repro.sim.engine.Resource.stream`) — but it arbitrates
        for the copy engine per chunk, so concurrent transfers
        interleave at chunk granularity exactly as real DMA engines
        do.  Chunk policy lives in the callers (:mod:`repro.sim.runtime`);
        the link executes whatever train it is handed.

        Returns (via the process protocol) a :class:`TransferTiming`.
        """
        duration = self.duration_ns(kind, num_bytes, host_multiplier)
        yield from self.engines.stream(max(1, chunks), duration)
        return TransferTiming(kind=kind, bytes=num_bytes, duration_ns=duration)
