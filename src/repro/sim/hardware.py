"""Hardware description of the simulated CPU-GPU heterogeneous system.

The default system mirrors Table 1 of the paper: a 64-core AMD EPYC
7742 host with 16 x 64 GB DDR4-3200 DIMMs, attached to an NVIDIA A100
(40 GB HBM2) over PCIe gen4 x16.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB


@dataclass(frozen=True)
class CpuSpec:
    """Host CPU and DRAM parameters."""

    name: str = "AMD EPYC 7742"
    cores: int = 64
    frequency_ghz: float = 3.2
    dram_channels: int = 16
    dram_chip_bytes: int = 64 * GIB
    dram_chip_bandwidth: float = 25.6e9  # bytes/s per channel (DDR4-3200)
    remote_chip_penalty: float = 0.45    # bandwidth factor when data spills to another chip

    @property
    def dram_total_bytes(self) -> int:
        return self.dram_channels * self.dram_chip_bytes

    @property
    def dram_bandwidth(self) -> float:
        return self.dram_channels * self.dram_chip_bandwidth


@dataclass(frozen=True)
class GpuSpec:
    """GPU device parameters (defaults: NVIDIA A100-40GB, SXM)."""

    name: str = "NVIDIA A100"
    sm_count: int = 108
    cores_per_sm: int = 64            # FP32 CUDA cores per SM
    frequency_ghz: float = 1.41
    hbm_bytes: int = 40 * GIB
    hbm_bandwidth: float = 1555e9     # bytes/s
    l2_bytes: int = 40 * MIB
    unified_l1_bytes: int = 192 * KIB  # unified L1/texture/shared per SM
    max_shared_mem_bytes: int = 164 * KIB  # max shared-memory carveout per SM
    default_shared_mem_bytes: int = 32 * KIB
    max_threads_per_sm: int = 2048
    max_threads_per_block: int = 1024
    max_blocks_per_sm: int = 32
    register_file_bytes: int = 256 * KIB
    warp_size: int = 32

    @property
    def total_cores(self) -> int:
        return self.sm_count * self.cores_per_sm

    @property
    def clock_ns(self) -> float:
        """Nanoseconds per GPU cycle."""
        return 1.0 / self.frequency_ghz

    def l1_bytes(self, shared_mem_bytes: int) -> int:
        """L1/texture capacity left after the shared-memory carveout."""
        if shared_mem_bytes < 0 or shared_mem_bytes > self.max_shared_mem_bytes:
            raise ValueError(
                f"shared-memory carveout {shared_mem_bytes} outside "
                f"[0, {self.max_shared_mem_bytes}]"
            )
        return self.unified_l1_bytes - shared_mem_bytes


@dataclass(frozen=True)
class LinkSpec:
    """Host-device interconnect (PCIe gen4 x16 by default)."""

    name: str = "PCIe 4.0 x16"
    bandwidth: float = 25.0e9        # effective bytes/s for large copies
    latency_ns: float = 1_500.0      # per-transfer initiation latency
    copy_engines: int = 2            # concurrent DMA engines
    chunk_bytes: int = 2 * MIB       # DMA chunk granularity


@dataclass(frozen=True)
class UvmSpec:
    """Unified-virtual-memory driver parameters."""

    page_bytes: int = 4 * KIB
    migration_block_bytes: int = 64 * KIB  # driver "vablock" granularity
    fault_batch_size: int = 64             # vablocks serviced per fault batch
    fault_service_ns: float = 4_200.0      # CPU-side servicing per batch
    fault_stall_ns: float = 1_100.0        # SM-side pipeline drain per batch
    migration_bandwidth_factor: float = 0.78  # demand migration vs peak link bw
    prefetch_bandwidth_factor: float = 0.96   # bulk prefetch vs peak link bw
    writeback_fraction: float = 1.0        # dirty output pages migrated back on host touch


@dataclass(frozen=True)
class SystemSpec:
    """The full heterogeneous system under study (Table 1)."""

    cpu: CpuSpec = field(default_factory=CpuSpec)
    gpu: GpuSpec = field(default_factory=GpuSpec)
    link: LinkSpec = field(default_factory=LinkSpec)
    uvm: UvmSpec = field(default_factory=UvmSpec)

    def with_gpu(self, **kwargs) -> "SystemSpec":
        return replace(self, gpu=replace(self.gpu, **kwargs))

    def with_link(self, **kwargs) -> "SystemSpec":
        return replace(self, link=replace(self.link, **kwargs))

    def with_uvm(self, **kwargs) -> "SystemSpec":
        return replace(self, uvm=replace(self.uvm, **kwargs))

    def describe(self) -> str:
        """Render a Table-1-style description of the system."""
        cpu, gpu = self.cpu, self.gpu
        lines = [
            f"CPU   {cpu.cores}x {cpu.name} @ {cpu.frequency_ghz:.1f} GHz",
            f"      {cpu.dram_channels}x {cpu.dram_chip_bytes // GIB} GB DDR4 "
            f"({cpu.dram_bandwidth / 1e9:.0f} GB/s aggregate)",
            f"GPU   {gpu.name} @ {int(gpu.frequency_ghz * 1000)} MHz, "
            f"{gpu.sm_count} SMs x {gpu.cores_per_sm} cores",
            f"      {gpu.hbm_bytes // GIB} GB HBM2 @ {gpu.hbm_bandwidth / 1e9:.0f} GB/s, "
            f"L2 {gpu.l2_bytes // MIB} MB, unified L1 {gpu.unified_l1_bytes // KIB} KB/SM",
            f"Link  {self.link.name} @ {self.link.bandwidth / 1e9:.0f} GB/s",
        ]
        return "\n".join(lines)


def default_system() -> SystemSpec:
    """The paper's evaluation platform (Table 1)."""
    return SystemSpec()
