"""Fast-path simulation engine.

:class:`FastEnvironment` is a drop-in :class:`~repro.sim.engine.Environment`
subclass that produces **bit-identical** timelines while skipping most of
the event-heap machinery on the hot path.  Three transformations, each
with an explicit safety argument:

1. **Immediate dispatch** — a zero-delay event is appended to a FIFO
   deque instead of the heap whenever the heap holds nothing at the
   current timestamp.  *Safety*: the reference engine orders same-time
   events by schedule sequence number, which for events scheduled at the
   same timestamp is exactly FIFO order.  The deque preserves FIFO, and
   the guard (``heap[0][0] > now``) guarantees no earlier-sequenced heap
   entry at ``now`` could be bypassed.  Events at strictly later times
   cannot run before an event at ``now`` in either engine.

2. **Inline resume** — when a process yields an already-processed event,
   the reference engine routes the resume through a zero-delay *relay*
   event so ordering against other same-time events stays deterministic.
   When the engine can certify the process is the *sole runner* (nothing
   queued at ``now``, and the event currently dispatching had no sibling
   callbacks), the relay is a provable no-op and the generator is resumed
   inline — no relay :class:`Event` allocation, no queue round-trip.

3. **Train coalescing** — ``Resource.stream(count, total)`` normally
   simulates ``count`` acquire/hold/release cycles with absolute
   boundary deadlines.  When the engine can prove *quiescence through
   the train's end* (immediate queue empty, no heap event at or before
   ``now + total``, the resource idle, sole runner), no second
   requester can possibly arrive during the train: nothing else is
   runnable, and nothing can *become* runnable before the train
   finishes.  The train is then collapsed into a single analytic hold:
   jump the clock to ``now + total`` — the exact float the per-chunk
   loop's final :class:`~repro.sim.engine.Deadline` lands on, because
   boundary ``k`` is ``anchor + total * (k+1)/count`` and the last
   factor is exactly ``1.0`` — and charge the busy-time integral in
   one step.  The moment any event exists inside the train window the
   engine falls back to per-chunk simulation, so contention semantics
   are preserved bit-for-bit.

The reference :class:`Environment` keeps answering "no" to every
fast-path hook, so ``--engine reference`` exercises the historical
event-by-event machinery unchanged.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Optional

from .engine import Environment, Event, Resource


class FastEnvironment(Environment):
    """Event-train-coalescing, inline-resuming simulation environment."""

    def __init__(self) -> None:
        super().__init__()
        # FIFO of zero-delay events certified to run next at ``now``.
        self._immediate: deque = deque()
        # True while ``run`` is draining events.
        self._dispatching = False
        # The active ``run(until=...)`` clamp (disables clock-advancing
        # fast paths that could overshoot it).
        self._until: Optional[float] = None
        # True when the event currently dispatching had at most one
        # callback, i.e. resuming its process inline cannot starve a
        # sibling callback of its turn at the current timestamp.
        self._inline_ok = True

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        if delay == 0.0 and (not self._heap or self._heap[0][0] > self.now):
            # No heap entry at the current timestamp can be bypassed;
            # FIFO deque order equals sequence order for same-time
            # events, so dispatch order matches the reference heap.
            self._immediate.append(event)
            return
        self._sequence += 1
        heapq.heappush(self._heap, (self.now + delay, self._sequence, event))

    def _schedule_at(self, event: Event, at: float) -> None:
        if at == self.now and (not self._heap or self._heap[0][0] > self.now):
            # Same certification as a zero-delay ``_schedule``.
            self._immediate.append(event)
            return
        self._sequence += 1
        heapq.heappush(self._heap, (at, self._sequence, event))

    # ------------------------------------------------------------------
    # Fast-path certifications
    # ------------------------------------------------------------------
    def _can_inline(self) -> bool:
        """Sole-runner check for resuming a process inline.

        True only when (a) the dispatching event had no sibling
        callbacks still owed a turn, and (b) nothing else is queued to
        run at the current timestamp.  Under those conditions the relay
        event the reference engine would schedule is guaranteed to be
        the very next thing dispatched, so skipping it is unobservable.
        """
        return (
            self._inline_ok
            and not self._immediate
            and (not self._heap or self._heap[0][0] > self.now)
        )

    def coalesce_train(self, resource: Resource, count: int,
                       total_ns: float) -> bool:
        """Collapse an uncontended N-chunk train into one analytic hold.

        Requires quiescence *through the train's end*: an empty
        immediate queue, an idle resource, a sole-runner dispatch, no
        ``until`` clamp, and no heap event at or before ``now +
        total_ns`` (strictly before-or-at: an event landing exactly on
        the train's end could tie-break differently than the reference
        per-chunk loop, so equality also bails).  Under those
        conditions nothing else can run — or become runnable — before
        the train finishes, so the per-chunk loop would execute
        ``count`` immediate grants and boundary deadlines back to
        back, ending on exactly ``now + total_ns`` (the final boundary
        is ``anchor + total_ns * 1.0``, and multiplying by 1.0 is
        exact).  One clock jump reproduces that float bit-for-bit.

        The busy-time integral is charged analytically (``+=
        total_ns``) rather than as ``count`` per-boundary differences;
        the telescoped float sum can differ from ``total_ns`` in the
        last ulp, but :meth:`Resource.busy_time` is a diagnostic
        integral with no model consumer (asserted by the differential
        battery over every observable output).
        """
        if not (
            self._dispatching
            and self._inline_ok
            and self._until is None
            and not self._immediate
            and resource._in_use == 0
            and not resource._queue
        ):
            return False
        end = self.now + total_ns
        if self._heap and self._heap[0][0] <= end:
            return False
        resource._account()  # the first request's accounting call
        resource._busy_time += total_ns
        self.now = end
        resource._last_change = end
        return True

    # ------------------------------------------------------------------
    # Dispatch loop
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        immediate = self._immediate
        heap = self._heap
        self._dispatching = True
        self._until = until
        try:
            while True:
                while immediate:
                    if until is not None and self.now > until:
                        # Mirror the reference clamp: events queued past
                        # ``until`` stay queued and the clock rests at
                        # the horizon.
                        self.now = until
                        return self.now
                    event = immediate.popleft()
                    self._inline_ok = len(event.callbacks) <= 1
                    event._run_callbacks()
                if not heap:
                    break
                at, _seq, event = heap[0]
                if until is not None and at > until:
                    self.now = until
                    return self.now
                heapq.heappop(heap)
                self.now = at
                self._inline_ok = len(event.callbacks) <= 1
                event._run_callbacks()
            return self.now
        finally:
            self._dispatching = False
            self._until = None
            self._inline_ok = True
