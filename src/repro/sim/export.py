"""Timeline export to the Chrome trace-event format.

``chrome://tracing`` / Perfetto can open the produced JSON, giving the
same kind of visual timeline Nsight Systems shows for the real runs the
paper profiled. Categories map to tracks: allocation and host work on
the CPU row, transfers on the copy-engine row, kernels on the GPU row.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from .trace import Timeline

# Trace-event "pid/tid" rows, one per hardware engine.
_TRACKS: Dict[str, Dict[str, Union[int, str]]] = {
    "allocation": {"pid": 1, "tid": 1, "track": "CPU (driver)"},
    "host": {"pid": 1, "tid": 2, "track": "CPU (app)"},
    "memcpy": {"pid": 2, "tid": 1, "track": "PCIe copy engines"},
    "gpu_kernel": {"pid": 3, "tid": 1, "track": "GPU SMs"},
}


def timeline_to_trace_events(timeline: Timeline) -> List[dict]:
    """Convert a timeline to a list of trace-event dicts.

    Durations are emitted as complete ("X") events with microsecond
    timestamps, per the trace-event spec.
    """
    events: List[dict] = []
    for name, track in _TRACKS.items():
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": track["pid"],
            "tid": track["tid"],
            "args": {"name": track["track"]},
        })
    for event in timeline.events:
        track = _TRACKS[event.category]
        events.append({
            "name": event.name,
            "cat": event.category,
            "ph": "X",
            "ts": event.start_ns / 1e3,
            "dur": event.duration_ns / 1e3,
            "pid": track["pid"],
            "tid": track["tid"],
        })
    return events


def export_chrome_trace(timeline: Timeline,
                        path: Union[str, Path]) -> Path:
    """Write a timeline as a chrome://tracing JSON file."""
    path = Path(path)
    payload = {
        "traceEvents": timeline_to_trace_events(timeline),
        "displayTimeUnit": "ms",
    }
    path.write_text(json.dumps(payload, indent=1))
    return path
