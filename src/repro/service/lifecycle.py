"""Graceful lifecycle for the sweep service: signals, drain, resume.

The contract ``repro serve`` makes to its operator:

* **SIGTERM/SIGINT drain** — stop admitting, settle every queued job
  as an explicit drained-skip (held requests get their partial
  response, not a hangup), give running batches a bounded grace
  period, then exit. Queued jobs keep their ``pending`` journal
  records: that file *is* the checkpoint.
* **Resume on restart** — ``--resume`` replays every ``pending``
  record through the scheduler under a dedicated tenant. Because runs
  are seeded purely from their spec coordinates and every engine is
  bit-identical, a resumed spec produces byte-for-byte the result the
  interrupted execution would have — restarts can change *when* work
  happens, never *what* it computes.
"""

from __future__ import annotations

import asyncio
import logging
import signal
from typing import Callable, Dict, Optional

from ..harness.executor import RunSpec
from .server import PENDING_STATUS, RESUME_TENANT, ReproService

logger = logging.getLogger(__name__)


def install_signal_handlers(loop: asyncio.AbstractEventLoop,
                            service: ReproService) -> bool:
    """SIGTERM/SIGINT -> graceful drain. Returns False where the loop
    cannot install handlers (non-main thread, exotic platforms)."""
    installed = True
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, service.request_shutdown)
        except (NotImplementedError, RuntimeError, ValueError):
            installed = False
    return installed


def spec_from_journal(record: Dict) -> Optional[RunSpec]:
    """Reconstruct the RunSpec a service journal record checkpointed.

    Returns ``None`` for records without a usable spec payload (e.g.
    hand-edited or pre-upgrade files) — the caller marks those
    unresumable instead of crashing the whole restart.
    """
    payload = record.get("spec")
    if not isinstance(payload, dict):
        return None
    try:
        return RunSpec(
            workload=payload["workload"], size=payload["size"],
            mode=payload["mode"],
            iteration=int(payload.get("iteration", 0)),
            base_seed=int(payload.get("base_seed", 1234)),
            blocks=payload.get("blocks"),
            threads=payload.get("threads"),
            smem_carveout_bytes=payload.get("smem_carveout_bytes"),
            seed_salt=str(payload.get("seed_salt", "")))
    except (KeyError, ValueError, TypeError):
        return None


async def resume_pending(service: ReproService) -> int:
    """Re-enqueue every journaled ``pending`` spec; returns the count.

    Keys are *recomputed* from the journaled spec: if the environment
    (hardware model, calibration, code version) changed across the
    restart, the old checkpoint is closed out as skipped and the spec
    re-runs under its current key — a stale key must never alias a
    fresh result.
    """
    entries = service.journal.latest_entries()
    if service.journal.last_salvaged:
        logger.warning("service journal: %d damaged line(s) salvaged "
                       "during resume", service.journal.last_salvaged)
    pending = []
    for key, record in entries.items():
        if record.get("status") != PENDING_STATUS:
            continue
        spec = spec_from_journal(record)
        if spec is None:
            service.journal.record(
                key, "skipped",
                error="unresumable journal record (no spec payload)")
            continue
        pending.append((key, spec))
    if not pending:
        return 0
    loop = asyncio.get_running_loop()
    keys = await loop.run_in_executor(
        None, service._keys_for, [spec for _, spec in pending])
    resumed = 0
    for (old_key, spec), key in zip(pending, keys):
        if key != old_key:
            service.journal.record(
                old_key, "skipped",
                error="environment changed across restart; re-keyed")
        _, created = service.scheduler.submit(RESUME_TENANT, spec, key,
                                              source="resume")
        if created and key != old_key:
            service.journal.record(key, PENDING_STATUS, spec=spec)
        resumed += 1
    logger.info("resumed %d pending spec(s) from %s", resumed,
                service.journal.path)
    return resumed


async def drain(service: ReproService) -> int:
    """The graceful exit: flush queues, bound in-flight work, close."""
    if service.draining:
        return 0
    service.draining = True
    flushed = await service.scheduler.drain(service.config.drain_grace_s)
    # Queued jobs settled as drained-skips above, so every held request
    # unblocks and writes its (partial) response before the listener
    # closes; close() then waits briefly for those handlers to flush.
    await service.close()
    logger.info("drained: %d queued spec(s) kept pending in %s "
                "(restart with --resume to finish them)", flushed,
                service.journal.path)
    return flushed


async def serve(service: ReproService,
                on_ready: Optional[Callable[[ReproService], None]] = None
                ) -> int:
    """Run the service until a shutdown signal; returns flushed count."""
    await service.start()
    install_signal_handlers(asyncio.get_running_loop(), service)
    if service.config.resume:
        await resume_pending(service)
    if on_ready is not None:
        on_ready(service)
    logger.info("repro service listening on %s:%s", service.config.host,
                service.port)
    await service.wait_stopped()
    return await drain(service)
