"""Admission control for the sweep service: bounded queues, 429s.

A long-running server must fail *sideways*, not down: when demand
exceeds capacity the right answer is a fast, explicit rejection that a
client can retry — never an unbounded queue that turns every request
into a timeout. This module owns that decision:

* :class:`AdmissionLimits` - the knobs (global pending-spec ceiling,
  concurrent-request ceiling, optional per-tenant pending cap);
* :class:`AdmissionController` - event-loop-confined accounting of
  admitted requests and their unsettled specs;
* :class:`AdmissionRejected` - carries the HTTP 429 + ``Retry-After``
  payload up to the server layer.

All counters are adjusted only from the asyncio event loop, so there
are no locks — the controller is plain bookkeeping, cheap enough to
consult on every request.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass(frozen=True)
class AdmissionLimits:
    """Ceilings the admission controller enforces.

    ``max_pending_specs`` bounds the total number of spec slots across
    all admitted, unfinished requests (queued + executing); it is the
    server's memory/latency backstop. ``max_requests`` bounds
    concurrently admitted requests. ``max_tenant_pending`` optionally
    caps one tenant's unsettled specs so a single bulk tenant cannot
    consume the whole global budget even before fair-share scheduling
    kicks in. ``retry_after_s`` is the hint returned with every 429.
    """

    max_pending_specs: int = 512
    max_requests: int = 64
    max_tenant_pending: Optional[int] = None
    retry_after_s: float = 1.0

    def __post_init__(self) -> None:
        if self.max_pending_specs < 1:
            raise ValueError("max_pending_specs must be >= 1")
        if self.max_requests < 1:
            raise ValueError("max_requests must be >= 1")
        if self.max_tenant_pending is not None \
                and self.max_tenant_pending < 1:
            raise ValueError("max_tenant_pending must be >= 1")
        if self.retry_after_s < 0:
            raise ValueError("retry_after_s must be >= 0")


class AdmissionRejected(Exception):
    """Load shed: the request was not admitted (HTTP 429)."""

    def __init__(self, reason: str, retry_after_s: float):
        self.reason = reason
        self.retry_after_s = retry_after_s
        super().__init__(reason)


@dataclass
class AdmissionStats:
    """Lifetime counters (exported on ``/stats``)."""

    admitted: int = 0
    rejected: int = 0
    shed_queue_full: int = 0
    shed_requests_full: int = 0
    shed_tenant_full: int = 0


class AdmissionController:
    """Tracks admitted work and sheds load past the configured limits.

    Lifecycle per request: :meth:`admit` (may raise
    :class:`AdmissionRejected`), then one :meth:`spec_settled` per spec
    as outcomes land, then :meth:`release` when the response is sent
    (idempotent accounting is the caller's job: exactly one release per
    successful admit, even on deadline expiry or drain).
    """

    def __init__(self, limits: Optional[AdmissionLimits] = None):
        self.limits = limits or AdmissionLimits()
        self.stats = AdmissionStats()
        self.pending_specs = 0
        self.inflight_requests = 0
        self.tenant_pending: Dict[str, int] = {}

    def admit(self, tenant: str, spec_count: int) -> None:
        """Admit ``spec_count`` specs for ``tenant`` or raise 429."""
        limits = self.limits
        if self.inflight_requests + 1 > limits.max_requests:
            self.stats.rejected += 1
            self.stats.shed_requests_full += 1
            raise AdmissionRejected(
                f"too many concurrent requests (limit "
                f"{limits.max_requests})", limits.retry_after_s)
        if self.pending_specs + spec_count > limits.max_pending_specs:
            self.stats.rejected += 1
            self.stats.shed_queue_full += 1
            raise AdmissionRejected(
                f"queue depth {self.pending_specs} + {spec_count} specs "
                f"exceeds limit {limits.max_pending_specs}",
                limits.retry_after_s)
        tenant_load = self.tenant_pending.get(tenant, 0)
        if limits.max_tenant_pending is not None \
                and tenant_load + spec_count > limits.max_tenant_pending:
            self.stats.rejected += 1
            self.stats.shed_tenant_full += 1
            raise AdmissionRejected(
                f"tenant {tenant!r} has {tenant_load} pending specs; "
                f"+{spec_count} exceeds per-tenant limit "
                f"{limits.max_tenant_pending}", limits.retry_after_s)
        self.stats.admitted += 1
        self.inflight_requests += 1
        self.pending_specs += spec_count
        self.tenant_pending[tenant] = tenant_load + spec_count

    def spec_settled(self, tenant: str, count: int = 1) -> None:
        """``count`` of the tenant's admitted specs reached an outcome."""
        self.pending_specs = max(0, self.pending_specs - count)
        remaining = self.tenant_pending.get(tenant, 0) - count
        if remaining > 0:
            self.tenant_pending[tenant] = remaining
        else:
            self.tenant_pending.pop(tenant, None)

    def release(self, tenant: str, unsettled: int = 0) -> None:
        """The request's response went out; return its admission slots.

        ``unsettled`` returns spec slots that never reached an outcome
        (deadline expiry, drain) in one step.
        """
        self.inflight_requests = max(0, self.inflight_requests - 1)
        if unsettled:
            self.spec_settled(tenant, unsettled)

    def snapshot(self) -> Dict:
        return {
            "pending_specs": self.pending_specs,
            "inflight_requests": self.inflight_requests,
            "tenants": dict(sorted(self.tenant_pending.items())),
            "admitted": self.stats.admitted,
            "rejected": self.stats.rejected,
            "shed": {
                "queue_full": self.stats.shed_queue_full,
                "requests_full": self.stats.shed_requests_full,
                "tenant_full": self.stats.shed_tenant_full,
            },
            "limits": {
                "max_pending_specs": self.limits.max_pending_specs,
                "max_requests": self.limits.max_requests,
                "max_tenant_pending": self.limits.max_tenant_pending,
            },
        }
