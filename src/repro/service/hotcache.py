"""In-memory hot LRU layer in front of the on-disk result cache.

The disk cache (:class:`repro.harness.executor.ResultCache`) makes warm
regenerations O(file read); a long-running server can do better for the
overlapping grids different tenants keep re-requesting — an LRU of
deserialized :class:`~repro.core.results.RunResult` objects keyed by the
same content-addressed key turns a repeat lookup into a dict hit with
zero IO and zero parsing.

Entries are immutable run results shared by reference; nothing in the
serving path mutates them (the same invariant the executor's program
memo relies on). Corruption handling stays where the bytes are: the
disk layer quarantines unreadable entries on read, the hot layer only
ever holds values that already parsed.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.results import RunResult


@dataclass
class HotCacheStats:
    """Hit/miss/eviction accounting for one :class:`HotCache`."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class HotCache:
    """Bounded LRU of finished runs, keyed by content-addressed key.

    Thread-safe: the asyncio event loop and the batch-executor threads
    both touch it. A ``capacity`` of 0 disables the layer (every get is
    a miss, puts are dropped) so the server can run hot-cache-free for
    A/B measurements without a second code path.
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.stats = HotCacheStats()
        self._entries: "OrderedDict[str, RunResult]" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: str) -> Optional["RunResult"]:
        with self._lock:
            run = self._entries.get(key)
            if run is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return run

    def put(self, key: str, run: "RunResult") -> None:
        if self.capacity == 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = run
                return
            while len(self._entries) >= self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
            self._entries[key] = run
            self.stats.stores += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
