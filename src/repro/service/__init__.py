"""Sweep-as-a-service: the long-running face of the sweep executor.

``repro serve`` wraps the cached, crash-contained
:class:`~repro.harness.executor.SweepExecutor` in a stdlib-only
asyncio HTTP server with the properties a shared deployment needs:
admission control with load shedding (429 + ``Retry-After``),
per-tenant fair-share scheduling, request deadlines with explicit
partial responses, in-flight dedup plus a hot LRU over the disk
cache, a circuit breaker that degrades to the reference engine, and a
SIGTERM drain that checkpoints to the sweep journal for bit-identical
``--resume``. See ``docs/SERVICE.md``.
"""

from .admission import (AdmissionController, AdmissionLimits,
                        AdmissionRejected)
from .hotcache import HotCache, HotCacheStats
from .lifecycle import drain, resume_pending, serve
from .scheduler import CircuitBreaker, FairShareScheduler, SpecJob
from .server import (PENDING_STATUS, RESUME_TENANT, SERVICE_JOURNAL,
                     BadRequest, ReproService, ServiceConfig)

__all__ = [
    "AdmissionController", "AdmissionLimits", "AdmissionRejected",
    "BadRequest", "CircuitBreaker", "FairShareScheduler", "HotCache",
    "HotCacheStats", "PENDING_STATUS", "RESUME_TENANT", "ReproService",
    "SERVICE_JOURNAL", "ServiceConfig", "SpecJob", "drain",
    "resume_pending", "serve",
]
