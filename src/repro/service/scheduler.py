"""Fair-share spec scheduling for the sweep service.

The serving unit is one *spec job*: a single grid cell identified by
its content-addressed cache key. Requests decompose into jobs, jobs
dedup by key (two tenants asking for the same cell share one
execution), and the scheduler assembles batches round-robin across
per-tenant queues — so a tenant that dumps a 10k-cell grid cannot
starve the tenant asking for 4 cells. Batches execute through the
existing :class:`~repro.harness.executor.SweepExecutor` (crash
containment, retries, per-spec timeouts, disk cache) in a bounded
thread pool; everything else in this module runs on the asyncio event
loop and needs no locks.

Failure containment is layered:

* a failing/hanging/crashing spec is contained by the executor and
  surfaces as a non-ok :class:`~repro.harness.resilience.SpecOutcome`;
* a batch whose executor call itself raises settles *its own* jobs as
  failed and nothing else — the loop, the other batches, and the
  server stay up;
* repeated executed-spec failures on the fast/vector engines trip the
  :class:`CircuitBreaker`, which falls the service back to the
  reference engine (bit-identical results, no phase memo / analytic
  machinery in the blast radius) until enough fallback successes argue
  for re-closing.
"""

from __future__ import annotations

import asyncio
import logging
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Set

from ..harness.resilience import SpecOutcome, SpecStatus, SweepOutcome

logger = logging.getLogger(__name__)


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------
class CircuitBreaker:
    """Trips from the configured engine to ``reference`` on failures.

    States: ``closed`` (configured engine), ``open`` (reference
    fallback), ``half_open`` (probing the configured engine again).
    Transitions count *executed* spec outcomes only — cache hits say
    nothing about engine health. With ``engine="reference"`` the
    breaker is inert (there is nothing to fall back to).
    """

    def __init__(self, engine: str, threshold: int = 5, recovery: int = 3):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if recovery < 1:
            raise ValueError("recovery must be >= 1")
        self.configured = engine
        self.threshold = threshold
        self.recovery = recovery
        self.state = "closed"
        self.consecutive_failures = 0
        self.fallback_successes = 0
        self.trips = 0

    @property
    def active(self) -> bool:
        return self.configured != "reference"

    def select(self) -> str:
        """The engine the next batch should run on."""
        if not self.active or self.state in ("closed", "half_open"):
            return self.configured
        return "reference"

    def record(self, outcome: SpecOutcome) -> None:
        """Feed one executed spec outcome into the state machine."""
        if not self.active or outcome.from_cache \
                or outcome.status is SpecStatus.SKIPPED:
            return
        failed = outcome.status is not SpecStatus.OK
        if self.state == "closed":
            if failed:
                self.consecutive_failures += 1
                if self.consecutive_failures >= self.threshold:
                    self._trip()
            else:
                self.consecutive_failures = 0
        elif self.state == "half_open":
            if failed:
                self._trip()
            else:
                self.state = "closed"
                self.consecutive_failures = 0
                logger.info("circuit breaker closed: %s engine healthy "
                            "again", self.configured)
        else:  # open: running on reference
            if not failed:
                self.fallback_successes += 1
                if self.fallback_successes >= self.recovery:
                    self.state = "half_open"

    def _trip(self) -> None:
        self.state = "open"
        self.trips += 1
        self.fallback_successes = 0
        self.consecutive_failures = 0
        logger.warning(
            "circuit breaker open: %s engine erroring; falling back to "
            "the reference engine (results stay bit-identical)",
            self.configured)

    def snapshot(self) -> Dict:
        return {"state": self.state, "configured": self.configured,
                "serving": self.select(), "trips": self.trips,
                "consecutive_failures": self.consecutive_failures,
                "fallback_successes": self.fallback_successes}


# ----------------------------------------------------------------------
# Spec jobs
# ----------------------------------------------------------------------
@dataclass
class SpecJob:
    """One deduplicated unit of execution: a spec behind its cache key."""

    key: str
    spec: object  # RunSpec (kept untyped to avoid the executor import)
    tenant: str
    future: "asyncio.Future[SpecOutcome]"
    waiters: int = 0
    queued: bool = True
    cancelled: bool = False
    #: Settled by a drain (kept ``pending`` in the journal for resume).
    drained: bool = False
    source: str = "request"  # "request" | "resume"
    tenants: Set[str] = field(default_factory=set)

    @property
    def done(self) -> bool:
        return self.future.done()


@dataclass
class SchedulerStats:
    """Lifetime counters (exported on ``/stats``)."""

    submitted: int = 0
    dedup_hits: int = 0
    batches: int = 0
    executed: int = 0
    settled_ok: int = 0
    settled_failed: int = 0
    cancelled: int = 0
    batch_errors: int = 0


ExecuteBatch = Callable[[List, str], SweepOutcome]
SettleHook = Callable[[SpecJob, SpecOutcome], None]


class FairShareScheduler:
    """Round-robin-over-tenants batch scheduler with in-flight dedup.

    ``execute_batch(specs, engine)`` is the blocking bridge into the
    sweep executor; it runs in a thread pool of ``slots`` workers, so
    at most ``slots`` batches execute concurrently. Everything else —
    submit, batch assembly, settlement — happens on the event loop.
    """

    def __init__(self, execute_batch: ExecuteBatch,
                 breaker: Optional[CircuitBreaker] = None,
                 batch_size: int = 8, slots: int = 2,
                 on_settle: Optional[SettleHook] = None):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if slots < 1:
            raise ValueError("slots must be >= 1")
        self.execute_batch = execute_batch
        self.breaker = breaker or CircuitBreaker("reference")
        self.batch_size = batch_size
        self.slots = slots
        self.on_settle = on_settle
        self.stats = SchedulerStats()
        self.draining = False
        self._queues: "OrderedDict[str, Deque[SpecJob]]" = OrderedDict()
        self._rotation: Deque[str] = deque()
        self._inflight: Dict[str, SpecJob] = {}
        self._running_batches: Set[asyncio.Task] = set()
        self._free_slots = slots
        self._idle = asyncio.Event()
        self._idle.set()

    # ------------------------------------------------------------------
    # Submission / dedup
    # ------------------------------------------------------------------
    def submit(self, tenant: str, spec, key: str,
               source: str = "request") -> "tuple[SpecJob, bool]":
        """Enqueue a spec (or join the identical in-flight one).

        Returns ``(job, created)``: ``created`` is False when the key
        deduplicated onto an execution another request already owns —
        the new tenant simply becomes one more waiter on its future.
        """
        self.stats.submitted += 1
        job = self._inflight.get(key)
        if job is not None and not job.cancelled:
            self.stats.dedup_hits += 1
            job.waiters += 1
            job.tenants.add(tenant)
            return job, False
        loop = asyncio.get_running_loop()
        job = SpecJob(key=key, spec=spec, tenant=tenant,
                      future=loop.create_future(), waiters=1,
                      source=source, tenants={tenant})
        self._inflight[key] = job
        queue = self._queues.get(tenant)
        if queue is None:
            queue = self._queues[tenant] = deque()
            self._rotation.append(tenant)
        queue.append(job)
        self._idle.clear()
        self.pump()
        return job, True

    def abandon(self, job: SpecJob) -> bool:
        """A waiter (deadline-expired request) walks away from a job.

        When the last waiter leaves a still-queued job, the job is
        cancelled: settled as SKIPPED, removed from the dedup map so a
        later identical request re-executes it. Jobs already handed to
        a batch always run to completion (their result still lands in
        the caches). Resume jobs have no request waiters and are never
        abandoned. Returns whether the job was cancelled.
        """
        job.waiters = max(0, job.waiters - 1)
        if job.waiters > 0 or not job.queued or job.done \
                or job.source == "resume":
            return False
        job.cancelled = True
        job.queued = False
        self._inflight.pop(job.key, None)
        self.stats.cancelled += 1
        self._settle(job, SpecOutcome(
            spec=job.spec, index=0, status=SpecStatus.SKIPPED,
            error="abandoned: request deadline expired", key=job.key))
        return True

    # ------------------------------------------------------------------
    # Batch assembly + dispatch
    # ------------------------------------------------------------------
    def queued_jobs(self) -> int:
        return sum(len(queue) for queue in self._queues.values())

    @property
    def inflight_keys(self) -> int:
        return len(self._inflight)

    def _next_batch(self) -> List[SpecJob]:
        """Up to ``batch_size`` jobs, one per tenant per rotation turn."""
        batch: List[SpecJob] = []
        spins_left = len(self._rotation)
        while len(batch) < self.batch_size and self._rotation:
            tenant = self._rotation[0]
            queue = self._queues.get(tenant)
            job = None
            while queue and job is None:
                candidate = queue.popleft()
                if not candidate.cancelled:
                    job = candidate
            if not queue:
                self._rotation.popleft()
                self._queues.pop(tenant, None)
            else:
                self._rotation.rotate(-1)
            if job is not None:
                job.queued = False
                batch.append(job)
                spins_left = len(self._rotation)
            else:
                spins_left -= 1
                if spins_left <= 0 and not any(self._queues.values()):
                    break
        return batch

    def pump(self) -> None:
        """Launch batches while slots are free and work is queued."""
        if self.draining:
            return
        while self._free_slots > 0 and self.queued_jobs() > 0:
            batch = self._next_batch()
            if not batch:
                break
            self._free_slots -= 1
            task = asyncio.get_running_loop().create_task(
                self._run_batch(batch))
            self._running_batches.add(task)
            task.add_done_callback(self._running_batches.discard)
        # Abandoned jobs stay in their queues until assembly skips
        # them; if the sweep above consumed only cancelled stragglers,
        # the scheduler may have just gone idle without any batch
        # completion to notice it.
        if self.queued_jobs() == 0 and self._free_slots == self.slots:
            self._idle.set()

    async def _run_batch(self, jobs: List[SpecJob]) -> None:
        engine = self.breaker.select()
        self.stats.batches += 1
        loop = asyncio.get_running_loop()
        specs = [job.spec for job in jobs]
        try:
            outcome = await loop.run_in_executor(
                None, self.execute_batch, specs, engine)
            outcomes = list(outcome.outcomes)
            if len(outcomes) != len(jobs):  # defensive: torn batch
                raise RuntimeError(
                    f"batch returned {len(outcomes)} outcomes for "
                    f"{len(jobs)} jobs")
        except Exception as error:
            # Containment: a broken batch degrades its own jobs to
            # failures; the process, the loop, and every other batch
            # keep running.
            self.stats.batch_errors += 1
            logger.exception("batch of %d specs failed wholesale", len(jobs))
            for job in jobs:
                self.breaker.record(self._settle(job, SpecOutcome(
                    spec=job.spec, index=0, status=SpecStatus.FAILED,
                    error=f"batch execution error: "
                          f"{type(error).__name__}: {error}",
                    key=job.key)))
        else:
            for job, spec_outcome in zip(jobs, outcomes):
                self.stats.executed += 1
                self.breaker.record(
                    self._settle(job, spec_outcome))
        finally:
            self._free_slots += 1
            if self.queued_jobs() == 0 and self._free_slots == self.slots:
                self._idle.set()
            self.pump()

    def _settle(self, job: SpecJob, outcome: SpecOutcome) -> SpecOutcome:
        if outcome.status is SpecStatus.OK:
            self.stats.settled_ok += 1
        elif not job.cancelled:
            self.stats.settled_failed += 1
        self._inflight.pop(job.key, None)
        if not job.future.done():
            job.future.set_result(outcome)
        if self.on_settle is not None:
            try:
                self.on_settle(job, outcome)
            except Exception:  # pragma: no cover - hook bugs stay local
                logger.exception("on_settle hook failed for %s", job.key)
        return outcome

    # ------------------------------------------------------------------
    # Drain
    # ------------------------------------------------------------------
    async def drain(self, grace_s: float = 30.0) -> int:
        """Stop scheduling, flush queued jobs as drained, await batches.

        Queued jobs settle as SKIPPED with a ``draining`` error so held
        requests get an explicit partial response; their journal
        records stay ``pending`` (the settle hook skips drained jobs),
        which is exactly what ``--resume`` replays after restart.
        Running batches get ``grace_s`` to finish; the method returns
        the number of queued jobs it flushed.
        """
        self.draining = True
        flushed = 0
        for queue in self._queues.values():
            while queue:
                job = queue.popleft()
                if job.cancelled:
                    continue
                job.queued = False
                job.drained = True
                flushed += 1
                self._settle(job, SpecOutcome(
                    spec=job.spec, index=0, status=SpecStatus.SKIPPED,
                    error="skipped: server draining (journaled pending; "
                          "rerun after restart --resume)", key=job.key))
        self._queues.clear()
        self._rotation.clear()
        if self._running_batches:
            await asyncio.wait(set(self._running_batches), timeout=grace_s)
        return flushed

    async def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until no queued jobs and no running batches."""
        try:
            await asyncio.wait_for(self._idle.wait(), timeout=timeout)
            return True
        except asyncio.TimeoutError:
            return False

    def snapshot(self) -> Dict:
        return {
            "queued_jobs": self.queued_jobs(),
            "inflight_keys": self.inflight_keys,
            "running_batches": len(self._running_batches),
            "free_slots": self._free_slots,
            "tenants_queued": list(self._rotation),
            "submitted": self.stats.submitted,
            "dedup_hits": self.stats.dedup_hits,
            "batches": self.stats.batches,
            "executed": self.stats.executed,
            "settled_ok": self.stats.settled_ok,
            "settled_failed": self.stats.settled_failed,
            "cancelled": self.stats.cancelled,
            "batch_errors": self.stats.batch_errors,
            "breaker": self.breaker.snapshot(),
        }
