"""``repro serve``: the asyncio sweep server.

A deliberately small HTTP/1.1 server built on ``asyncio.start_server``
(stdlib only — no framework), exposing the sweep executor as a
long-running, multi-tenant service:

* ``POST /sweep``  - run a :class:`~repro.harness.executor.RunSpec`
  grid; the request decomposes into per-spec jobs that dedup against
  identical in-flight work, schedule fairly across tenants, and settle
  through the cached, crash-contained
  :class:`~repro.harness.executor.SweepExecutor`;
* ``GET /healthz`` - liveness (always 200 while the process serves);
* ``GET /readyz``  - readiness (503 once draining);
* ``GET /stats``   - admission / scheduler / cache counters.

Responses mirror the CLI's exit-code semantics: a fully satisfied
request returns 200, a partial one (deadline expiry, failed specs,
drain) returns 206 with every gap explicitly annotated — the HTTP
analogue of ``repro sweep``'s exit code 3. Overload returns 429 with
``Retry-After`` (admission control), drain returns 503, and any
internal error is contained to a 500 for that one request: the serving
loop itself never dies with a client.
"""

from __future__ import annotations

import asyncio
import functools
import json
import logging
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..core.configs import ALL_MODES, TransferMode
from ..harness.executor import (ResultCache, RunSpec, SweepExecutor,
                                cache_key, default_cache_dir,
                                environment_fingerprint, expand_grid)
from ..harness.resilience import RetryPolicy, SweepJournal, SweepOutcome
from ..harness.store import run_to_record
from .admission import (AdmissionController, AdmissionLimits,
                        AdmissionRejected)
from .hotcache import HotCache
from .scheduler import CircuitBreaker, FairShareScheduler, SpecJob

logger = logging.getLogger(__name__)

#: The service's journal file, beside the result cache. Distinct from
#: the CLI sweep journal so an operator can run both against one cache.
SERVICE_JOURNAL = "service-journal.jsonl"

#: Journal status for admitted-but-unsettled specs (a plain string on
#: purpose: :class:`~repro.harness.resilience.SpecStatus` stays the
#: executor's terminal-state vocabulary).
PENDING_STATUS = "pending"

#: Tenant label for jobs replayed from the journal on ``--resume``.
RESUME_TENANT = "__resume__"

_REASONS = {200: "OK", 206: "Partial Content", 400: "Bad Request",
            404: "Not Found", 405: "Method Not Allowed",
            413: "Payload Too Large", 429: "Too Many Requests",
            500: "Internal Server Error", 503: "Service Unavailable"}


class BadRequest(ValueError):
    """Client error: malformed request line, JSON, or spec payload."""


@dataclass(frozen=True)
class ServiceConfig:
    """Every knob of one :class:`ReproService` instance."""

    host: str = "127.0.0.1"
    port: int = 8023
    #: Batch-executor shape: ``jobs`` workers per batch, ``slots``
    #: concurrent batches, up to ``batch_size`` specs per batch.
    jobs: int = 1
    backend: str = "process"
    engine: str = "reference"
    slots: int = 2
    batch_size: int = 8
    retries: int = 1
    timeout_s: Optional[float] = 30.0
    limits: AdmissionLimits = field(default_factory=AdmissionLimits)
    #: Default per-request deadline when the client sends none
    #: (``None`` waits indefinitely — not recommended for production).
    default_deadline_s: Optional[float] = 60.0
    drain_grace_s: float = 30.0
    cache_dir: Optional[Path] = None
    hot_capacity: int = 4096
    resume: bool = False
    breaker_threshold: int = 5
    breaker_recovery: int = 3
    max_body_bytes: int = 4 * 1024 * 1024
    request_read_timeout_s: float = 10.0
    #: > 0 hands every scheduler batch to the distributed fabric
    #: (:func:`repro.fabric.run_fabric`) with this many worker
    #: processes instead of an in-process executor pool; batches then
    #: survive worker SIGKILLs and stragglers via lease recovery
    #: (docs/FABRIC.md). 0 keeps the classic isolated-executor path.
    fabric_workers: int = 0

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.fabric_workers < 0:
            raise ValueError("fabric_workers must be >= 0")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be > 0")
        if self.default_deadline_s is not None \
                and self.default_deadline_s <= 0:
            raise ValueError("default_deadline_s must be > 0")
        if self.drain_grace_s < 0:
            raise ValueError("drain_grace_s must be >= 0")
        if self.max_body_bytes < 1:
            raise ValueError("max_body_bytes must be >= 1")


class ReproService:
    """One sweep-serving process: HTTP front end + fair-share backend.

    Wiring: requests admit through the :class:`AdmissionController`,
    decompose into content-addressed spec jobs, check the
    :class:`HotCache`, then join the :class:`FairShareScheduler`. The
    scheduler executes batches through a fresh crash-isolated
    :class:`~repro.harness.executor.SweepExecutor` per batch (process
    backend by default, so hang/crash faults are contained and timed
    out exactly as in CLI sweeps); every admitted spec is journaled
    ``pending`` at admission and terminally on settle, giving SIGTERM
    drains a checkpoint that ``--resume`` replays bit-identically.
    """

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig()
        self.cache_root = (Path(self.config.cache_dir)
                           if self.config.cache_dir else default_cache_dir())
        self.disk_cache = ResultCache(self.cache_root)
        self.hot = HotCache(self.config.hot_capacity)
        self.admission = AdmissionController(self.config.limits)
        self.journal = SweepJournal(self.cache_root / SERVICE_JOURNAL,
                                    durable=True)
        self.breaker = CircuitBreaker(self.config.engine,
                                      threshold=self.config.breaker_threshold,
                                      recovery=self.config.breaker_recovery)
        self.scheduler = FairShareScheduler(
            self._execute_batch, breaker=self.breaker,
            batch_size=self.config.batch_size, slots=self.config.slots,
            on_settle=self._on_settle)
        self.draining = False
        self.requests = 0
        self.port: Optional[int] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._stop = asyncio.Event()
        self._handlers: set = set()
        self._env_fp: Optional[str] = None
        self._key_memo: Dict[RunSpec, str] = {}

    # ------------------------------------------------------------------
    # Backend bridge (runs in a worker thread)
    # ------------------------------------------------------------------
    def _execute_batch(self, specs: List[RunSpec],
                       engine: str) -> SweepOutcome:
        """One scheduler batch through a fresh, isolated executor.

        ``isolate=True`` forces the pool path even for a one-spec
        batch, so a crashing spec SIGKILLs a disposable worker process,
        never this server. The executor journals nothing (the service
        journal is per-job, written by :meth:`_on_settle`); it shares
        the service's disk cache so results are content-addressed
        exactly as CLI sweeps write them.

        With ``fabric_workers > 0`` the batch is handed to the
        distributed fabric instead (:meth:`_execute_batch_fabric`).
        """
        if self.config.fabric_workers > 0:
            return self._execute_batch_fabric(specs, engine)
        executor = SweepExecutor(
            jobs=self.config.jobs, cache=self.disk_cache,
            backend=self.config.backend,
            retry=RetryPolicy(retries=self.config.retries,
                              timeout_s=self.config.timeout_s),
            engine=engine, isolate=True)
        return executor.run_outcomes(specs, strict=False)

    def _execute_batch_fabric(self, specs: List[RunSpec],
                              engine: str) -> SweepOutcome:
        """One scheduler batch through the distributed sweep fabric.

        Each batch gets its own fabric root under the service cache
        directory, named by the batch's content (a root is one sweep,
        forever) — a re-dispatched identical batch after a restart
        reuses the same root and replays from its journal + cache.
        Results are copied into the service disk cache afterwards
        (``put`` is first-commit-wins, so double publishes are
        harmless) to keep hot-cache refills and later CLI sweeps on
        the usual content-addressed path.
        """
        import hashlib

        from ..fabric import FabricMeta, run_fabric
        keys = self._keys_for(specs)
        digest = hashlib.sha256("\n".join(keys).encode()).hexdigest()[:16]
        root = self.cache_root / "fabric" / digest
        outcome = run_fabric(
            specs, root, workers=self.config.fabric_workers,
            structure="figure", meta=FabricMeta(engine=engine))
        for key, spec_outcome in zip(keys, outcome):
            if spec_outcome.ok and spec_outcome.result is not None:
                self.disk_cache.put(key, spec_outcome.result)
        return outcome

    def _on_settle(self, job: SpecJob, outcome) -> None:
        """Scheduler settle hook: hot-cache fill + terminal journal."""
        if outcome.ok and outcome.result is not None:
            self.hot.put(job.key, outcome.result)
        if job.drained:
            # A drained job's ``pending`` record *is* the checkpoint
            # --resume replays; writing a terminal line would erase it.
            return
        self.journal.record(job.key, outcome.status, spec=job.spec,
                            attempts=outcome.attempts, error=outcome.error)

    def _keys_for(self, specs: List[RunSpec]) -> List[str]:
        """Content-addressed keys (blocking: builds programs once)."""
        if self._env_fp is None:
            self._env_fp = environment_fingerprint()
        if len(self._key_memo) > 65536:
            self._key_memo.clear()
        keys = []
        for spec in specs:
            key = self._key_memo.get(spec)
            if key is None:
                key = cache_key(spec, env_fingerprint=self._env_fp)
                self._key_memo[spec] = key
            keys.append(key)
        return keys

    # ------------------------------------------------------------------
    # Lifecycle surface (driven by repro.service.lifecycle)
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port)
        self.port = self._server.sockets[0].getsockname()[1]

    def request_shutdown(self) -> None:
        """Signal-handler entry: begin the graceful drain."""
        self._stop.set()

    async def wait_stopped(self) -> None:
        await self._stop.wait()

    async def close(self) -> None:
        """Stop accepting, then give open handlers a moment to flush."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        open_handlers = {task for task in self._handlers if not task.done()}
        if open_handlers:
            await asyncio.wait(open_handlers, timeout=5.0)

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        try:
            try:
                method, path, body = await asyncio.wait_for(
                    self._read_request(reader),
                    timeout=self.config.request_read_timeout_s)
            except BadRequest as error:
                await self._respond(writer, 400, {"error": str(error)})
                return
            except (asyncio.TimeoutError, asyncio.IncompleteReadError,
                    ConnectionError):
                return  # client went away or dribbled; nothing to answer
            try:
                status, payload, headers = await self._dispatch(
                    method, path, body)
            except AdmissionRejected as error:
                retry_after = max(0.0, error.retry_after_s)
                status, payload = 429, {"error": error.reason,
                                        "retry_after_s": retry_after}
                headers = {"Retry-After": f"{retry_after:g}"}
            except BadRequest as error:
                status, payload, headers = 400, {"error": str(error)}, {}
            except Exception:
                # Containment: one broken request is one 500; the
                # accept loop and every other request keep going.
                logger.exception("request handler failed (%s %s)",
                                 method, path)
                status, payload, headers = 500, {
                    "error": "internal error (contained; see server log)"}, {}
            await self._respond(writer, status, payload, headers)
        finally:
            if task is not None:
                self._handlers.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:  # pragma: no cover - peer already gone
                pass

    async def _read_request(self, reader: asyncio.StreamReader
                            ) -> Tuple[str, str, bytes]:
        line = await reader.readline()
        if not line:
            raise ConnectionError("empty request")
        parts = line.decode("latin-1").split()
        if len(parts) != 3:
            raise BadRequest("malformed request line")
        method, target, _version = parts
        headers: Dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        raw_length = headers.get("content-length", "0") or "0"
        try:
            length = int(raw_length)
        except ValueError:
            raise BadRequest(
                f"invalid Content-Length {raw_length!r}") from None
        if length < 0:
            raise BadRequest("negative Content-Length")
        if length > self.config.max_body_bytes:
            raise BadRequest(
                f"body of {length} bytes exceeds the "
                f"{self.config.max_body_bytes}-byte limit")
        body = await reader.readexactly(length) if length else b""
        return method, target.split("?", 1)[0], body

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       payload: Dict,
                       headers: Optional[Dict[str, str]] = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        lines = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
                 "Content-Type: application/json",
                 f"Content-Length: {len(body)}",
                 "Connection: close"]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        try:
            writer.write(head + body)
            await writer.drain()
        except (ConnectionError, RuntimeError):  # pragma: no cover
            pass  # client vanished mid-response; its problem, not ours

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _dispatch(self, method: str, path: str, body: bytes
                        ) -> Tuple[int, Dict, Dict[str, str]]:
        if method == "GET":
            if path == "/healthz":
                return 200, {"status": "ok", "draining": self.draining}, {}
            if path == "/readyz":
                if self.draining:
                    return 503, {"status": "draining"}, {"Retry-After": "5"}
                return 200, {"status": "ready"}, {}
            if path == "/stats":
                return 200, self.snapshot(), {}
            return 404, {"error": f"no such resource {path!r}"}, {}
        if method == "POST":
            if path == "/sweep":
                return await self._handle_sweep(body)
            return 404, {"error": f"no such resource {path!r}"}, {}
        return 405, {"error": f"method {method} not supported"}, {}

    # ------------------------------------------------------------------
    # POST /sweep
    # ------------------------------------------------------------------
    async def _handle_sweep(self, body: bytes
                            ) -> Tuple[int, Dict, Dict[str, str]]:
        if self.draining:
            return 503, {"error": "server draining; retry after restart"}, \
                {"Retry-After": "5"}
        self.requests += 1
        try:
            payload = json.loads(body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, ValueError):
            raise BadRequest("request body is not valid JSON") from None
        if not isinstance(payload, dict):
            raise BadRequest("request body must be a JSON object")
        tenant = str(payload.get("tenant") or "anonymous")
        deadline_s = self._parse_deadline(payload)
        specs = self._parse_specs(payload)
        if not specs:
            raise BadRequest("request expands to zero runnable specs")

        started = time.monotonic()
        self.admission.admit(tenant, len(specs))  # may raise -> 429
        try:
            loop = asyncio.get_running_loop()
            keys = await loop.run_in_executor(None, self._keys_for, specs)
        except Exception as error:
            self.admission.release(tenant, unsettled=len(specs))
            raise BadRequest(
                f"cannot resolve specs: {type(error).__name__}: "
                f"{error}") from error
        if self.draining:  # the drain began while we computed keys
            self.admission.release(tenant, unsettled=len(specs))
            return 503, {"error": "server draining; retry after restart"}, \
                {"Retry-After": "5"}

        # Decompose: hot hits settle immediately; everything else joins
        # the scheduler (dedup'ing onto identical in-flight jobs). No
        # awaits in this loop, so the drain cannot interleave.
        slots: List[Tuple[str, object, str, RunSpec]] = []
        for spec, key in zip(specs, keys):
            run = self.hot.get(key)
            if run is not None:
                self.admission.spec_settled(tenant)
                slots.append(("hot", run, key, spec))
                continue
            job, created = self.scheduler.submit(tenant, spec, key)
            job.future.add_done_callback(
                functools.partial(self._spec_settled, tenant))
            if created:
                self.journal.record(key, PENDING_STATUS, spec=spec)
            slots.append(("job", job, key, spec))

        futures = {job.future for kind, job, _, _ in slots
                   if kind == "job"}
        expired: set = set()
        if futures:
            remaining = None
            if deadline_s is not None:
                remaining = max(0.0, deadline_s
                                - (time.monotonic() - started))
            _, still_pending = await asyncio.wait(futures,
                                                  timeout=remaining)
            expired = still_pending

        entries: List[Dict] = []
        counts: Dict[str, int] = {}
        for kind, item, key, spec in slots:
            if kind == "hot":
                entry = {"status": "ok", "cache": "hot", "key": key,
                         "record": run_to_record(item, with_counters=True)}
            else:
                job = item
                if job.future in expired:
                    # One abandon per submit call: this request's
                    # waiter count on the job drops to zero only when
                    # every duplicate slot has walked away.
                    self.scheduler.abandon(job)
                    entry = {"status": "skipped", "cache": "none",
                             "key": key,
                             "error": "request deadline expired before "
                                      "this spec settled"}
                else:
                    outcome = job.future.result()
                    entry = {"status": outcome.status.value,
                             "cache": "disk" if outcome.from_cache
                             else "none",
                             "key": key, "attempts": outcome.attempts}
                    if outcome.ok and outcome.result is not None:
                        entry["record"] = run_to_record(
                            outcome.result, with_counters=True)
                    if outcome.error:
                        entry["error"] = outcome.error
            entry.update(self._spec_echo(spec))
            counts[entry["status"]] = counts.get(entry["status"], 0) + 1
            entries.append(entry)
        self.admission.release(tenant)

        complete = counts.get("ok", 0) == len(entries)
        response = {
            "tenant": tenant,
            "complete": complete,
            "counts": counts,
            "deadline_expired": bool(expired),
            "elapsed_s": round(time.monotonic() - started, 6),
            "engine": self.breaker.select(),
            "specs": entries,
        }
        # 200 iff every spec is ok — 206 is the HTTP spelling of the
        # CLI's exit code 3 (partial sweep, gaps annotated inline).
        return (200 if complete else 206), response, {}

    def _spec_settled(self, tenant: str, _future) -> None:
        """Future done-callback: return one admitted spec slot."""
        self.admission.spec_settled(tenant)

    @staticmethod
    def _spec_echo(spec: RunSpec) -> Dict:
        return {"workload": spec.workload, "size": spec.size,
                "mode": spec.mode.value, "iteration": spec.iteration}

    def _parse_deadline(self, payload: Dict) -> Optional[float]:
        if "deadline_s" not in payload:
            return self.config.default_deadline_s
        deadline = payload["deadline_s"]
        if deadline is None:
            return None
        if not isinstance(deadline, (int, float)) \
                or isinstance(deadline, bool) or deadline <= 0:
            raise BadRequest("deadline_s must be a positive number or null")
        return float(deadline)

    def _parse_specs(self, payload: Dict) -> List[RunSpec]:
        raw_specs = payload.get("specs")
        grid = payload.get("grid")
        if raw_specs is not None and grid is not None:
            raise BadRequest("give either 'specs' or 'grid', not both")
        if raw_specs is not None:
            if not isinstance(raw_specs, list):
                raise BadRequest("'specs' must be a list of objects")
            specs = []
            for position, entry in enumerate(raw_specs):
                if not isinstance(entry, dict):
                    raise BadRequest(f"spec #{position} is not an object")
                try:
                    specs.append(RunSpec(
                        workload=str(entry["workload"]),
                        size=str(entry["size"]),
                        mode=entry.get("mode", "standard"),
                        iteration=int(entry.get("iteration", 0)),
                        base_seed=int(entry.get("base_seed", 1234)),
                        blocks=entry.get("blocks"),
                        threads=entry.get("threads"),
                        smem_carveout_bytes=entry.get(
                            "smem_carveout_bytes"),
                        seed_salt=str(entry.get("seed_salt", ""))))
                except (KeyError, ValueError, TypeError) as error:
                    raise BadRequest(
                        f"spec #{position}: {error}") from None
            return specs
        if grid is not None:
            if not isinstance(grid, dict):
                raise BadRequest("'grid' must be an object")
            try:
                mode_labels = grid.get(
                    "modes", [mode.value for mode in ALL_MODES])
                modes = [TransferMode.from_label(label)
                         for label in mode_labels]
                return expand_grid(
                    [str(name) for name in grid.get("workloads") or []],
                    [str(size) for size in grid.get("sizes") or []],
                    modes=modes,
                    iterations=int(grid.get("iterations", 1)),
                    base_seed=int(grid.get("base_seed", 1234)))
            except (KeyError, ValueError, TypeError) as error:
                raise BadRequest(f"grid: {error}") from None
        raise BadRequest("request needs a 'specs' list or a 'grid' object")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict:
        return {
            "draining": self.draining,
            "sweep_requests": self.requests,
            "admission": self.admission.snapshot(),
            "scheduler": self.scheduler.snapshot(),
            "hot_cache": {
                "entries": len(self.hot),
                "capacity": self.hot.capacity,
                "hits": self.hot.stats.hits,
                "misses": self.hot.stats.misses,
                "stores": self.hot.stats.stores,
                "evictions": self.hot.stats.evictions,
            },
            "disk_cache": {
                "root": str(self.cache_root),
                "hits": self.disk_cache.stats.hits,
                "misses": self.disk_cache.stats.misses,
                "stores": self.disk_cache.stats.stores,
                "corrupt": self.disk_cache.stats.corrupt,
            },
        }


#: Re-exported for callers that only import the server module.
__all__ = ["BadRequest", "ReproService", "ServiceConfig",
           "SERVICE_JOURNAL", "PENDING_STATUS", "RESUME_TENANT",
           "AdmissionLimits"]
