#!/usr/bin/env python3
"""Multi-GPU scaling study + Nsight-style trace export.

Sec. 2.1 of the paper notes that UVM lets applications pool the memory
of multiple GPUs. This example shards workloads across 1-8 simulated
A100s and shows the scaling wall the paper's Sec. 6 predicts: once the
transfer pipeline is optimized, the *shared host allocator* limits
scaling, so the best single-GPU configuration is not the best
multi-GPU one.

Also exports one run's timeline as a chrome://tracing JSON
(open trace_upa.json in Perfetto / chrome://tracing).

Usage:
    python examples/multi_gpu_scaling.py [--workload NAME] [--out DIR]
"""

import argparse
from pathlib import Path

import numpy as np

from repro import SizeClass, TransferMode, get_workload
from repro.core.execution import _managed_process
from repro.core.multigpu import scaling_study
from repro.harness import render_table
from repro.sim import CudaRuntime, default_calibration, default_system
from repro.sim.export import export_chrome_trace


def scaling(workload_name: str) -> None:
    program = get_workload(workload_name).program(SizeClass.SUPER)
    print(f"=== Scaling {workload_name} @ super across GPUs ===")
    rows = []
    for mode in (TransferMode.STANDARD, TransferMode.UVM_PREFETCH,
                 TransferMode.UVM_PREFETCH_ASYNC):
        study = scaling_study(program, mode, gpu_counts=(1, 2, 4, 8))
        rows.append((mode.value,
                     *(f"{study[n]['speedup']:.2f}x" for n in (1, 2, 4, 8)),
                     f"{study[8]['efficiency']:.2f}"))
    print(render_table(
        ("config", "1 GPU", "2 GPUs", "4 GPUs", "8 GPUs",
         "efficiency @8"), rows))
    print("scaling stalls where allocation dominates: the Sec. 6 "
          "inter-job observation, seen from the multi-GPU angle.")


def export_trace(workload_name: str, out_dir: Path) -> None:
    program = get_workload(workload_name).program(SizeClass.SUPER)
    rt = CudaRuntime(default_system(), default_calibration(),
                     np.random.default_rng(0),
                     footprint_bytes=program.footprint_bytes)
    rt.run(_managed_process(rt, program, TransferMode.UVM_PREFETCH_ASYNC))
    path = export_chrome_trace(rt.timeline, out_dir / "trace_upa.json")
    print(f"\nwrote {path} - open it in chrome://tracing or Perfetto "
          "for the Nsight-style view the paper profiles with.")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="vector_seq")
    parser.add_argument("--out", default=".")
    args = parser.parse_args()
    scaling(args.workload)
    export_trace(args.workload, Path(args.out))


if __name__ == "__main__":
    main()
