#!/usr/bin/env python3
"""Quickstart: compare the five data-transfer configurations.

Runs the vector_seq microbenchmark at the Super input size under all
five configurations (standard / async / uvm / uvm_prefetch /
uvm_prefetch_async), prints the paper-style time breakdown, and shows
the execution timeline of one run.

Usage:
    python examples/quickstart.py [--iterations N] [--workload NAME]
"""

import argparse

from repro import (ALL_MODES, Experiment, SizeClass, TransferMode,
                   default_calibration, default_system, execute_program,
                   get_workload)
from repro.harness import format_ns, render_table
from repro.sim.runtime import CudaRuntime

import numpy as np


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="vector_seq")
    parser.add_argument("--size", default="super",
                        choices=[s.label for s in SizeClass.ordered()])
    parser.add_argument("--iterations", type=int, default=10)
    args = parser.parse_args()

    size = SizeClass.from_label(args.size)
    experiment = Experiment(workload=args.workload, size=size,
                            iterations=args.iterations)
    comparison = experiment.run()

    rows = []
    for mode in ALL_MODES:
        runs = comparison.by_mode[mode]
        breakdown = runs.mean_breakdown()
        rows.append((
            mode.value,
            format_ns(runs.mean_total_ns()),
            f"{comparison.normalized_total(mode):.3f}",
            format_ns(breakdown["gpu_kernel"]),
            format_ns(breakdown["memcpy"]),
            format_ns(breakdown["allocation"]),
        ))
    print(render_table(
        ("config", "total", "vs standard", "gpu_kernel", "memcpy",
         "allocation"),
        rows,
        title=f"{args.workload} @ {size.label} "
              f"(mean of {args.iterations} runs)"))

    best = min(ALL_MODES, key=comparison.normalized_total)
    print(f"\nbest configuration: {best.value} "
          f"({comparison.improvement_pct(best):.1f} % faster than standard)")

    # Show one run's timeline under the best configuration.
    workload = get_workload(args.workload)
    program = workload.program(size)
    rt = CudaRuntime(default_system(), default_calibration(),
                     np.random.default_rng(0),
                     footprint_bytes=program.footprint_bytes)
    from repro.core.execution import _explicit_process, _managed_process
    process = (_managed_process(rt, program, best) if best.managed
               else _explicit_process(rt, program, best))
    rt.run(process)
    print(f"\ntimeline of one {best.value} run "
          "(A=allocation M=memcpy K=gpu kernel):")
    print(rt.timeline.render())


if __name__ == "__main__":
    main()
