#!/usr/bin/env python3
"""Irregular-workload deep dive: why lud loves Async Memcpy.

Reproduces the paper's Sec. 4.2 analysis in miniature: runs lud,
kmeans (irregular), and gemm (regular) under all configurations, then
opens the performance counters to show the mechanism - cp.async adds
control instructions everywhere, but only irregular kernels get the
L1 miss-rate reduction that pays for them.

Also runs the functional faces: an actual LU decomposition and an
actual k-means clustering, proving the algorithms behind the
descriptors are real.

Usage:
    python examples/irregular_workloads.py
"""

import numpy as np

from repro import ALL_MODES, Experiment, SizeClass, get_workload
from repro.harness import counter_sweep, render_table
from repro.workloads.rodinia import (diagonally_dominant, kmeans_reference,
                                     lud_reference)


def functional_faces() -> None:
    print("=== Functional layer ===")
    rng = np.random.default_rng(11)
    matrix = diagonally_dominant(rng, 64)
    factors = lud_reference(matrix)
    error = np.abs(factors["L"] @ factors["U"] - matrix).max()
    print(f"  lud: 64x64 LU factorization, max |LU - A| = {error:.2e}")

    points = np.concatenate([
        center + rng.standard_normal((50, 6))
        for center in (np.zeros(6), np.full(6, 8.0), np.full(6, -8.0))
    ])
    clusters = kmeans_reference(points, k=3, rng=rng)
    print(f"  kmeans: 150 points -> cluster sizes "
          f"{np.bincount(clusters['labels']).tolist()}")


def performance_comparison() -> None:
    print("\n=== Overall time, normalized to standard (Super) ===")
    rows = []
    for name in ("lud", "kmeans", "gemm"):
        comparison = Experiment(workload=name, size=SizeClass.SUPER,
                                iterations=5).run()
        rows.append((name, *(f"{comparison.normalized_total(m):.3f}"
                             for m in ALL_MODES)))
    print(render_table(("workload", *(m.value for m in ALL_MODES)), rows))


def counter_analysis() -> None:
    print("\n=== The mechanism (Figs. 9-10) ===")
    counters = counter_sweep(workloads=("gemm", "lud"))
    rows = []
    for name, by_mode in counters.items():
        standard = by_mode["standard"]
        async_ = by_mode["async"]
        rows.append((
            name,
            f"+{(async_['control'] / standard['control'] - 1) * 100:.1f} %",
            f"{(async_['load_miss'] / standard['load_miss'] - 1) * 100:+.1f} %",
            f"{(async_['store_miss'] / standard['store_miss'] - 1) * 100:+.1f} %",
        ))
    print(render_table(
        ("workload", "control insts (async)", "L1 load miss (async)",
         "L1 store miss (async)"), rows))
    print("gemm pays the control-instruction overhead and gets nothing "
          "back; lud's miss rates collapse, which is where its speedup "
          "comes from (Takeaway 3).")


def main() -> None:
    functional_faces()
    performance_comparison()
    counter_analysis()


if __name__ == "__main__":
    main()
