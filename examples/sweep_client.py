#!/usr/bin/env python3
"""Drive a `repro serve` sweep server over HTTP (docs/SERVICE.md).

A complete client for the sweep service: submits a grid under a tenant
name, backs off politely on 429 load shedding (honouring
``Retry-After``), treats a 206 partial as the annotated gap list it
is, then repeats the request to show the hot-cache round trip and
prints the per-mode wall-time summary from the returned records.

Usage:
    python -m repro serve --port 8023 &
    python examples/sweep_client.py --port 8023

    python examples/sweep_client.py --spawn    # self-hosted demo:
        # launches its own server on an ephemeral port, runs the same
        # flow against it, and shuts it down with SIGTERM.
"""

import argparse
import json
import os
import re
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

GRID = {"workloads": ["vector_seq", "saxpy"], "sizes": ["tiny"],
        "iterations": 3}


def request(port, method, path, body=None, timeout=300.0):
    """One JSON round trip; returns (status, headers, payload)."""
    data = None if body is None else json.dumps(body).encode("utf-8")
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=data, method=method,
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(req, timeout=timeout) as response:
            return response.status, dict(response.headers), \
                json.loads(response.read())
    except urllib.error.HTTPError as error:  # 4xx/5xx still carry JSON
        return error.code, dict(error.headers), json.loads(error.read())


def submit_sweep(port, tenant, grid, deadline_s=60.0, max_attempts=5):
    """POST /sweep with polite 429 backoff; returns the final payload."""
    body = {"tenant": tenant, "grid": grid, "deadline_s": deadline_s}
    for attempt in range(1, max_attempts + 1):
        status, headers, payload = request(port, "POST", "/sweep", body)
        if status != 429:
            return status, payload
        pause = float(headers.get("Retry-After", "1"))
        print(f"  shed (attempt {attempt}): {payload['error']}; "
              f"retrying in {pause:g}s")
        time.sleep(pause)
    raise SystemExit("server still shedding load; giving up")


def summarize(payload):
    print(f"  complete={payload['complete']} "
          f"counts={payload['counts']} "
          f"elapsed={payload['elapsed_s']:.3f}s "
          f"engine={payload['engine']}")
    tiers = {}
    for entry in payload["specs"]:
        tiers[entry["cache"]] = tiers.get(entry["cache"], 0) + 1
    print(f"  cache tiers: {tiers}")
    for entry in payload["specs"]:
        if entry["status"] != "ok":  # 206: every gap is annotated
            print(f"  gap: {entry['workload']}/{entry['mode']}"
                  f"#{entry['iteration']}: {entry['status']} "
                  f"({entry.get('error', '')})")
    by_mode = {}
    for entry in payload["specs"]:
        if entry["status"] == "ok":
            by_mode.setdefault(entry["mode"], []).append(
                entry["record"]["wall_ns"])
    print("  mean wall time by mode:")
    for mode, times in sorted(by_mode.items()):
        mean_us = sum(times) / len(times) / 1000.0
        print(f"    {mode:>20}: {mean_us:10.1f} us "
              f"over {len(times)} runs")


def spawn_server():
    """Launch `repro serve` on an ephemeral port; returns (proc, port)."""
    # Keep the demo runnable from a plain checkout: make the spawned
    # interpreter see src/ even when repro isn't pip-installed.
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src, env.get("PYTHONPATH")) if p)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        bufsize=1, env=env)
    for line in proc.stdout:
        match = re.search(r"listening on http://[^:]+:(\d+)", line)
        if match:
            return proc, int(match.group(1))
    raise SystemExit("server never announced its port")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--port", type=int, default=8023)
    parser.add_argument("--spawn", action="store_true",
                        help="launch a private server for the demo")
    parser.add_argument("--tenant", default="example")
    parser.add_argument("--iterations", type=int,
                        default=GRID["iterations"])
    args = parser.parse_args()

    proc = None
    port = args.port
    if args.spawn:
        proc, port = spawn_server()
        print(f"spawned repro serve on port {port}")
    grid = dict(GRID, iterations=args.iterations)

    try:
        status, _, health = request(port, "GET", "/healthz", timeout=10.0)
        print(f"healthz: {status} {health}")

        print(f"cold sweep as tenant {args.tenant!r}:")
        status, payload = submit_sweep(port, args.tenant, grid)
        print(f"  HTTP {status}" + (" (partial)" if status == 206 else ""))
        summarize(payload)

        print("same grid again (hot cache):")
        status, payload = submit_sweep(port, args.tenant, grid)
        print(f"  HTTP {status}")
        summarize(payload)

        _, _, stats = request(port, "GET", "/stats", timeout=10.0)
        print("server stats: "
              f"executed={stats['scheduler']['executed']} "
              f"dedup={stats['scheduler']['dedup_hits']} "
              f"hot_hits={stats['hot_cache']['hits']} "
              f"breaker={stats['scheduler']['breaker']['state']}")
    finally:
        if proc is not None:
            proc.send_signal(signal.SIGTERM)
            proc.stdout.read()
            proc.wait(timeout=60)
            print("server drained and stopped")


if __name__ == "__main__":
    main()
